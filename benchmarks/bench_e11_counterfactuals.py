"""E11 — Counterfactual generators trade off quality dimensions
(§2.1.4, [5, 51, 60]).

Claim: DiCE maximizes diversity of a counterfactual set; GeCo's
genetic search with on-manifold mutations yields sparser, more plausible
counterfactuals; an unconstrained greedy baseline is valid but implausible.
All methods must reach high validity.
"""

import numpy as np

from repro.core.base import as_predict_fn
from repro.core.explanation import CounterfactualExplanation
from repro.counterfactual import DiceExplainer, GecoExplainer, evaluate_counterfactuals

from conftest import emit, fmt_row


def greedy_gradient_baseline(model, data, x, threshold=0.5):
    """Unconstrained straight-line push along the logistic gradient —
    valid but ignores the data manifold entirely."""
    fn = as_predict_fn(model)
    direction = model.coef_ / np.linalg.norm(model.coef_)
    candidate = x.copy()
    for __ in range(200):
        if fn(candidate[None, :])[0] >= threshold:
            break
        candidate = candidate + 0.5 * direction
    return CounterfactualExplanation(
        factual=x, counterfactuals=candidate[None, :],
        factual_outcome=float(fn(x[None, :])[0]),
        target_outcome=1.0,
        feature_names=data.feature_names, method="greedy",
    )


def test_e11_counterfactuals(benchmark, loan_setup):
    data, logistic, __ = loan_setup
    fn = as_predict_fn(logistic)
    denied = data.X[np.where(fn(data.X) < 0.4)[0][:5]]

    aggregated: dict[str, dict[str, list]] = {}
    for x in denied:
        results = {
            "dice": DiceExplainer(logistic, data, seed=0).explain(x),
            "geco": GecoExplainer(logistic, data, seed=0).explain(x),
            "greedy": greedy_gradient_baseline(logistic, data, x),
        }
        for name, cf in results.items():
            metrics = evaluate_counterfactuals(cf, fn, data.X)
            store = aggregated.setdefault(name, {})
            for key, value in metrics.items():
                store.setdefault(key, []).append(value)

    keys = ("validity", "proximity", "sparsity", "diversity", "plausibility")
    rows = [fmt_row("method", *keys)]
    means = {}
    for name, store in aggregated.items():
        means[name] = {k: float(np.mean(store[k])) for k in keys}
        rows.append(fmt_row(name, *[means[name][k] for k in keys]))
    emit("E11_counterfactuals", rows)

    # Shape assertions from the papers' comparisons:
    assert means["dice"]["validity"] >= 0.8
    assert means["geco"]["validity"] >= 0.8
    assert means["greedy"]["validity"] >= 0.8
    # DiCE returns the most diverse sets.
    assert means["dice"]["diversity"] > means["geco"]["diversity"]
    # GeCo's grounded mutations stay sparser than DiCE.
    assert means["geco"]["sparsity"] <= means["dice"]["sparsity"]
    # The manifold-blind baseline is the least plausible.
    assert means["greedy"]["plausibility"] >= means["geco"]["plausibility"]

    geco = GecoExplainer(logistic, data, seed=0)
    benchmark(lambda: geco.explain(denied[0]))
