"""E33 — Path-dependent vs interventional TreeSHAP (§2.1.2 ablation).

Claims [Lundberg et al. 2020; the value-function discussion of Kumar et
al.]: (1) the interventional estimator computes the *same game* Kernel
SHAP approximates — the marginal expectation over an explicit background
— exactly and in polynomial time; (2) the two TreeSHAP variants answer
*different games* (cover-weighted conditional vs marginal) and their
attributions genuinely differ on dependent data, so the choice between
them is semantic, not numerical.
"""

import time

import numpy as np

from repro.core.sampling import MaskingSampler
from repro.datasets import make_classification, make_correlated_gaussian
from repro.models import DecisionTreeClassifier
from repro.shapley import (
    InterventionalTreeShapExplainer,
    TreeShapExplainer,
    exact_shapley,
)

from conftest import emit, fmt_row


def test_e33_treeshap_variants(benchmark):
    rows = []

    # Part 1: exactness + speed vs brute-force marginal SHAP.
    rows.append(fmt_row("n_features", "enum (s)", "interv (s)", "max |diff|"))
    for n_features in (8, 12):
        data = make_classification(400, n_features=n_features, seed=9)
        tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(data.X, data.y)
        background = data.X[:12]
        x = data.X[0]
        explainer = InterventionalTreeShapExplainer(tree, background)
        t0 = time.perf_counter()
        fast = explainer.explain(x).values
        t_fast = time.perf_counter() - t0
        sampler = MaskingSampler(background, max_background=12)
        v = sampler.value_function(
            lambda X: tree.predict_proba(X)[:, 1], x
        )
        t0 = time.perf_counter()
        reference = exact_shapley(v, n_features)
        t_enum = time.perf_counter() - t0
        diff = float(np.abs(fast - reference).max())
        rows.append(fmt_row(n_features, t_enum, t_fast, diff))
        assert diff < 1e-10
        assert t_fast < t_enum

    # Part 2: the variants answer different games on dependent data.
    rows.append(fmt_row("rho", "mean L1 disagreement", ""))
    disagreements = []
    for rho in (0.0, 0.95):
        X = make_correlated_gaussian(800, n_features=3, rho=rho, seed=7)
        y = ((X[:, 0] + X[:, 1]) > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(X, y)
        path_dep = TreeShapExplainer(tree)
        interventional = InterventionalTreeShapExplainer(tree, X[:40], seed=0)
        diffs = [
            float(np.abs(
                path_dep.explain(x).values - interventional.explain(x).values
            ).sum())
            for x in X[:10]
        ]
        disagreements.append(float(np.mean(diffs)))
        rows.append(fmt_row(rho, disagreements[-1], ""))
    emit("E33_treeshap_variants", rows)

    # Both variants satisfy their own efficiency axioms (tested in the
    # unit suite) yet produce different attributions — the semantic gap.
    assert all(d > 0.01 for d in disagreements)

    data = make_classification(400, n_features=12, seed=9)
    tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(data.X, data.y)
    explainer = InterventionalTreeShapExplainer(tree, data.X[:12])
    benchmark(lambda: explainer.explain(data.X[0]))
