"""E6 — Anchors: short high-precision rules; precision/coverage trade-off
(§2.2, [54]).

Claim: the bandit search returns concise rules meeting the precision
target, and raising the target shrinks coverage (more specific rules).
"""

import numpy as np

from repro.rules import AnchorExplainer

from conftest import emit, fmt_row


def test_e06_anchors(benchmark, loan_setup):
    data, __, gbm = loan_setup
    instances = data.X[:6]
    rows = [fmt_row("target", "mean precision", "mean coverage",
                    "mean length")]
    coverage_by_target = []
    for target in (0.8, 0.95):
        precisions, coverages, lengths = [], [], []
        for i, x in enumerate(instances):
            anchors = AnchorExplainer(
                gbm, data, precision_target=target, seed=i
            )
            rule = anchors.explain(x)
            precisions.append(
                anchors.empirical_precision(rule, x, n=800, seed=100 + i)
            )
            coverages.append(rule.coverage)
            lengths.append(len(rule))
        coverage_by_target.append(float(np.mean(coverages)))
        rows.append(fmt_row(target, float(np.mean(precisions)),
                            coverage_by_target[-1], float(np.mean(lengths))))
        # precision close to or above target (bandit gives PAC guarantee)
        assert np.mean(precisions) > target - 0.12
        assert np.mean(lengths) <= 8
    # Beam ablation: wider beams explore alternative anchors and find
    # higher-coverage rules at the same precision target (the paper's
    # argument for beam search over pure greedy).
    beam_rows = []
    for beam_width in (1, 3):
        coverages = []
        for i, x in enumerate(instances[:4]):
            rule = AnchorExplainer(
                gbm, data, precision_target=0.9,
                beam_width=beam_width, seed=i,
            ).explain(x)
            coverages.append(rule.coverage)
        beam_rows.append((beam_width, float(np.mean(coverages))))
        rows.append(fmt_row(f"beam={beam_width}", "", beam_rows[-1][1], ""))
    emit("E6_anchors", rows)

    # Shape: stricter precision targets cost coverage (or at best tie),
    # and beam search covers at least as much as greedy.
    assert coverage_by_target[1] <= coverage_by_target[0] + 0.05
    assert beam_rows[1][1] >= beam_rows[0][1] - 0.03

    anchors = AnchorExplainer(gbm, data, precision_target=0.9, seed=0)
    benchmark(lambda: anchors.explain(data.X[0]))
