"""E44 — Persist: round-trip cost, registry load latency, cache pre-warm.

Claim: serialization is cheap enough to sit on the serving path, and a
persisted coalition-cache snapshot turns a repeat explanation into pure
cache hits. Three headline numbers:

* **round-trip wall time** — ``loads(dumps(to_envelope(model)))`` for
  the fitted GBM, the equivalent-copy path every golden and registry
  artifact takes. Predictions of the copy are asserted bitwise equal.
* **registry load latency** — ``ArtifactRegistry.get`` end to end
  (manifest lookup, content-addressed object read, envelope decode);
  what a serve version bump pays before the endpoint swaps models.
* **pre-warm speedup** (floor: ≥2× in ``bench_compare.FLOORS``) —
  evaluating one instance's coalition mask set against a GBM, cold
  cache vs a cache pre-warmed from a ``REPRO_CACHE_SNAPSHOT`` file
  written by the previous run. The warm path answers from the snapshot
  (zero model rows), and its values are bitwise those of the cold run.
"""

import time

import numpy as np

from repro import obs
from repro.core.coalition_engine import CoalitionEngine
from repro.persist import ArtifactRegistry, dumps, loads, to_envelope
from repro.persist.snapshot import save_cache_snapshot, scope_token

from conftest import emit, fmt_row

N_MASKS = 220
N_BACKGROUND = 60
ROUNDTRIPS = 20
REGISTRY_LOADS = 20


def test_e44_persist(loan_setup, tmp_path):
    data, __, gbm = loan_setup

    # -- round-trip wall time --------------------------------------------
    envelope_text = dumps(to_envelope(gbm))
    t0 = time.perf_counter()
    for __ in range(ROUNDTRIPS):
        copy = loads(dumps(to_envelope(gbm)))
    roundtrip_ms = (time.perf_counter() - t0) / ROUNDTRIPS * 1e3
    assert np.array_equal(
        gbm.predict_proba(data.X[:64]), copy.predict_proba(data.X[:64])
    )

    # -- registry load latency -------------------------------------------
    store = ArtifactRegistry(str(tmp_path / "registry"))
    store.push("loan-gbm", gbm, version="v1")
    t0 = time.perf_counter()
    for __ in range(REGISTRY_LOADS):
        loaded = store.get("loan-gbm", "v1")
    registry_load_ms = (time.perf_counter() - t0) / REGISTRY_LOADS * 1e3
    assert np.array_equal(
        gbm.predict_proba(data.X[:64]), loaded.predict_proba(data.X[:64])
    )

    # -- cache pre-warm: cold run vs snapshot-warmed repeat --------------
    rng = np.random.default_rng(44)
    x = data.X[7]
    background = data.X[:N_BACKGROUND]
    masks = (rng.random((N_MASKS, x.shape[0])) < 0.5).astype(float)
    from repro.core.base import as_predict_fn

    model_fn = as_predict_fn(gbm)  # metered: model.rows counts the work

    engine = CoalitionEngine(background, max_background=N_BACKGROUND)
    rows_before = obs.counter("model.rows").value
    v_cold = engine.value_function(model_fn, x)
    t0 = time.perf_counter()
    cold_values = v_cold(masks)
    cold_s = time.perf_counter() - t0
    cold_rows = obs.counter("model.rows").value - rows_before

    snapshot_path = str(tmp_path / "cache_snapshot.json")
    save_cache_snapshot(
        snapshot_path, v_cold.cache, scope_token(x, engine.background)
    )

    import os

    os.environ["REPRO_CACHE_SNAPSHOT"] = snapshot_path
    try:
        prewarmed_before = obs.counter("persist.cache.prewarmed").value
        rows_before = obs.counter("model.rows").value
        v_warm = engine.value_function(model_fn, x)
        t0 = time.perf_counter()
        warm_values = v_warm(masks)
        warm_s = time.perf_counter() - t0
        warm_rows = obs.counter("model.rows").value - rows_before
        prewarmed = (
            obs.counter("persist.cache.prewarmed").value - prewarmed_before
        )
    finally:
        del os.environ["REPRO_CACHE_SNAPSHOT"]

    # The snapshot is a pure perf artifact: bitwise values, no model work.
    assert np.array_equal(cold_values, warm_values)
    assert prewarmed == len(v_cold.cache.values)
    assert warm_rows == 0
    prewarm_speedup = cold_s / warm_s

    rows = [
        fmt_row("path", "wall", "model rows", "note"),
        fmt_row("round-trip", f"{roundtrip_ms:.2f} ms", "-",
                f"{len(envelope_text)} bytes"),
        fmt_row("registry get", f"{registry_load_ms:.2f} ms", "-",
                "manifest+object"),
        fmt_row("cold masks", f"{cold_s * 1e3:.1f} ms", cold_rows,
                f"{N_MASKS} masks"),
        fmt_row("prewarmed", f"{warm_s * 1e3:.1f} ms", warm_rows,
                f"{prewarm_speedup:.0f}x"),
    ]
    emit(
        "E44_persist",
        rows,
        data={
            "n_masks": N_MASKS,
            "n_background": N_BACKGROUND,
            "envelope_bytes": len(envelope_text),
            "cold": {"wall_s": cold_s, "model_rows": int(cold_rows)},
            "warm": {"wall_s": warm_s, "model_rows": int(warm_rows)},
            "prewarmed_entries": int(prewarmed),
        },
        summary={
            "roundtrip_ms": roundtrip_ms,
            "registry_load_ms": registry_load_ms,
            "prewarm_speedup": prewarm_speedup,
        },
    )
