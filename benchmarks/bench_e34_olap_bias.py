"""E34 — Detecting and resolving bias in OLAP aggregates (§3, [56]).

Claim [HypDB]: naive group-by contrasts can reverse under stratification
(Simpson's paradox); scanning candidate confounders detects the reversal,
identifies the responsible attribute, and the adjusted (stratified)
estimate resolves the bias — recovering the sign of the true
within-stratum effect.
"""

import numpy as np
import pytest

from repro.db import Relation, detect_simpsons_paradox, group_difference

from conftest import emit, fmt_row


def make_admissions(seed: int, female_bonus: float) -> Relation:
    """Berkeley-style data with a known within-department gender effect."""
    rng = np.random.default_rng(seed)
    rows = []
    for dept, base_rate, men, women in [
        ("easy", 0.75, 500, 120), ("hard", 0.25, 120, 500),
    ]:
        for gender, n in (("m", men), ("f", women)):
            rate = base_rate + (female_bonus if gender == "f" else 0.0)
            admitted = rng.random(n) < rate
            rows += [(gender, dept, int(a)) for a in admitted]
    return Relation(["gender", "dept", "admitted"], rows, name="adm")


def test_e34_olap_bias(benchmark):
    rows = [fmt_row("true in-dept effect", "naive (m−f)", "adjusted (m−f)",
                    "reversal")]
    detected = []
    for female_bonus in (0.05, 0.1):
        relation = make_admissions(seed=11, female_bonus=female_bonus)
        reports = detect_simpsons_paradox(
            relation, "gender", "admitted", ["dept"]
        )
        top = reports[0]
        detected.append(top)
        rows.append(fmt_row(-female_bonus, top.naive, top.adjusted,
                            str(top.reversal)))
    # control: no within-dept effect → the adjusted estimate is ≈ 0 and
    # the naive aggregate STILL shows a large spurious gap
    control = make_admissions(seed=11, female_bonus=0.0)
    naive = group_difference(control, "gender", "admitted")
    adjusted = detect_simpsons_paradox(
        control, "gender", "admitted", ["dept"]
    )[0].adjusted
    rows.append(fmt_row(0.0, naive, adjusted, "spurious gap"))
    emit("E34_olap_bias", rows)

    # Shape: the paradox is detected whenever the within-stratum effect
    # opposes the aggregate, the adjusted sign matches the ground truth,
    # and the control's adjusted estimate is near zero while its naive
    # aggregate still shows a large spurious gap.
    for report, bonus in zip(detected, (0.05, 0.1)):
        assert report.reversal
        assert report.naive > 0.1
        assert report.adjusted < 0
        assert report.adjusted == pytest.approx(-bonus, abs=0.05)
    assert abs(adjusted) < 0.05
    assert naive > 0.1

    relation = make_admissions(seed=11, female_bonus=0.05)
    benchmark(lambda: detect_simpsons_paradox(
        relation, "gender", "admitted", ["dept"]
    ))

