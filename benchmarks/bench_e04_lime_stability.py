"""E4 — LIME sampling instability and its cure (§2.1.1, [73]).

Claim: LIME explanations vary across reruns because the neighborhood is
resampled; the VSI/CSI stability indices rise toward 1 as the sampling
budget grows.
"""

import numpy as np

from repro.surrogate import LimeTabularExplainer, stability_report

from conftest import emit, fmt_row


def test_e04_lime_stability(benchmark, loan_setup):
    data, __, gbm = loan_setup
    x = data.X[4]
    budgets = [50, 200, 1000, 4000]
    rows = [fmt_row("n_samples", "VSI", "CSI", "fidelity")]
    vsis = []
    for n_samples in budgets:
        lime = LimeTabularExplainer(gbm, data, n_samples=n_samples)
        report = stability_report(lime, x, n_runs=6, top_k=3, seed=0)
        vsis.append(report["vsi"])
        rows.append(fmt_row(n_samples, report["vsi"], report["csi"],
                            report["mean_fidelity"]))
    emit("E4_lime_stability", rows)

    # Shape: the large-budget end is more stable than the small-budget end.
    assert vsis[-1] >= vsis[0]
    assert vsis[-1] > 0.5

    lime = LimeTabularExplainer(gbm, data, n_samples=1000)
    benchmark(lambda: lime.explain(x, seed=1))
