"""E7 — Data Shapley finds mislabeled points faster than LOO/random
(§2.3.1, [24]).

Claim: inspecting training points from lowest to highest value, the
fraction of injected label noise found (the paper's Fig. 2-style
inspection curve) rises fastest for Shapley-based values.
"""

import numpy as np

from repro.datasets import make_classification
from repro.datavalue import (
    UtilityFunction,
    knn_shapley,
    leave_one_out_values,
    tmc_shapley,
)
from repro.models import LogisticRegression
from repro.models.model_selection import train_test_split

from conftest import emit, fmt_row


def detection_curve(values: np.ndarray, flipped: set, fractions) -> list:
    order = np.argsort(values)
    n = len(values)
    return [
        len(set(order[: int(f * n)].tolist()) & flipped) / len(flipped)
        for f in fractions
    ]


def test_e07_data_shapley(benchmark):
    data = make_classification(150, n_features=4, class_sep=2.5, seed=41)
    X_train, X_val, y_train, y_val = train_test_split(
        data.X, data.y, test_size=0.35, seed=0
    )
    rng = np.random.default_rng(7)
    flipped_idx = rng.choice(X_train.shape[0], size=10, replace=False)
    y_train[flipped_idx] = 1 - y_train[flipped_idx]
    flipped = set(flipped_idx.tolist())

    utility = UtilityFunction(
        lambda: LogisticRegression(alpha=1.0), X_train, y_train, X_val, y_val
    )
    tmc = tmc_shapley(utility, n_permutations=60, seed=0)
    loo = leave_one_out_values(utility)
    knn = knn_shapley(X_train, y_train, X_val, y_val, k=5)
    random_vals = rng.permutation(X_train.shape[0]).astype(float)

    fractions = (0.1, 0.2, 0.3)
    curves = {
        "tmc_shapley": detection_curve(tmc.values, flipped, fractions),
        "knn_shapley": detection_curve(knn.values, flipped, fractions),
        "leave_one_out": detection_curve(loo.values, flipped, fractions),
        "random": detection_curve(random_vals, flipped, fractions),
    }
    rows = [fmt_row("method", *[f"found@{f:.0%}" for f in fractions])]
    for name, curve in curves.items():
        rows.append(fmt_row(name.ljust(14), *curve))
    emit("E7_data_shapley", rows)

    # Shape: both Shapley variants dominate random everywhere and LOO at
    # the 20% inspection point (the paper's headline comparison).
    for f_idx in range(3):
        assert curves["tmc_shapley"][f_idx] >= curves["random"][f_idx]
    assert curves["tmc_shapley"][1] >= curves["leave_one_out"][1]
    assert curves["knn_shapley"][1] >= curves["random"][1]
    assert curves["tmc_shapley"][2] >= 0.6

    benchmark(lambda: knn_shapley(X_train, y_train, X_val, y_val, k=5))
