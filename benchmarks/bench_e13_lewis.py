"""E13 — LEWIS necessity/sufficiency scores on the loan SCM (§2.1.3, [20]).

Claim: counterfactual NeС/SuF scores computed on the causal model rank
attributes by their real leverage over the decision — mediating economic
attributes score high, the protected attribute (no direct mechanism into
the decision) scores low, and the scores drive useful recourse options.
"""

import numpy as np

from repro.causal import LewisExplainer
from repro.datasets import make_loan_dataset, make_loan_scm
from repro.models import LogisticRegression

from conftest import emit, fmt_row


def test_e13_lewis(benchmark):
    data, scm = make_loan_dataset(800, seed=7, return_scm=True)
    model = LogisticRegression(alpha=1.0).fit(data.X, data.y)
    lewis = LewisExplainer(
        model, scm, data.feature_names, n_units=2500, seed=0
    )
    contrasts = {
        "income": (6.0, 1.5),
        "credit_score": (750.0, 550.0),
        "savings": (4.0, 0.5),
        "gender": (1.0, 0.0),
    }
    ranked = lewis.rank_attributes(contrasts)
    rows = [fmt_row("attribute", "necessity", "sufficiency", "ne-and-suf")]
    by_name = {}
    for s in ranked:
        by_name[s.attribute] = s
        rows.append(fmt_row(s.attribute, s.necessity, s.sufficiency,
                            s.necessity_sufficiency))

    options = lewis.recourse_options(
        unit_values={"income": 2.0, "credit_score": 580.0},
        candidate_interventions={
            "income": [5.0], "savings": [4.0], "gender": [1.0],
        },
    )
    rows.append("recourse options (attribute, value, flip prob):")
    for attr, value, prob in options:
        rows.append(fmt_row(attr, value, prob))
    emit("E13_lewis", rows)

    # Shape: economic levers dominate the protected attribute on NeSuF.
    assert ranked[0].attribute in ("income", "credit_score")
    assert by_name["gender"].necessity_sufficiency < \
        by_name["income"].necessity_sufficiency
    # Intervening on income flips more matched denied units than gender.
    flip = {attr: prob for attr, __, prob in options}
    assert flip["income"] > flip["gender"]

    benchmark(lambda: lewis.scores("income", 6.0, 1.5))
