"""E16 — SHAP is tractable on d-DNNF circuits (§3, [6, 70]).

Claim [Arenas+; Van den Broeck+]: on deterministic decomposable circuits
the exact SHAP score of every feature is polynomial-time, while generic
exact SHAP costs 2^d coalition evaluations — and the two agree exactly.
"""

import time

import numpy as np

from repro.datasets import make_classification
from repro.logic import binarize_matrix, circuit_shap, compile_tree, conditional_expectation
from repro.models import DecisionTreeClassifier
from repro.shapley import exact_shapley

from conftest import emit, fmt_row


def test_e16_circuit_shap(benchmark):
    rows = [fmt_row("n_features", "enum (s)", "circuit (s)", "speedup",
                    "max |diff|")]
    speedups = []
    for n_features in (6, 10, 14):
        data = make_classification(
            500, n_features=n_features,
            n_informative=min(4, n_features), seed=29,
        )
        Xb, __ = binarize_matrix(data.X)
        tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(Xb, data.y)
        circuit = compile_tree(tree.tree_, n_features)
        x = Xb[0]
        p = Xb.mean(axis=0)

        t0 = time.perf_counter()
        fast = circuit_shap(circuit, x, p)
        t_circuit = time.perf_counter() - t0

        if n_features <= 14:
            def v(masks):
                masks = np.atleast_2d(masks)
                return np.array([
                    conditional_expectation(circuit, x, m, p) for m in masks
                ])

            t0 = time.perf_counter()
            reference = exact_shapley(v, n_features)
            t_enum = time.perf_counter() - t0
            diff = float(np.abs(fast - reference).max())
            assert diff < 1e-9
        speedup = t_enum / max(t_circuit, 1e-9)
        speedups.append(speedup)
        rows.append(fmt_row(n_features, t_enum, t_circuit, speedup, diff))
    emit("E16_circuit_shap", rows)

    # Shape: polynomial-vs-exponential gap widens with d.
    assert speedups[-1] > speedups[0]

    data = make_classification(500, n_features=14, n_informative=4, seed=29)
    Xb, __ = binarize_matrix(data.X)
    tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(Xb, data.y)
    circuit = compile_tree(tree.tree_, 14)
    benchmark(lambda: circuit_shap(circuit, Xb[0], Xb.mean(axis=0)))
