"""E40 — process-backend scale-out: ≥2× at an equal budget, bit-for-bit.

The exec subsystem's headline claim: sharding permutation walks across a
``ProcessPoolExecutor`` makes latency-bound value functions — remote
model retrains, database round-trips — at least twice as fast at the
*same* permutation budget, while the attributions stay bitwise identical
(``np.array_equal``, not allclose) to the serial estimator.

Both workloads model the tutorial's expensive-query regimes:

* **Data Shapley** — each retrain carries a fixed latency (think a
  training service call), dominating the CPU cost of the tiny logistic
  fit. Serial pays every latency in sequence; four forked workers
  overlap them.
* **Tuple Shapley** — the relational query sleeps like a real DBMS
  round-trip; the permutation sampler's sub-database evaluations shard
  the same way.

The worker-side ``datavalue.cache.*`` counter deltas merged on join are
asserted here too — they are what lands in ``BENCH_summary.json`` and
would read ~0 if worker state stayed process-local.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.datasets import make_classification
from repro.datavalue.data_shapley import tmc_shapley
from repro.datavalue.utility import UtilityFunction
from repro.db.relation import Relation
from repro.db.tuple_shapley import shapley_of_tuples
from repro.models import LogisticRegression
from repro.models.model_selection import train_test_split

from conftest import emit, fmt_row

N_PROCS = 4
RETRAIN_LATENCY_S = 0.006
QUERY_LATENCY_S = 0.002


class LatencyModel:
    """Logistic fit behind a fixed per-retrain latency (a remote trainer)."""

    def __init__(self) -> None:
        self._model = LogisticRegression(alpha=1.0)

    def fit(self, X, y):
        time.sleep(RETRAIN_LATENCY_S)
        self._model.fit(X, y)
        return self

    def predict(self, X):
        return self._model.predict(X)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def make_utility() -> UtilityFunction:
    data = make_classification(60, n_features=3, n_informative=2,
                               class_sep=2.0, seed=13)
    Xtr, Xv, ytr, yv = train_test_split(data.X, data.y, test_size=0.4, seed=0)
    return UtilityFunction(lambda: LatencyModel(), Xtr[:10], ytr[:10], Xv, yv)


def make_relation():
    relation = Relation(["id", "grp"], [(i, i % 4) for i in range(12)])

    def slow_query(r):
        time.sleep(QUERY_LATENCY_S)  # a DBMS round-trip per sub-database
        return (sum(1 for t in r.rows if t[1] == 0) * 2.0
                + len(r.rows) * 0.1)

    return relation, slow_query


def test_e40_process_backend():
    n_perms = 24
    rows: list[str] = []

    # -- Data Shapley at an equal permutation budget --------------------
    serial, t_serial = _timed(lambda: tmc_shapley(
        make_utility(), n_permutations=n_perms, truncation_tolerance=0.0,
        seed=3,
    ))
    dv_misses0 = obs.counter("datavalue.cache.misses").value
    sharded, t_process = _timed(lambda: tmc_shapley(
        make_utility(), n_permutations=n_perms, truncation_tolerance=0.0,
        seed=3, backend="process", n_procs=N_PROCS,
    ))
    dv_misses = obs.counter("datavalue.cache.misses").value - dv_misses0
    dv_speedup = t_serial / t_process
    rows.append(fmt_row("data shapley", "wall (s)", "speedup", "identical"))
    rows.append(fmt_row("serial", t_serial, 1.0, "-"))
    identical_dv = bool(np.array_equal(serial.values, sharded.values))
    rows.append(fmt_row(f"process x{N_PROCS}", t_process, dv_speedup,
                        str(identical_dv)))

    # -- Tuple Shapley (sampling) at an equal budget --------------------
    relation, slow_query = make_relation()
    serial_t, t_serial_tuple = _timed(lambda: shapley_of_tuples(
        relation, slow_query, method="sampling", n_permutations=n_perms,
        seed=5,
    ))
    sharded_t, t_process_tuple = _timed(lambda: shapley_of_tuples(
        relation, slow_query, method="sampling", n_permutations=n_perms,
        seed=5, backend="process", n_procs=N_PROCS,
    ))
    tuple_speedup = t_serial_tuple / t_process_tuple
    identical_tuple = serial_t == sharded_t
    rows.append("")
    rows.append(fmt_row("tuple shapley", "wall (s)", "speedup", "identical"))
    rows.append(fmt_row("serial", t_serial_tuple, 1.0, "-"))
    rows.append(fmt_row(f"process x{N_PROCS}", t_process_tuple,
                        tuple_speedup, str(identical_tuple)))

    emit("E40_process_backend", rows, data={
        "n_permutations": n_perms,
        "n_procs": N_PROCS,
        "data_shapley": {
            "t_serial_s": t_serial,
            "t_process_s": t_process,
            "speedup": dv_speedup,
            "identical": identical_dv,
            "worker_cache_misses_merged": int(dv_misses),
        },
        "tuple_shapley": {
            "t_serial_s": t_serial_tuple,
            "t_process_s": t_process_tuple,
            "speedup": tuple_speedup,
            "identical": identical_tuple,
        },
    })

    # The headline claims: bitwise-identical attributions and ≥2× on the
    # latency-bound Data Shapley run at an equal permutation budget.
    assert identical_dv
    assert identical_tuple
    assert dv_speedup >= 2.0
    assert tuple_speedup >= 1.5
    # Worker-side counter deltas merged into the parent registry.
    assert dv_misses > 0
