"""E21 — Sanity checks for saliency maps (§2.4, [2]).

Claim [Adebayo et al.]: a faithful attribution method's maps must change
when the model's layers are re-randomized; similarity to the original
maps should fall markedly with randomization depth. Methods whose maps
survive randomization are acting as input edge detectors.
"""

import numpy as np

from repro.datasets import make_grid_images
from repro.models import MLPClassifier
from repro.unstructured import (
    integrated_gradients,
    model_randomization_test,
    saliency,
    smoothgrad,
)

from conftest import emit, fmt_row


def test_e21_sanity(benchmark):
    X, y, __ = make_grid_images(300, size=8, seed=71)
    model = MLPClassifier(hidden=(24,), epochs=80, lr=0.03, seed=0).fit(X, y)
    assert model.score(X, y) > 0.85

    methods = {
        "saliency": lambda m, x: saliency(m, x),
        "integrated_gradients": lambda m, x: integrated_gradients(
            m, x, n_steps=30
        ),
        "smoothgrad": lambda m, x: smoothgrad(m, x, n_samples=25, seed=0),
    }
    instances = X[:5]
    curves = {}
    for name, fn in methods.items():
        results = model_randomization_test(model, fn, instances, seed=0)
        curves[name] = [r["similarity"] for r in results]

    depths = list(range(len(next(iter(curves.values())))))
    rows = [fmt_row("layers randomized", *curves.keys())]
    for d in depths:
        rows.append(fmt_row(d, *[curves[name][d] for name in curves]))
    emit("E21_sanity", rows)

    # Shape: every method starts at similarity 1 and degrades
    # substantially under full randomization — they pass the sanity check.
    for name, curve in curves.items():
        assert curve[0] == 1.0
        assert curve[-1] < 0.85, name

    benchmark(lambda: saliency(model, X[0]))
