"""E39 — the games layer: one walk loop, shared caching and truncation.

Claim: routing Shapley-style computations through the shared
cooperative-game estimator (``repro.games``) is not just a refactor.
At an *equal permutation budget*, Data Shapley through
``permutation_estimator`` with truncation is ≥2× faster than the
pre-games untruncated walk loop, bit-identical when truncation is
disabled; and Shapley-of-tuples through the shared evaluator memoizes
repeated sub-databases in the packed-bit coalition cache, which the
pre-games value function re-evaluated from scratch.
"""

import time

import numpy as np

from repro import obs
from repro.datasets import make_classification
from repro.datavalue import UtilityFunction, legacy_tmc_shapley, tmc_shapley
from repro.db import Relation, shapley_of_tuples
from repro.models import LogisticRegression
from repro.models.model_selection import train_test_split

from conftest import emit, fmt_row


def make_utility(seed: int = 41) -> UtilityFunction:
    """A fresh utility per configuration, so memo caches cannot leak."""
    data = make_classification(140, n_features=4, class_sep=3.0, seed=seed)
    X_train, X_val, y_train, y_val = train_test_split(
        data.X, data.y, test_size=0.3, seed=0
    )
    return UtilityFunction(
        lambda: LogisticRegression(alpha=1.0), X_train, y_train, X_val, y_val
    )


def make_sales(n: int, seed: int = 0) -> Relation:
    rng = np.random.default_rng(seed)
    regions = ["east", "west", "north"]
    rows = [
        (regions[int(rng.integers(0, 3))], float(rng.exponential(50)))
        for __ in range(n)
    ]
    return Relation(["region", "amount"], rows, name="sales")


def skewed_total(rel: Relation) -> float:
    """Non-additive aggregate: second-largest + 0.1 · total."""
    amounts = sorted((t["amount"] for t in rel.to_dicts()), reverse=True)
    second = amounts[1] if len(amounts) > 1 else 0.0
    return second + 0.1 * sum(amounts)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_e39_games_layer():
    n_perms = 30
    rows = [fmt_row("data shapley", "wall (s)", "utility evals",
                    "trunc pos", "speedup")]

    # Before: the pre-games loop, scanning every permutation to the end
    # (truncation_tolerance=0.0 never fires) — the equal-budget baseline.
    u_legacy = make_utility()
    legacy, t_legacy = _timed(lambda: legacy_tmc_shapley(
        u_legacy, n_permutations=n_perms, truncation_tolerance=0.0, seed=0,
    ))
    rows.append(fmt_row("legacy untrunc", t_legacy,
                        u_legacy.n_evaluations, float(u_legacy.n_points), 1.0))

    # Same budget through the shared estimator, truncation still off:
    # bitwise-identical values (the refactor changed nothing numeric).
    u_plain = make_utility()
    plain, t_plain = _timed(lambda: tmc_shapley(
        u_plain, n_permutations=n_perms, truncation_tolerance=0.0, seed=0,
    ))
    rows.append(fmt_row("games untrunc", t_plain, u_plain.n_evaluations,
                        float(u_plain.n_points), t_legacy / t_plain))
    assert np.array_equal(plain.values, legacy.values)

    # After: the games path at its default tolerance — the estimator's
    # truncation stops each walk once the running utility reaches the
    # full-data score, at the same permutation budget.
    u_games = make_utility()
    dv_hits0 = obs.counter("coalition.cache.hits").value
    dv_misses0 = obs.counter("coalition.cache.misses").value
    games, t_games = _timed(lambda: tmc_shapley(
        u_games, n_permutations=n_perms, seed=0,
    ))
    dv_hits = obs.counter("coalition.cache.hits").value - dv_hits0
    dv_misses = obs.counter("coalition.cache.misses").value - dv_misses0
    dv_rate = dv_hits / (dv_hits + dv_misses) if dv_hits + dv_misses else 0.0
    mean_pos = games.meta["mean_truncation_position"]
    speedup = t_legacy / t_games
    rows.append(fmt_row("games trunc", t_games, u_games.n_evaluations,
                        mean_pos, speedup))

    n_points = u_games.n_points
    trunc_savings = 1.0 - mean_pos / n_points
    # Within one estimate the coalition cache fronts the utility memo,
    # so repeats land there; the memo serves estimates that share a
    # utility (its process counters are datavalue.cache.hits/misses).
    memo = u_games.cache_hits + u_games.cache_misses
    memo_rate = u_games.cache_hits / memo if memo else 0.0
    rows.append("")
    rows.append(fmt_row("trunc savings", trunc_savings))
    rows.append(fmt_row("coalition rate", dv_rate))
    rows.append(fmt_row("memo hit rate", memo_rate))

    # Shapley of tuples: the same sampling walk, with and without the
    # shared evaluator's packed-bit coalition cache (10 endogenous
    # tuples, 400 walks → sub-databases repeat constantly).
    relation = make_sales(10, seed=10)
    uncached, t_uncached = _timed(lambda: shapley_of_tuples(
        relation, skewed_total, method="sampling",
        n_permutations=400, seed=0, engine=False,
    ))
    hits0 = obs.counter("coalition.cache.hits").value
    misses0 = obs.counter("coalition.cache.misses").value
    cached, t_cached = _timed(lambda: shapley_of_tuples(
        relation, skewed_total, method="sampling",
        n_permutations=400, seed=0, engine=True,
    ))
    hits = obs.counter("coalition.cache.hits").value - hits0
    misses = obs.counter("coalition.cache.misses").value - misses0
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    rows.append("")
    rows.append(fmt_row("tuple shapley", "wall (s)", "cache rate", "speedup"))
    rows.append(fmt_row("pre-games v(S)", t_uncached, "-", 1.0))
    rows.append(fmt_row("games engine", t_cached, hit_rate,
                        t_uncached / t_cached))

    emit("E39_games_layer", rows, data={
        "n_permutations": n_perms,
        "data_shapley": {
            "t_legacy_s": t_legacy,
            "t_games_untruncated_s": t_plain,
            "t_games_s": t_games,
            "speedup": speedup,
            "evals_legacy": u_legacy.n_evaluations,
            "evals_games": u_games.n_evaluations,
            "mean_truncation_position": mean_pos,
            "truncation_savings": trunc_savings,
            "coalition_cache_hit_rate": dv_rate,
            "utility_memo_hit_rate": memo_rate,
        },
        "tuple_shapley": {
            "t_uncached_s": t_uncached,
            "t_cached_s": t_cached,
            "speedup": t_uncached / t_cached,
            "coalition_cache_hit_rate": hit_rate,
        },
    })

    # The headline claims: identical values with the bespoke loops
    # deleted, ≥2× on Data Shapley at an equal permutation budget, and
    # the tuple walk actually exercising the shared cache.
    assert speedup >= 2.0
    assert trunc_savings > 0.25
    assert hits > 0 and hit_rate > 0.5
    scale = max(abs(v) for v in uncached.values())
    assert all(
        abs(uncached[i] - cached[i]) <= 1e-9 * scale for i in uncached
    )
