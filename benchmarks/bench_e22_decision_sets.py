"""E22 — Decision sets: the accuracy/interpretability trade-off (§2.2, [43]).

Claim [Lakkaraju et al.]: sweeping the interpretability weight λ traces a
frontier — larger λ yields smaller rule sets (fewer predicates to read)
at a modest accuracy cost; λ = 0 recovers the most accurate but most
complex set.
"""

import numpy as np

from repro.datasets import make_loan_dataset
from repro.rules import DecisionSetClassifier

from conftest import emit, fmt_row


def test_e22_decision_sets(benchmark):
    train = make_loan_dataset(600, seed=7)
    test = make_loan_dataset(600, seed=8)

    rows = [fmt_row("lambda", "test acc", "n_rules", "complexity")]
    complexities, accuracies = [], []
    for lam in (0.0, 0.1, 0.5, 2.0):
        model = DecisionSetClassifier(
            max_rules=8, min_support=0.08,
            lambda_interpretability=lam, seed=0,
        ).fit(train)
        acc = model.score(test.X, test.y)
        complexities.append(model.complexity)
        accuracies.append(acc)
        rows.append(fmt_row(lam, acc, len(model.rules_), model.complexity))
    emit("E22_decision_sets", rows)

    majority = max(np.mean(test.y), 1 - np.mean(test.y))
    # Shape: the frontier exists — complexity falls as λ grows, and every
    # point stays above the majority baseline.
    assert complexities[-1] <= complexities[0]
    assert min(accuracies) > majority - 0.02
    assert max(accuracies) > majority + 0.03

    benchmark(lambda: DecisionSetClassifier(
        max_rules=6, min_support=0.1, seed=0
    ).fit(train))
