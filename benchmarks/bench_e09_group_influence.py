"""E9 — Group influence: first-order degrades, second-order tracks
(§2.3.2, [8]).

Claim [Basu et al.]: for coherent groups, first-order (additive) influence
underestimates the parameter change increasingly with group size; the
second-order correction stays close to the retrained ground truth.
"""

import numpy as np

from repro.datasets import make_classification
from repro.influence import GroupInfluence
from repro.models import LogisticRegression

from conftest import emit, fmt_row


def test_e09_group_influence(benchmark):
    data = make_classification(300, n_features=5, class_sep=1.2, seed=52)
    model = LogisticRegression(alpha=1.0).fit(data.X, data.y)
    gi = GroupInfluence(model, data.X, data.y)
    # Coherent groups: the top-k rows along the first informative feature.
    coherent_order = np.argsort(data.X[:, 0])

    rows = [fmt_row("group size", "1st-order err", "2nd-order err",
                    "newton err")]
    first_errors, second_errors = [], []
    for size in (10, 30, 60, 90):
        group = coherent_order[-size:]
        actual = gi.actual_parameter_change(
            group, lambda: LogisticRegression(alpha=1.0)
        )
        norm = np.linalg.norm(actual)
        errors = {}
        for order in ("first_order", "second_order", "newton"):
            estimated = gi.parameter_change(group, order)
            errors[order] = float(np.linalg.norm(estimated - actual) / norm)
        first_errors.append(errors["first_order"])
        second_errors.append(errors["second_order"])
        rows.append(fmt_row(size, errors["first_order"],
                            errors["second_order"], errors["newton"]))
        assert errors["second_order"] <= errors["first_order"]
        assert errors["newton"] <= errors["first_order"]
    emit("E9_group_influence", rows)

    # Shape: first-order error grows with group size; the gap to
    # second-order widens.
    assert first_errors[-1] > first_errors[0]
    assert (first_errors[-1] - second_errors[-1]) > (
        first_errors[0] - second_errors[0]
    )

    group = coherent_order[-60:]
    benchmark(lambda: gi.parameter_change(group, "second_order"))
