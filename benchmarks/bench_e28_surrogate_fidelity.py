"""E28 — Contextual surrogates beat flat ones; fidelity vs readability
(§2.1.1, [42, 68]).

Claim [Lahiri & Edakunni; bLIMEy]: a tree of local linear models captures
a non-linear black box far better than one global linear model, at a
bounded interpretability cost (few contexts, each a plain linear
formula); a decision-tree distillation sits between, trading coefficient
semantics for rule semantics.
"""

import numpy as np

from repro.surrogate import LinearModelTree, TreeDistiller

from conftest import emit, fmt_row


def test_e28_surrogate_fidelity(benchmark, loan_setup):
    data, __, gbm = loan_setup

    rows = [fmt_row("surrogate", "fidelity", "n_contexts/leaves")]
    flat = LinearModelTree(gbm, max_depth=0).fit(data.X)
    lmt2 = LinearModelTree(gbm, max_depth=2).fit(data.X)
    lmt3 = LinearModelTree(gbm, max_depth=3).fit(data.X)
    distilled = TreeDistiller(gbm, max_depth=3, task="regression")
    distilled.fit(data.X)

    fidelities = {
        "linear (1 context)": (flat.fidelity(data.X), flat.n_contexts),
        "LMT depth 2": (lmt2.fidelity(data.X), lmt2.n_contexts),
        "LMT depth 3": (lmt3.fidelity(data.X), lmt3.n_contexts),
        "tree distill d3": (distilled.fidelity(data.X), distilled.n_leaves),
    }
    for name, (fidelity, size) in fidelities.items():
        rows.append(fmt_row(name.ljust(18), fidelity, size))
    emit("E28_surrogate_fidelity", rows)

    # Shape: contextual linear models dominate the flat linear surrogate
    # and deepen monotonically; the LMT also beats the piecewise-constant
    # distillation of the same depth (it has strictly more capacity).
    assert fidelities["LMT depth 2"][0] > fidelities["linear (1 context)"][0]
    assert fidelities["LMT depth 3"][0] >= fidelities["LMT depth 2"][0]
    assert fidelities["LMT depth 3"][0] >= fidelities["tree distill d3"][0]
    assert fidelities["LMT depth 3"][0] > 0.9

    benchmark(lambda: LinearModelTree(gbm, max_depth=2).fit(data.X))
