"""E26 — The marginal-vs-conditional value-function dilemma (§2.1.2, [40]).

Claim [Kumar et al., "Problems with Shapley-value-based explanations"]:
under feature correlation, marginal (interventional) SHAP gives zero
credit to a model-unused feature but evaluates the model off-manifold,
while conditional SHAP stays on-manifold but leaks credit onto the unused
correlated feature. Neither is "wrong" — the divergence itself, growing
with the correlation, is the phenomenon.
"""

import numpy as np

from repro.datasets import make_correlated_gaussian
from repro.shapley import ConditionalShapExplainer, ExactShapleyExplainer

from conftest import emit, fmt_row


def test_e26_conditional_shap(benchmark):
    def model(Z):
        return Z[:, 0]  # feature 1 is never used

    x = np.array([1.5, 1.5])
    rows = [fmt_row("rho", "marginal phi1", "conditional phi1")]
    leaks = []
    for rho in (0.0, 0.5, 0.95):
        X = make_correlated_gaussian(800, n_features=2, rho=rho, seed=3)
        marginal = ExactShapleyExplainer(model, X[:150]).explain(x)
        conditional = ConditionalShapExplainer(
            model, X, k=25, n_permutations=40, seed=0
        ).explain(x)
        leaks.append(float(conditional.values[1]))
        rows.append(fmt_row(rho, float(marginal.values[1]),
                            float(conditional.values[1])))
        # marginal never credits the unused feature
        assert abs(marginal.values[1]) < 0.05
    emit("E26_conditional_shap", rows)

    # Shape: conditional credit to the unused feature grows with rho.
    assert leaks[0] < 0.15
    assert leaks[2] > leaks[1] > leaks[0] - 0.05
    assert leaks[2] > 0.3

    X = make_correlated_gaussian(800, n_features=2, rho=0.95, seed=3)
    explainer = ConditionalShapExplainer(
        model, X, k=25, n_permutations=20, seed=0
    )
    benchmark(lambda: explainer.explain(x))
