"""E18 — PrIU incremental updates vs full retraining (§3, [77]).

Claim [Wu, Tannen & Davidson]: deletion what-ifs can be answered from
cached training state much faster than retraining, with negligible (ridge:
zero) parameter error, across deletion fractions.
"""

import time

import numpy as np

from repro.datasets import make_classification
from repro.models import LogisticRegression, RidgeRegression
from repro.unlearning import IncrementalLogistic, IncrementalRidge

from conftest import emit, fmt_row


def test_e18_priu(benchmark):
    rng = np.random.default_rng(4)
    n, d = 2000, 12
    X = rng.normal(0, 1, (n, d))
    y_reg = X @ rng.normal(0, 1, d) + rng.normal(0, 0.2, n)
    data = make_classification(n, n_features=d, seed=5)
    X_cls, y_cls = data.X, data.y

    rows = [fmt_row("model", "del frac", "incr (s)", "retrain (s)",
                    "speedup", "param err")]
    speedups = []
    for fraction in (0.01, 0.05, 0.2):
        k = int(fraction * n)
        delete = np.arange(k)

        # ridge: exact downdate
        incremental = IncrementalRidge(alpha=1.0).fit(X, y_reg)
        t0 = time.perf_counter()
        incremental.delete(delete)
        t_incr = time.perf_counter() - t0
        t0 = time.perf_counter()
        reference = RidgeRegression(alpha=1.0).fit(X[k:], y_reg[k:])
        t_retrain = time.perf_counter() - t0
        err = float(np.linalg.norm(
            np.append(incremental.coef_, incremental.intercept_)
            - reference.params
        ) / np.linalg.norm(reference.params))
        rows.append(fmt_row("ridge", fraction, t_incr, t_retrain,
                            t_retrain / max(t_incr, 1e-9), err))
        assert err < 1e-8

        # logistic: Newton warm-start (best-of-3 timings to damp jitter)
        t_incr = float("inf")
        for __ in range(3):
            inc_log = IncrementalLogistic(alpha=1.0).fit(X_cls, y_cls)
            t0 = time.perf_counter()
            inc_log.delete(delete)
            t_incr = min(t_incr, time.perf_counter() - t0)
        t_retrain = float("inf")
        for __ in range(3):
            t0 = time.perf_counter()
            LogisticRegression(alpha=1.0).fit(X_cls[k:], y_cls[k:])
            t_retrain = min(t_retrain, time.perf_counter() - t0)
        err = inc_log.parameter_error_vs_retrain()
        speedup = t_retrain / max(t_incr, 1e-9)
        speedups.append(speedup)
        rows.append(fmt_row("logistic", fraction, t_incr, t_retrain,
                            speedup, err))
        assert err < 1e-4
    emit("E18_priu", rows)

    # Shape: the incremental path wins clearly at small deletion fractions.
    assert speedups[0] > 1.2

    inc = IncrementalLogistic(alpha=1.0).fit(X_cls, y_cls)
    state = {"next": 0}

    def delete_one():
        inc.delete([state["next"]])
        state["next"] += 1

    benchmark.pedantic(delete_one, rounds=50, iterations=1)
