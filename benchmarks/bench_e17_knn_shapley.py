"""E17 — KNN-Shapley: exact values, orders of magnitude faster (§2.3.1, [34]).

Claim [Jia et al.]: the closed-form kNN valuation computes *exact* Shapley
values in O(n log n) per query where TMC-Shapley needs thousands of model
retrainings — at matched (or better) mislabeled-point detection.
"""

import time

import numpy as np

from repro.datasets import make_classification
from repro.datavalue import UtilityFunction, knn_shapley, tmc_shapley
from repro.models import KNeighborsClassifier
from repro.models.model_selection import train_test_split

from conftest import emit, fmt_row


class _AdaptiveKNN(KNeighborsClassifier):
    """kNN whose k clamps to the subset size — TMC prefixes start tiny."""

    def fit(self, X, y):
        self.n_neighbors = min(5, np.atleast_2d(X).shape[0])
        return super().fit(X, y)


def test_e17_knn_shapley(benchmark):
    rows = [fmt_row("n_train", "tmc (s)", "knn (s)", "speedup")]
    speedups = []
    for n in (60, 120, 240):
        data = make_classification(n + 60, n_features=4, class_sep=2.0,
                                   seed=31)
        X_train, X_val = data.X[:n], data.X[n:]
        y_train, y_val = data.y[:n], data.y[n:]

        utility = UtilityFunction(
            lambda: _AdaptiveKNN(n_neighbors=5),
            X_train, y_train, X_val, y_val,
        )
        t0 = time.perf_counter()
        tmc_shapley(utility, n_permutations=50, seed=0)
        t_tmc = time.perf_counter() - t0

        t0 = time.perf_counter()
        knn_shapley(X_train, y_train, X_val, y_val, k=5)
        t_knn = time.perf_counter() - t0

        speedup = t_tmc / max(t_knn, 1e-9)
        speedups.append(speedup)
        rows.append(fmt_row(n, t_tmc, t_knn, speedup))
    emit("E17_knn_shapley", rows)

    # Shape: a large gap that grows with n — and note the TMC run here
    # used only 50 permutations (typically still unconverged), so the true
    # gap at matched estimator quality is even larger.
    assert speedups[-1] > 30
    assert speedups[-1] > speedups[0]

    data = make_classification(300, n_features=4, seed=31)
    benchmark(lambda: knn_shapley(
        data.X[:240], data.y[:240], data.X[240:], data.y[240:], k=5
    ))
