"""E35 — Explanation fragility under input perturbation (§2.1.1/§2.4, [22, 73]).

Claims [Ghorbani et al. "Interpretation is fragile"; Alvarez-Melis &
Jaakkola; Smilkov et al.]:

* a *sampled* surrogate (LIME, fresh neighborhood per call — the way a
  user actually re-runs it) is markedly less locally stable than an
  exact deterministic attribution (exact SHAP) of the same smooth model;
* averaging over noisy copies (SmoothGrad) reduces the sensitivity of
  signed gradient maps to input perturbations.
"""

import numpy as np

from repro.datasets import make_grid_images, make_loan_dataset
from repro.models import LogisticRegression, MLPClassifier
from repro.shapley import ExactShapleyExplainer
from repro.surrogate import LimeTabularExplainer
from repro.unstructured import saliency, smoothgrad

from conftest import emit, fmt_row


def mean_relative_sensitivity(explain_fn, x, radius, n_samples=8, seed=0):
    """Mean of ‖φ(x′) − φ(x)‖ / ‖φ(x)‖ over uniform L∞-ball neighbors."""
    rng = np.random.default_rng(seed)
    base = np.asarray(explain_fn(x))
    norm = np.linalg.norm(base) or 1.0
    out = []
    for __ in range(n_samples):
        neighbor = x + rng.uniform(-radius, radius, x.shape[0])
        out.append(np.linalg.norm(np.asarray(explain_fn(neighbor)) - base) / norm)
    return float(np.mean(out))


def test_e35_explanation_fragility(benchmark):
    rows = [fmt_row("explainer", "rel. sensitivity")]
    results = {}

    # Tabular: reseeded LIME vs exact SHAP on the same smooth model.
    data = make_loan_dataset(500, seed=3)
    model = LogisticRegression(alpha=1.0).fit(data.X, data.y)
    x = data.X[0]
    radius = 0.01 * float(data.X.std(axis=0).mean())
    shap = ExactShapleyExplainer(model, data.X[:40])
    lime = LimeTabularExplainer(model, data, n_samples=300, seed=0)
    call_count = {"n": 0}

    def lime_fn(xq):
        call_count["n"] += 1
        return lime.explain(xq, seed=call_count["n"]).values

    results["exact_shap"] = mean_relative_sensitivity(
        lambda xq: shap.explain(xq).values, x, radius
    )
    results["lime(300, reseeded)"] = mean_relative_sensitivity(
        lime_fn, x, radius
    )

    # Gradient maps (signed): raw saliency vs SmoothGrad on an MLP.
    X, y, __ = make_grid_images(300, size=8, seed=5)
    mlp = MLPClassifier(hidden=(24,), epochs=60, lr=0.03, seed=0).fit(X, y)
    results["saliency (signed)"] = mean_relative_sensitivity(
        lambda xq: saliency(mlp, xq, signed=True).values,
        X[0], radius=0.1, n_samples=10,
    )
    results["smoothgrad (signed)"] = mean_relative_sensitivity(
        lambda xq: smoothgrad(mlp, xq, n_samples=50, seed=0,
                              signed=True).values,
        X[0], radius=0.1, n_samples=10,
    )
    for name, value in results.items():
        rows.append(fmt_row(name.ljust(22), value))
    emit("E35_explanation_fragility", rows)

    # Shape assertions from the cited papers.
    assert results["lime(300, reseeded)"] > 2 * results["exact_shap"]
    assert results["smoothgrad (signed)"] < results["saliency (signed)"]

    benchmark(lambda: mean_relative_sensitivity(
        lambda xq: shap.explain(xq).values, x, radius, n_samples=3
    ))
