"""E29 — Additive attributions miss interactions; interaction indices
recover them (§2.1.2, [40]).

Claim [Kumar et al.]: on a purely interactional concept (XOR) every
additive attribution — LIME's linear surrogate, the Shapley main effects
— is near-zero and uninformative, while the pairwise Shapley interaction
index concentrates the full signal on the interacting pair.
"""

import numpy as np

from repro.datasets import make_xor
from repro.models import DecisionTreeClassifier
from repro.shapley import ExactShapleyExplainer, InteractionExplainer
from repro.surrogate import LimeTabularExplainer

from conftest import emit, fmt_row


def test_e29_interactions(benchmark):
    data = make_xor(800, noise=0.0, seed=2)
    tree = DecisionTreeClassifier(max_depth=8, seed=0).fit(data.X, data.y)
    assert tree.score(data.X, data.y) > 0.97

    instances = [np.array([0.6, 0.6]), np.array([-0.6, 0.6]),
                 np.array([0.5, -0.5])]
    background = data.X[:100]

    lime = LimeTabularExplainer(tree, data, n_samples=2000, seed=0)
    shap = ExactShapleyExplainer(tree, background)
    inter = InteractionExplainer(tree, background)

    lime_mass, shap_mass, main_mass, pair_mass = [], [], [], []
    for x in instances:
        lime_mass.append(float(np.abs(lime.explain(x).values).sum()))
        shap_att = shap.explain(x)
        shap_mass.append(float(np.abs(shap_att.values).sum()))
        att = inter.explain(x)
        matrix = att.meta["interactions"]
        main_mass.append(float(np.abs(np.diag(matrix)).sum()))
        pair_mass.append(float(abs(matrix[0, 1])))

    rows = [
        fmt_row("quantity", "mean |mass|"),
        fmt_row("LIME coefficients", float(np.mean(lime_mass))),
        fmt_row("SHAP values", float(np.mean(shap_mass))),
        fmt_row("interaction: main", float(np.mean(main_mass))),
        fmt_row("interaction: pair", float(np.mean(pair_mass))),
    ]
    emit("E29_interactions", rows)

    # Shape: the pairwise term carries more signal than the interaction
    # decomposition's main effects, and LIME's additive coefficients are
    # comparatively small despite a perfectly accurate model.
    assert np.mean(pair_mass) > np.mean(main_mass)
    assert np.mean(pair_mass) > 0.2
    assert np.mean(lime_mass) < np.mean(pair_mass)

    x = instances[0]
    benchmark(lambda: inter.explain(x))
