"""E38 — Fault-tolerant runtime: drift, overhead and degradation under faults.

Claim: the guarded runtime turns injected model failures into retries
instead of crashes — at a 10% fault rate every batch row still completes
and the recovered attributions drift ≤1e-9 from the clean run (retries
re-ask a deterministic model, so recovery is exact) — while the guard
itself prices at ≤5% wall-time overhead when nothing faults. One
poisoned row in a parallel ``explain_batch`` costs exactly that row,
never the batch.
"""

import time

import numpy as np

from repro import obs
from repro.robust import FaultyModel, GuardConfig, PartialBatchError
from repro.shapley import KernelShapExplainer

from conftest import emit, fmt_row

N_SAMPLES = 64
N_ROWS = 8
FAULT_RATE = 0.10
RETRIES = 25  # generous: at 10% faults, P(25 consecutive faults) ~ 1e-25


def _timed_batch(explainer, X, **kwargs):
    t0 = time.perf_counter()
    results = explainer.explain_batch(X, **kwargs)
    return results, time.perf_counter() - t0


def test_e38_fault_tolerance(loan_setup):
    data, __, gbm = loan_setup
    X = data.X[:N_ROWS]

    common = dict(n_samples=N_SAMPLES, max_background=50, seed=3)

    # Clean reference: guarded runtime, no faults.
    clean = KernelShapExplainer(gbm, data.X, **common)
    clean_results, wall_clean = _timed_batch(clean, X)

    # Unguarded baseline prices the guard at 0% faults.
    bare = KernelShapExplainer(gbm, data.X, guard=False, **common)
    __, wall_bare = _timed_batch(bare, X)
    overhead = wall_clean / wall_bare - 1.0

    # 10% injected faults (transient errors + NaN bursts), recovered by
    # retry/re-query. The model is deterministic, so a successful retry
    # returns the exact clean value: drift should be ~0.
    faulty_model = FaultyModel(
        gbm, error_rate=FAULT_RATE / 2, nan_rate=FAULT_RATE / 2, seed=11
    )
    guarded = KernelShapExplainer(
        faulty_model, data.X,
        guard=GuardConfig(retries=RETRIES, backoff_s=0.0,
                          on_nonfinite="requery"),
        **common,
    )
    retries_before = obs.counter("robust.retries").value
    faulty_results, wall_faulty = _timed_batch(guarded, X)
    retries_spent = obs.counter("robust.retries").value - retries_before
    faults_injected = sum(faulty_model.fault_counts.values())

    drift = max(
        float(np.abs(a.values - b.values).mean())
        for a, b in zip(clean_results, faulty_results)
    )

    # Degradation: one poisoned row (non-finite instance) costs exactly
    # that row, on the parallel path too.
    X_poisoned = X.copy()
    X_poisoned[3, 0] = np.nan
    failed_before = obs.counter("robust.rows_failed").value
    try:
        clean.explain_batch(X_poisoned, n_jobs=2)
        rows_survived = -1  # unreachable: the poisoned row must fail
    except PartialBatchError as e:
        rows_survived = len(e.completed_indices)
    rows_failed = obs.counter("robust.rows_failed").value - failed_before

    rows = [
        fmt_row("scenario", "wall s", "rows ok", "retries", "drift"),
        fmt_row("unguarded 0% faults", wall_bare, N_ROWS, 0, 0.0),
        fmt_row("guarded 0% faults", wall_clean, N_ROWS, 0, 0.0),
        fmt_row(f"guarded {FAULT_RATE:.0%} faults", wall_faulty, N_ROWS,
                retries_spent, drift),
        fmt_row("poisoned batch row", "-", rows_survived, "-", "-"),
        fmt_row("guard overhead", f"{overhead:+.1%}", "-", "-", "-"),
    ]
    emit("E38_fault_tolerance", rows, data={
        "n_rows": N_ROWS,
        "n_samples": N_SAMPLES,
        "fault_rate": FAULT_RATE,
        "wall_s_unguarded": wall_bare,
        "wall_s_guarded": wall_clean,
        "wall_s_faulty": wall_faulty,
        "guard_overhead": overhead,
        "retries_spent": int(retries_spent),
        "faults_injected": int(faults_injected),
        "mean_abs_drift": drift,
        "poisoned_rows_survived": rows_survived,
    })

    # Headline claims.
    assert all(r is not None for r in faulty_results)  # every row completed
    assert faults_injected > 0 and retries_spent > 0   # faults really fired
    assert drift <= 1e-9                               # recovery is exact
    assert rows_survived == N_ROWS - 1                 # lost only the bad row
    # Guard overhead at 0% faults stays ≤5% (with slack for timer noise
    # on a sub-second benchmark).
    assert overhead <= 0.05 or wall_clean - wall_bare < 0.25
