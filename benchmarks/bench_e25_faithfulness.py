"""E25 — Quantitative faithfulness evaluation of explainers (§3,
"user study and evaluation").

Claim [Jacovi & Goldberg; deletion/insertion protocol]: faithfulness can
be ranked without users via deletion/insertion tests — attribution
methods that track the model (SHAP, LIME) must dominate a random-order
control, and exact Shapley should match or beat LIME's sampled surrogate.
"""

import numpy as np

from repro.core.explanation import FeatureAttribution
from repro.evaluation import faithfulness_report
from repro.shapley import ExactShapleyExplainer, TreeShapExplainer
from repro.surrogate import LimeTabularExplainer

from conftest import emit, fmt_row


class RandomOrderExplainer:
    def __init__(self, n_features, names, seed=0):
        self.rng = np.random.default_rng(seed)
        self.n_features = n_features
        self.names = names

    def explain(self, x):
        return FeatureAttribution(
            self.rng.normal(0, 1, self.n_features), self.names
        )


def test_e25_faithfulness(benchmark, loan_setup):
    data, __, gbm = loan_setup
    from repro.core.base import as_predict_fn

    predict = as_predict_fn(gbm)
    baseline = data.X.mean(axis=0)
    instances = data.X[:12]

    explainers = {
        "tree_shap": TreeShapExplainer(gbm),
        "exact_shap": ExactShapleyExplainer(gbm, data.X[:40]),
        "lime": LimeTabularExplainer(gbm, data, n_samples=800, seed=0),
        "random": RandomOrderExplainer(
            data.n_features, data.feature_names, seed=0
        ),
    }
    keys = ("deletion_auc", "insertion_auc", "comprehensiveness",
            "sufficiency", "monotonicity")
    rows = [fmt_row("method", *keys)]
    reports = {}
    for name, explainer in explainers.items():
        report = faithfulness_report(
            predict, instances, explainer, baseline, k=2
        )
        reports[name] = report
        rows.append(fmt_row(name, *[report[k] for k in keys]))
    emit("E25_faithfulness", rows)

    # Shape: model-tracking explainers dominate the random control on the
    # movement AUCs, and the exact Shapley methods are at least as
    # faithful as the sampled surrogate.
    for name in ("tree_shap", "exact_shap", "lime"):
        assert reports[name]["deletion_auc"] > reports["random"]["deletion_auc"]
        assert reports[name]["insertion_auc"] > reports["random"]["insertion_auc"]
    assert reports["tree_shap"]["comprehensiveness"] >= \
        reports["lime"]["comprehensiveness"] - 0.02

    explainer = TreeShapExplainer(gbm)
    benchmark(lambda: faithfulness_report(
        predict, instances[:3], explainer, baseline, k=2
    ))
