"""E23 — Low-latency tree unlearning (§3, [59]).

Claim [HedgeCut]: unlearning a training point from a maintained randomized
ensemble is orders of magnitude faster than retraining from scratch,
while accuracy along a deletion stream stays at parity with the
from-scratch model.
"""

import time

import numpy as np

from repro.datasets import make_classification
from repro.unlearning import UnlearnableForest

from conftest import emit, fmt_row


def test_e23_unlearn_forest(benchmark):
    data = make_classification(800, n_features=6, class_sep=1.5, seed=92)
    X, y = data.X, data.y
    holdout = slice(600, None)
    forest = UnlearnableForest(
        n_estimators=15, max_depth=7, seed=0
    ).fit(X[:600], y[:600])

    t0 = time.perf_counter()
    UnlearnableForest(n_estimators=15, max_depth=7, seed=0).fit(
        X[:600], y[:600]
    )
    t_retrain = time.perf_counter() - t0

    deletion_times = []
    checkpoints = {}
    for i in range(150):
        t0 = time.perf_counter()
        forest.delete(i)
        deletion_times.append(time.perf_counter() - t0)
        if i + 1 in (50, 100, 150):
            fresh = UnlearnableForest(
                n_estimators=15, max_depth=7, seed=0
            ).fit(X[i + 1 : 600], y[i + 1 : 600])
            checkpoints[i + 1] = (
                forest.score(X[holdout], y[holdout]),
                fresh.score(X[holdout], y[holdout]),
            )

    mean_delete = float(np.mean(deletion_times))
    rows = [
        fmt_row("metric", "value"),
        fmt_row("retrain from scratch (s)", t_retrain),
        fmt_row("mean deletion (s)", mean_delete),
        fmt_row("speedup per deletion", t_retrain / max(mean_delete, 1e-9)),
        fmt_row("deleted", "unlearned acc", "retrained acc"),
    ]
    for k, (unlearned, retrained) in checkpoints.items():
        rows.append(fmt_row(k, unlearned, retrained))
    emit("E23_unlearn_forest", rows)

    # Shape: deletions are far cheaper than retraining and accuracy stays
    # within a few points of the from-scratch model throughout the stream.
    assert t_retrain / mean_delete > 20
    for unlearned, retrained in checkpoints.values():
        assert abs(unlearned - retrained) < 0.06

    state = {"next": 150}

    def delete_one():
        forest.delete(state["next"])
        state["next"] += 1

    benchmark.pedantic(delete_one, rounds=100, iterations=1)
