"""E8 — Influence functions track leave-one-out retraining (§2.3.2, [39]).

Claim [Koh & Liang, Fig. 1]: predicted vs actual loss changes from
removing single training points lie close to the diagonal — correlation
near 1 for a strongly convex model — and the estimate is orders of
magnitude cheaper than retraining.
"""

import time

import numpy as np

from repro.datasets import make_classification
from repro.influence import InfluenceFunctions
from repro.models import LogisticRegression
from repro.models.metrics import pearson_correlation, spearman_correlation
from repro.models.model_selection import train_test_split

from conftest import emit, fmt_row


def test_e08_influence(benchmark):
    data = make_classification(200, n_features=5, class_sep=1.5, seed=51)
    X_train, X_test, y_train, y_test = train_test_split(
        data.X, data.y, test_size=0.3, seed=1
    )
    model = LogisticRegression(alpha=1.0).fit(X_train, y_train)
    influence = InfluenceFunctions(model, X_train, y_train)

    t0 = time.perf_counter()
    estimated = influence.influence_on_loss(X_test, y_test)
    t_influence = time.perf_counter() - t0

    indices = np.arange(60)
    t0 = time.perf_counter()
    actual = influence.actual_retrain_deltas(
        lambda: LogisticRegression(alpha=1.0),
        X_test, y_test, indices,
        lambda m, X, y: m.loss(X, y) * len(y),
    )
    t_retrain = time.perf_counter() - t0

    pearson = pearson_correlation(estimated.values[indices], actual)
    spearman = spearman_correlation(estimated.values[indices], actual)
    rows = [
        fmt_row("metric", "value"),
        fmt_row("pearson r", pearson),
        fmt_row("spearman rho", spearman),
        fmt_row("influence time (s)", t_influence),
        fmt_row("retrain time (s)", t_retrain),
        fmt_row("speedup", t_retrain / max(t_influence, 1e-9)),
    ]
    emit("E8_influence", rows)

    # Shape: near-diagonal agreement and a large speedup.
    assert pearson > 0.9
    assert spearman > 0.85
    assert t_retrain > t_influence

    benchmark(lambda: influence.influence_on_loss(X_test, y_test))
