"""E5 — Fooling LIME and SHAP with an OOD-routing adversary (§2.1.1, [66]).

Claim: a model that decides purely on a protected attribute can hide it
from perturbation-based explainers: deployed predictions follow the bias
while LIME/Kernel SHAP rank an innocuous feature on top.
"""

import numpy as np

from repro.adversarial import AdversarialModel, train_ood_detector
from repro.datasets import make_recidivism_dataset
from repro.shapley import KernelShapExplainer
from repro.surrogate import LimeTabularExplainer

from conftest import emit, fmt_row


def test_e05_fooling(benchmark):
    data = make_recidivism_dataset(800, seed=61)
    race = data.feature_index("race")
    age = data.feature_index("age")
    median_age = np.median(data.X[:, age])

    def biased(X):
        return (X[:, race] == 1).astype(float)

    def innocuous(X):
        return (X[:, age] > median_age).astype(float)

    detector = train_ood_detector(data, seed=0)
    adversary = AdversarialModel(biased, innocuous, detector)
    adversary.calibrate(data.X, target_rate=0.9)

    def top_feature_rate(explainer_factory, instances):
        hits = {"race": 0, "other": 0}
        for x in instances:
            top = explainer_factory().explain(x).ranking()[0]
            hits["race" if top == race else "other"] += 1
        total = sum(hits.values())
        return hits["race"] / total

    instances = data.X[:10]
    # SHAP against the zero background needs instances whose biased output
    # differs from the baseline (race = 1), otherwise all attributions are
    # identically zero and the ranking is vacuous.
    shap_instances = data.X[data.X[:, race] == 1][:6]
    lime_honest = top_feature_rate(
        lambda: LimeTabularExplainer(biased, data, n_samples=600, seed=0),
        instances,
    )
    lime_attacked = top_feature_rate(
        lambda: LimeTabularExplainer(adversary, data, n_samples=600, seed=0),
        instances,
    )
    shap_honest = top_feature_rate(
        lambda: KernelShapExplainer(
            biased, np.zeros((1, data.n_features)), n_samples=128, seed=0
        ),
        shap_instances,
    )
    shap_attacked = top_feature_rate(
        lambda: KernelShapExplainer(
            adversary, np.zeros((1, data.n_features)), n_samples=128, seed=0
        ),
        shap_instances,
    )
    bias_fidelity = float(np.mean(
        adversary.predict(data.X) == (data.X[:, race] == 1).astype(int)
    ))

    rows = [
        fmt_row("setting", "P(top = race)"),
        fmt_row("LIME / honest model", lime_honest),
        fmt_row("LIME / adversarial", lime_attacked),
        fmt_row("KernelSHAP / honest", shap_honest),
        fmt_row("KernelSHAP / adversarial", shap_attacked),
        fmt_row("deployed bias fidelity", bias_fidelity),
    ]
    emit("E5_fooling", rows)

    # Shape: honest explanations expose race; the attack hides it while
    # deployed decisions still follow it.
    assert lime_honest == 1.0 and shap_honest == 1.0
    assert lime_attacked <= 0.5
    assert shap_attacked <= 0.35
    assert bias_fidelity > 0.9

    lime = LimeTabularExplainer(adversary, data, n_samples=600, seed=0)
    benchmark(lambda: lime.explain(data.X[0]))
