"""E2 — Approximation error of Kernel SHAP / sampling vs budget (§2.1.2).

Claim: both approximations converge to the exact Shapley values as the
evaluation budget grows; the error curve is monotone-decreasing in shape.
"""

import numpy as np

from repro.shapley import exact_shapley, kernel_shap, permutation_shapley

from conftest import emit, fmt_row

N_PLAYERS = 8


def make_game(seed: int = 5):
    rng = np.random.default_rng(seed)
    table = rng.normal(0, 1, 2 ** N_PLAYERS)

    def v(masks):
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        return table[masks @ (1 << np.arange(N_PLAYERS))]

    return v


def test_e02_convergence(benchmark):
    v = make_game()
    reference = exact_shapley(v, N_PLAYERS)
    budgets = [16, 32, 64, 128, 254]
    rows = [fmt_row("budget", "kernel max err", "sampling max err")]
    kernel_errors, sampling_errors = [], []
    for budget in budgets:
        kernel_err = []
        sampling_err = []
        for seed in range(5):
            phi_k, __ = kernel_shap(v, N_PLAYERS, n_samples=budget, seed=seed)
            kernel_err.append(np.abs(phi_k - reference).max())
            n_perm = max(2, budget // (N_PLAYERS + 1))
            phi_s, __ = permutation_shapley(
                v, N_PLAYERS, n_permutations=n_perm, seed=seed
            )
            sampling_err.append(np.abs(phi_s - reference).max())
        kernel_errors.append(float(np.mean(kernel_err)))
        sampling_errors.append(float(np.mean(sampling_err)))
        rows.append(fmt_row(budget, kernel_errors[-1], sampling_errors[-1]))
    emit("E2_kernel_convergence", rows, data={
        "budgets": budgets,
        "kernel_max_err": kernel_errors,
        "sampling_max_err": sampling_errors,
    })

    # Shape: errors shrink substantially from the smallest to largest budget,
    # and the full-enumeration kernel run is near-exact (254 = 2^8 − 2).
    assert kernel_errors[-1] < kernel_errors[0] * 0.5
    assert sampling_errors[-1] < sampling_errors[0]
    assert kernel_errors[-1] < 1e-8

    benchmark(lambda: kernel_shap(v, N_PLAYERS, n_samples=128, seed=0))
