"""E24 — Global understanding from local explanations (§2.1.2, [46]).

Claim [Lundberg et al. 2020]: averaging |SHAP| over a dataset yields a
global importance ranking consistent with permutation importance, while
retaining the per-instance detail single-number importances lose.
"""

import numpy as np

from repro.models.metrics import spearman_correlation
from repro.shapley import (
    TreeShapExplainer,
    aggregate_attributions,
    permutation_importance,
)

from conftest import emit, fmt_row


def test_e24_global(benchmark, loan_setup):
    data, __, gbm = loan_setup
    explainer = TreeShapExplainer(gbm)
    global_shap = aggregate_attributions(
        explainer, data.X[:80], feature_names=data.feature_names
    )
    perm = permutation_importance(gbm, data.X, data.y, n_repeats=5, seed=0)

    rows = [fmt_row("feature", "mean |SHAP|", "perm importance")]
    for j in global_shap.ranking():
        rows.append(fmt_row(data.feature_names[j],
                            float(global_shap.mean_abs[j]), float(perm[j])))
    rho = spearman_correlation(global_shap.mean_abs, perm)
    rows.append(fmt_row("spearman(rankings)", rho, ""))
    emit("E24_global", rows)

    # Shape: the two global orderings agree strongly, and both put
    # credit_score (the dominant causal driver) on top.
    assert rho > 0.6
    top_shap = data.feature_names[global_shap.ranking()[0]]
    top_perm = data.feature_names[int(np.argmax(perm))]
    assert top_shap == top_perm == "credit_score"
    # The local detail exists: per-instance attributions vary in sign.
    j = data.feature_index("credit_score")
    column = global_shap.matrix[:, j]
    assert (column > 0).any() and (column < 0).any()

    benchmark(lambda: aggregate_attributions(explainer, data.X[:20]))
