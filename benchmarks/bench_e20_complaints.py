"""E20 — Complaint-driven training-data debugging (§3, [76]).

Claim [Rain / Wu et al.]: given a complaint over an aggregate of model
predictions, influence-function ranking of training points fixes the
aggregate with far fewer deletions than random or loss-based rankings.
"""

import numpy as np

from repro.datasets import make_loan_dataset
from repro.db import Complaint, ComplaintDebugger
from repro.models import LogisticRegression
from repro.models.model_selection import train_test_split

from conftest import emit, fmt_row


def test_e20_complaints(benchmark):
    data = make_loan_dataset(600, seed=81)
    rng = np.random.default_rng(3)
    corrupted = rng.choice(data.n_samples, size=60, replace=False)
    y = data.y.copy()
    y[corrupted] = 1 - y[corrupted]
    X_train, X_serve, y_train, __ = train_test_split(
        data.X, y, test_size=0.3, seed=0
    )
    model = LogisticRegression(alpha=1.0).fit(X_train, y_train)
    debugger = ComplaintDebugger(model, X_train, y_train, X_serve)
    scope = np.ones(X_serve.shape[0], dtype=bool)
    complaint = Complaint(scope=scope, direction="lower")

    influence_ranking = debugger.rank_training_points(complaint)
    # loss-based baseline: remove highest-training-loss points first
    losses = -np.log(np.clip(np.where(
        y_train == 1,
        model.predict_proba(X_train)[:, 1],
        model.predict_proba(X_train)[:, 0],
    ), 1e-12, None))
    loss_ranking = np.argsort(-losses)
    random_ranking = rng.permutation(X_train.shape[0])

    factory = lambda: LogisticRegression(alpha=1.0)
    rows = [fmt_row("k removed", "influence", "loss-based", "random")]
    movements = {}
    for k in (10, 30, 60):
        moved = {}
        for name, ranking in (("influence", influence_ranking),
                              ("loss-based", loss_ranking),
                              ("random", random_ranking)):
            moved[name] = debugger.fix_rate(
                complaint, ranking, k, factory
            )["movement"]
        movements[k] = moved
        rows.append(fmt_row(k, moved["influence"], moved["loss-based"],
                            moved["random"]))
    emit("E20_complaints", rows)

    # Shape: influence-guided deletion moves the aggregate most at every
    # budget, decisively beating random.
    for k, moved in movements.items():
        assert moved["influence"] >= moved["random"]
    assert movements[30]["influence"] > movements[30]["random"] + 2
    assert movements[30]["influence"] >= movements[30]["loss-based"] - 1

    benchmark(lambda: debugger.rank_training_points(complaint))
