"""E3 — TreeSHAP is polynomial where exact enumeration is exponential (§2.1.2).

Claim [46]: exact Shapley needs 2^d coalition evaluations; the TreeSHAP
recursion computes the same values in polynomial time. The wall-clock gap
must widen rapidly with the number of features.
"""

import time

import numpy as np

from repro.datasets import make_classification
from repro.models import DecisionTreeClassifier
from repro.shapley import TreeShapExplainer, exact_shapley

from conftest import emit, fmt_row


def test_e03_treeshap_speed(benchmark):
    rows = [fmt_row("n_features", "exact (s)", "treeshap (s)", "speedup",
                    "max |diff|")]
    speedups = []
    for n_features in (6, 9, 12):
        data = make_classification(400, n_features=n_features, seed=3)
        tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(data.X, data.y)
        explainer = TreeShapExplainer(tree)
        x = data.X[0]

        t0 = time.perf_counter()
        reference = exact_shapley(explainer.value_function(x), n_features)
        t_exact = time.perf_counter() - t0

        t0 = time.perf_counter()
        for __ in range(10):
            fast = explainer.explain(x).values
        t_fast = (time.perf_counter() - t0) / 10

        speedup = t_exact / max(t_fast, 1e-9)
        speedups.append(speedup)
        rows.append(fmt_row(n_features, t_exact, t_fast, speedup,
                            float(np.abs(fast - reference).max())))
        assert np.allclose(fast, reference, atol=1e-9)
    emit("E3_treeshap_speed", rows)

    # Shape: the speedup grows with dimensionality (exponential vs poly).
    assert speedups[-1] > speedups[0] * 4

    data = make_classification(400, n_features=12, seed=3)
    tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(data.X, data.y)
    explainer = TreeShapExplainer(tree)
    benchmark(lambda: explainer.explain(data.X[0]))
