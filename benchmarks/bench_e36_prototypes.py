"""E36 — Example-based explanations: prototypes & criticisms (§2 intro,
"some return data points to make the model interpretable").

Claim [Kim, Khanna & Koyejo, MMD-critic]: a handful of greedily selected
prototypes summarizes a dataset far better (lower MMD, higher 1-NN
accuracy) than random examples of the same budget, and criticisms flag
the regions the summary misrepresents.
"""

import numpy as np

from repro.datasets import make_classification
from repro.prototypes import (
    PrototypeClassifier,
    mmd_squared,
    select_criticisms,
    select_prototypes,
)

from conftest import emit, fmt_row


def test_e36_prototypes(benchmark):
    data = make_classification(600, n_features=5, class_sep=2.2, seed=13)
    rng = np.random.default_rng(0)

    rows = [fmt_row("budget", "greedy MMD^2", "random MMD^2",
                    "proto 1NN acc", "random 1NN acc")]
    improvements = []
    for budget in (4, 8, 16):
        greedy_idx = select_prototypes(data.X, budget)
        greedy_mmd = mmd_squared(data.X, greedy_idx)
        random_mmds, random_accs = [], []
        for trial in range(10):
            random_idx = rng.choice(data.X.shape[0], budget, replace=False)
            random_mmds.append(mmd_squared(data.X, random_idx))
            labels = data.y[random_idx]
            P = data.X[random_idx]
            d2 = (
                (data.X ** 2).sum(axis=1)[:, None]
                - 2.0 * data.X @ P.T + (P ** 2).sum(axis=1)[None, :]
            )
            random_accs.append(
                float(np.mean(labels[np.argmin(d2, axis=1)] == data.y))
            )
        proto_clf = PrototypeClassifier(
            n_prototypes_per_class=budget // 2
        ).fit(data.X, data.y)
        proto_acc = proto_clf.score(data.X, data.y)
        rows.append(fmt_row(budget, greedy_mmd, float(np.mean(random_mmds)),
                            proto_acc, float(np.mean(random_accs))))
        improvements.append((greedy_mmd, float(np.mean(random_mmds)),
                             proto_acc, float(np.mean(random_accs))))

    # Criticisms need structure to criticize: use clustered data.
    cluster_rng = np.random.default_rng(3)
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
    clustered = np.vstack([
        cluster_rng.normal(0, 0.5, (60, 2)) + center for center in centers
    ])
    prototypes = select_prototypes(clustered, 6)
    criticisms = select_criticisms(clustered, prototypes, 5)
    P = clustered[prototypes]

    def nearest(x):
        return float(np.min(np.linalg.norm(P - x, axis=1)))

    criticism_dist = float(np.mean([nearest(clustered[i]) for i in criticisms]))
    population_dist = float(np.mean([nearest(x) for x in clustered]))
    rows.append(fmt_row("criticism dist", criticism_dist,
                        "population", population_dist, ""))
    emit("E36_prototypes", rows)

    # Shape: greedy dominates random on MMD at every budget; the
    # prototype classifier matches/beats random-example 1-NN; criticisms
    # are atypical relative to the summary.
    for greedy_mmd, random_mmd, proto_acc, random_acc in improvements:
        assert greedy_mmd < random_mmd
        assert proto_acc >= random_acc - 0.02
    assert criticism_dist > population_dist

    benchmark(lambda: select_prototypes(data.X, 8))
