"""E43 — Serving under load: coalescing + cache vs recompute, overload shedding (PR 8).

Claim: the ``repro.serve`` layer turns repeat traffic into shared work
and overload into bounded, typed refusals. Concretely:

* on a hot-key workload (many concurrent clients hammering a small set
  of instances), request coalescing plus the warm TTL+LRU cache cut p95
  latency ≥5× versus the same service with both disabled — every
  duplicate rides one computation instead of re-running the sampler;
* at 4× overload (concurrent demand = 4× what admission allows to run
  or queue), with 10% of model calls fault-injected via
  :class:`repro.robust.FaultyModel`, **zero requests hang**: every
  single one resolves — success, shed, or typed failure — within its
  own deadline plus scheduling slack, because every wait in the stack
  (queue, coalesced flight, compute guard) is clipped to the request
  envelope's remaining time.

The table reports per-phase p50/p95/p99 latency, throughput, and the
status mix, so the shape of the shedding (how many 200s vs 429/503s at
overload) is visible, not just the headline ratio.
"""

import threading
import time
from collections import Counter

import numpy as np

from repro.robust import FaultyModel
from repro.serve import ExplainServer, ServeConfig

from conftest import emit, fmt_row

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 12
HOT_KEYS = 3
N_PERMUTATIONS = 40
OVERLOAD_DEADLINE_MS = 3000.0


def _linear(X):
    X = np.atleast_2d(np.asarray(X, dtype=float))
    return X @ np.linspace(1.0, 2.0, X.shape[1])


def _make_server(data, model, **overrides) -> ExplainServer:
    cfg = dict(
        max_inflight=2,
        queue_limit=4,
        default_deadline_s=15.0,
        ladder_enabled=False,
        breaker_threshold=10_000,  # this experiment measures the queue,
        cache_ttl_s=600.0,         # not the breaker
    )
    cfg.update(overrides)
    server = ExplainServer(ServeConfig(**cfg))
    server.add_endpoint("loan", model, data.X[:60],
                        feature_names=data.feature_names)
    return server


def _body(x, deadline_ms=None) -> dict:
    body = {
        "model": "loan",
        "instance": [float(v) for v in x],
        "tier": "sampling",
        "params": {"n_permutations": N_PERMUTATIONS, "seed": 0},
    }
    if deadline_ms is not None:
        body["deadline_ms"] = deadline_ms
    return body


def _drive(server, bodies_per_client) -> tuple[list[float], Counter, float]:
    """Fire all clients concurrently; returns (latencies_ms, statuses, wall_s)."""
    latencies: list[float] = []
    statuses: Counter = Counter()
    lock = threading.Lock()

    def client(bodies):
        for body in bodies:
            t0 = time.perf_counter()
            status, __, __ = server.handle_explain(body)
            dt_ms = (time.perf_counter() - t0) * 1000.0
            with lock:
                latencies.append(dt_ms)
                statuses[status] += 1

    threads = [
        threading.Thread(target=client, args=(bodies,), daemon=True)
        for bodies in bodies_per_client
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    wall_s = time.perf_counter() - t0
    hung = [t for t in threads if t.is_alive()]
    assert not hung, f"{len(hung)} client thread(s) hung"
    return latencies, statuses, wall_s


def _quantiles(latencies) -> tuple[float, float, float]:
    arr = np.asarray(latencies, dtype=float)
    return tuple(float(np.percentile(arr, q)) for q in (50, 95, 99))


def test_e43_serve_load(loan_setup):
    data, logistic, __ = loan_setup
    rng = np.random.default_rng(43)
    hot = data.X[:HOT_KEYS]

    # -- phase 1: hot-key workload, warm path vs cache/coalesce-off -------
    # Every client hammers the same few instances; the warm server
    # computes each key once and serves the rest from the flight or the
    # cache, the cold server recomputes every single request.
    def hot_bodies():
        return [
            [_body(hot[int(i)]) for i in rng.integers(0, HOT_KEYS,
                                                      REQUESTS_PER_CLIENT)]
            for __ in range(N_CLIENTS)
        ]

    warm_server = _make_server(data, logistic)
    warm_lat, warm_status, warm_wall = _drive(warm_server, hot_bodies())

    cold_server = _make_server(
        data, logistic, cache_size=0, coalesce_enabled=False,
        queue_limit=N_CLIENTS * REQUESTS_PER_CLIENT,  # let everything queue
    )
    cold_lat, cold_status, cold_wall = _drive(cold_server, hot_bodies())

    warm_p50, warm_p95, warm_p99 = _quantiles(warm_lat)
    cold_p50, cold_p95, cold_p99 = _quantiles(cold_lat)
    p95_improvement = cold_p95 / max(warm_p95, 1e-9)
    n = N_CLIENTS * REQUESTS_PER_CLIENT
    assert warm_status[200] == n, warm_status
    assert cold_status[200] == n, cold_status
    assert p95_improvement >= 5.0, (
        f"coalescing+cache p95 improvement {p95_improvement:.1f}x < 5x "
        f"(warm {warm_p95:.1f} ms vs cold {cold_p95:.1f} ms)"
    )

    # -- phase 2: 4x overload with 10% injected faults --------------------
    # Admission allows max_inflight + queue_limit = 6 requests in the
    # building; 24 concurrent clients fire one unique instance each (no
    # coalescing relief), through a model that fails 10% of its calls.
    flaky = FaultyModel(_linear, error_rate=0.10, seed=43)
    overload_server = _make_server(data, flaky)
    capacity = (overload_server.config.max_inflight
                + overload_server.config.queue_limit)
    n_overload = 4 * capacity
    unique = data.X[10:10 + n_overload] + rng.normal(
        scale=1e-6, size=(n_overload, data.X.shape[1])
    )
    over_bodies = [
        [_body(unique[i], deadline_ms=OVERLOAD_DEADLINE_MS)]
        for i in range(n_overload)
    ]
    over_lat, over_status, over_wall = _drive(overload_server, over_bodies)

    assert len(over_lat) == n_overload  # every request resolved: none hung
    # Every request resolved within its own deadline (+ scheduling slack).
    slack_ms = 500.0
    worst = max(over_lat)
    assert worst <= OVERLOAD_DEADLINE_MS + slack_ms, (
        f"slowest overload request took {worst:.0f} ms against a "
        f"{OVERLOAD_DEADLINE_MS:.0f} ms deadline"
    )
    # Outcomes are the typed vocabulary only: served, shed, or failed.
    assert set(over_status) <= {200, 429, 502, 503, 504}, over_status
    shed = sum(v for k, v in over_status.items() if k in (429, 503, 504))
    over_p50, over_p95, over_p99 = _quantiles(over_lat)

    # -- report -----------------------------------------------------------
    header = fmt_row("phase", "requests", "p50_ms", "p95_ms", "p99_ms",
                     "req_per_s", "status mix")
    rows = []
    for label, lat, st, wall in (
        ("hot warm", warm_lat, warm_status, warm_wall),
        ("hot cold", cold_lat, cold_status, cold_wall),
        ("overload 4x", over_lat, over_status, over_wall),
    ):
        p50, p95, p99 = _quantiles(lat)
        mix = " ".join(f"{k}:{v}" for k, v in sorted(st.items()))
        rows.append(fmt_row(label, len(lat), p50, p95, p99,
                            len(lat) / wall, mix))
    lines = [
        header, *rows, "",
        f"hot-key p95 improvement (cold/warm): {p95_improvement:.1f}x "
        "(floor: 5x)",
        f"overload: {n_overload} requests at 4x capacity, "
        f"{over_status[200]} served, {shed} shed typed, "
        f"{over_status[502]} failed typed, 0 hung",
    ]
    emit(
        "E43_serve_load",
        lines,
        data={
            "hot_warm": {"p50_ms": warm_p50, "p95_ms": warm_p95,
                         "p99_ms": warm_p99,
                         "statuses": dict(warm_status)},
            "hot_cold": {"p50_ms": cold_p50, "p95_ms": cold_p95,
                         "p99_ms": cold_p99,
                         "statuses": dict(cold_status)},
            "overload": {"p50_ms": over_p50, "p95_ms": over_p95,
                         "p99_ms": over_p99,
                         "statuses": dict(over_status),
                         "deadline_ms": OVERLOAD_DEADLINE_MS},
        },
        summary={
            "hot_key_p95_improvement": round(p95_improvement, 2),
            "overload_resolved_fraction": round(
                len(over_lat) / n_overload, 4
            ),
            "serve_p95_warm_ms": round(warm_p95, 3),
        },
    )
