"""E42 — Amortized batch explanation vs the per-row loop (PR 7).

Claim: when a batch of instances is explained together, the work that
does not depend on the row — coalition sampling, permutation draws,
kernel weights, TreeSHAP tree decompositions — should be paid once per
batch, not once per row. The shared :class:`repro.games.plan.CoalitionPlan`
plus the fused ``batch_value_matrix`` grid make batch sampling-SHAP ≥5×
faster than the per-row loop at an equal walk budget, and the cached
:class:`repro.shapley.tree.TreePrecompute` plus the vectorized batch
kernel make batch TreeSHAP ≥10× faster than the per-instance recursion.
Sampling attributions are bitwise-identical to the serial per-row path
under the same seed; the fused tree kernel is bitwise stable across
backends and batch splits and agrees with the scalar recursion to float
accumulation order (different child-visit order).

The table reports the precompute/plan build cost separately from the
per-instance explain cost, so the amortization structure (fixed cost
once, marginal cost per row) is visible rather than folded into one
number.
"""

import time

import numpy as np

from repro import obs
from repro.shapley import SamplingShapleyExplainer, TreeShapExplainer

from conftest import emit, fmt_row

N_PERMUTATIONS = 100
BATCH_SAMPLING = 32
BATCH_TREE = 256


def test_e42_amortized_batch(loan_setup):
    data, logistic, gbm = loan_setup

    # -- sampling SHAP: shared coalition plan vs per-row re-sampling ------
    # The logistic model keeps the (identical-on-both-paths) model-eval
    # cost small, so the measured gap is the amortizable work itself:
    # permutation draws, walk loops, and per-call dispatch overhead.
    common = dict(
        n_permutations=N_PERMUTATIONS, max_background=80, seed=3
    )
    X = data.X[:BATCH_SAMPLING]
    per_row = SamplingShapleyExplainer(logistic, data.X, **common)
    amortized = SamplingShapleyExplainer(logistic, data.X, **common)

    t0 = time.perf_counter()
    serial_atts = [per_row.explain(x) for x in X]
    wall_per_row = time.perf_counter() - t0

    built_before = obs.counter("coalition.plan.built").value
    reused_before = obs.counter("coalition.plan.reused").value
    t0 = time.perf_counter()
    batch_atts = amortized.explain_batch(X, backend="serial")
    wall_batch = time.perf_counter() - t0
    plans_built = obs.counter("coalition.plan.built").value - built_before
    plan_reuses = obs.counter("coalition.plan.reused").value - reused_before

    # Equal budget, identical bits: amortization is a pure perf change.
    for serial_att, batch_att in zip(serial_atts, batch_atts):
        assert np.array_equal(serial_att.values, batch_att.values)
        assert serial_att.base_value == batch_att.base_value
    sampling_speedup = wall_per_row / wall_batch

    # -- TreeSHAP: cached precompute + vectorized kernel vs recursion -----
    X_tree = data.X[:BATCH_TREE]
    tree_explainer = TreeShapExplainer(gbm)

    t0 = time.perf_counter()
    precompute = tree_explainer.precompute()
    precompute_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    tree_batch = tree_explainer.explain_batch(X_tree, backend="serial")
    wall_tree_batch = time.perf_counter() - t0

    # Per-instance scalar recursion: the cost every row paid before the
    # fused kernel (and still pays for single-row explain calls).
    t0 = time.perf_counter()
    tree_serial = [tree_explainer.explain(x) for x in X_tree]
    wall_tree_serial = time.perf_counter() - t0

    batch_values = np.stack([a.values for a in tree_batch])
    serial_values = np.stack([a.values for a in tree_serial])
    # Fused vs scalar agree to float accumulation order (the kernels
    # visit children in different orders); the fused kernel itself is
    # bitwise stable across backends and batch splits.
    assert np.allclose(batch_values, serial_values, atol=1e-9)
    rerun = tree_explainer.explain_batch(X_tree, backend="thread")
    assert np.array_equal(
        batch_values, np.stack([a.values for a in rerun])
    )
    tree_speedup = wall_tree_serial / wall_tree_batch

    rows = [
        fmt_row("path", "wall s", "per row ms", "speedup"),
        fmt_row("sampling per-row", wall_per_row,
                wall_per_row / BATCH_SAMPLING * 1e3, 1.0),
        fmt_row("sampling batch", wall_batch,
                wall_batch / BATCH_SAMPLING * 1e3, sampling_speedup),
        fmt_row("tree per-row", wall_tree_serial,
                wall_tree_serial / BATCH_TREE * 1e3, 1.0),
        fmt_row("tree precompute", precompute_s, "(once)", "-"),
        fmt_row("tree batch", wall_tree_batch,
                wall_tree_batch / BATCH_TREE * 1e3, tree_speedup),
        fmt_row("plan", "built", plans_built, "reused", plan_reuses),
    ]
    emit(
        "E42_amortized_batch",
        rows,
        data={
            "n_permutations": N_PERMUTATIONS,
            "batch_sampling": BATCH_SAMPLING,
            "batch_tree": BATCH_TREE,
            "sampling": {
                "wall_s_per_row": wall_per_row,
                "wall_s_batch": wall_batch,
                "speedup": sampling_speedup,
            },
            "tree": {
                "wall_s_per_row": wall_tree_serial,
                "wall_s_batch": wall_tree_batch,
                "precompute_s": precompute_s,
                "speedup": tree_speedup,
            },
            "plans_built": int(plans_built),
            "plan_reuses": int(plan_reuses),
        },
        summary={
            "sampling_speedup": round(sampling_speedup, 3),
            "tree_speedup": round(tree_speedup, 3),
        },
    )

    # Headline floors: one plan drawn, every other row rides it; batch
    # sampling ≥5× the per-row loop, batch TreeSHAP ≥10× the recursion.
    assert plans_built == 1
    assert plan_reuses == BATCH_SAMPLING - 1
    assert sampling_speedup >= 5.0
    assert tree_speedup >= 10.0
