"""E1 — Local accuracy of Shapley attributions (§2.1.2).

Claim: Shapley feature attributions sum to f(x) − E[f] exactly for exact
methods (TreeSHAP, exact SHAP) and approximately for sampled ones.
"""

import numpy as np

from repro.shapley import (
    ExactShapleyExplainer,
    KernelShapExplainer,
    SamplingShapleyExplainer,
    TreeShapExplainer,
)

from conftest import emit, fmt_row


def test_e01_additivity(benchmark, loan_setup):
    data, logistic, gbm = loan_setup
    background = data.X[:50]
    instances = data.X[:10]

    explainers = {
        "exact_shap(logistic)": ExactShapleyExplainer(logistic, background),
        "kernel_shap(logistic)": KernelShapExplainer(
            logistic, background, n_samples=126
        ),
        "sampling_shap(logistic)": SamplingShapleyExplainer(
            logistic, background, n_permutations=100
        ),
        "tree_shap(gbm)": TreeShapExplainer(gbm),
    }

    rows = [fmt_row("method", "mean |gap|", "max |gap|")]
    gaps = {}
    for name, explainer in explainers.items():
        g = [explainer.explain(x).additivity_gap() for x in instances]
        gaps[name] = g
        rows.append(fmt_row(name.ljust(24), float(np.mean(g)), float(np.max(g))))
    emit("E1_additivity", rows)

    # Shape assertions: exact methods are exact; sampled is small but nonzero.
    assert max(gaps["exact_shap(logistic)"]) < 1e-9
    assert max(gaps["tree_shap(gbm)"]) < 1e-9
    assert max(gaps["kernel_shap(logistic)"]) < 1e-6
    assert np.mean(gaps["sampling_shap(logistic)"]) < 0.05

    benchmark(lambda: TreeShapExplainer(gbm).explain(data.X[0]))
