"""E19 — Shapley value of tuples in query answering (§3, [62]).

Claim [Livshits et al.]: tuple Shapley values quantify each tuple's
responsibility for a query answer; exact computation is exponential in
the number of endogenous tuples while permutation sampling scales, and
the sampled values converge to the exact ones.
"""

import time

import numpy as np

from repro.db import Relation, shapley_of_tuples

from conftest import emit, fmt_row


def make_sales(n: int, seed: int = 0) -> Relation:
    rng = np.random.default_rng(seed)
    regions = ["east", "west", "north"]
    rows = [
        (regions[int(rng.integers(0, 3))], float(rng.exponential(50)))
        for __ in range(n)
    ]
    return Relation(["region", "amount"], rows, name="sales")


def skewed_total(rel: Relation) -> float:
    """A non-additive aggregate: second-largest + 0.1 · total."""
    amounts = sorted((t["amount"] for t in rel.to_dicts()), reverse=True)
    second = amounts[1] if len(amounts) > 1 else 0.0
    return second + 0.1 * sum(amounts)


def test_e19_tuple_shapley(benchmark):
    rows = [fmt_row("n_tuples", "exact (s)", "sampled (s)", "max |diff|")]
    for n in (8, 12):
        relation = make_sales(n, seed=n)
        t0 = time.perf_counter()
        exact = shapley_of_tuples(relation, skewed_total, method="exact")
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        sampled = shapley_of_tuples(
            relation, skewed_total, method="sampling",
            n_permutations=300, seed=0,
        )
        t_sampled = time.perf_counter() - t0
        diff = max(abs(exact[i] - sampled[i]) for i in exact)
        scale = max(abs(v) for v in exact.values())
        rows.append(fmt_row(n, t_exact, t_sampled, diff))
        # convergence: sampled within 10% of the value scale
        assert diff < 0.1 * scale
        # efficiency: values sum to the full-vs-empty gap
        full = skewed_total(relation)
        assert abs(sum(exact.values()) - full) < 1e-9
    # scaling: sampling handles sizes exact cannot (2^30 evaluations)
    big = make_sales(30, seed=30)
    t0 = time.perf_counter()
    shapley_of_tuples(big, skewed_total, method="sampling",
                      n_permutations=60, seed=0)
    t_big = time.perf_counter() - t0
    rows.append(fmt_row(30, "intractable", t_big, "-"))
    emit("E19_tuple_shapley", rows)

    relation = make_sales(12, seed=12)
    benchmark(lambda: shapley_of_tuples(
        relation, skewed_total, method="sampling",
        n_permutations=100, seed=0,
    ))
