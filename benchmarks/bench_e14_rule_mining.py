"""E14 — FP-Growth vs Apriori at decreasing support (§2.2.1, [4, 27]).

Claim [Han, Pei & Yin]: the two miners return identical itemsets, but as
the support threshold drops and candidate sets explode, FP-Growth's
candidate-free construction pulls ahead; the speed ratio grows as support
shrinks.
"""

import time

import numpy as np

from repro.datasets import make_baskets
from repro.rules import apriori, fpgrowth

from conftest import emit, fmt_row


def test_e14_rule_mining(benchmark):
    transactions, __ = make_baskets(
        800, n_items=40, n_patterns=6, pattern_size=4,
        pattern_prob=0.3, noise_items=3.0, seed=3,
    )
    rows = [fmt_row("min_support", "apriori (s)", "fpgrowth (s)",
                    "ratio", "n_itemsets")]
    ratios = []
    for support in (0.2, 0.1, 0.05):
        t0 = time.perf_counter()
        a = apriori(transactions, support)
        t_apriori = time.perf_counter() - t0
        t0 = time.perf_counter()
        f = fpgrowth(transactions, support)
        t_fp = time.perf_counter() - t0
        assert a.keys() == f.keys()
        ratio = t_apriori / max(t_fp, 1e-9)
        ratios.append(ratio)
        rows.append(fmt_row(support, t_apriori, t_fp, ratio, len(a)))
    emit("E14_rule_mining", rows)

    # Shape: FP-Growth's advantage grows as support decreases.
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.0

    benchmark(lambda: fpgrowth(transactions, 0.05))
