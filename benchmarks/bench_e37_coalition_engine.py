"""E37 — Vectorized coalition engine vs the legacy evaluation path.

Claim: at an equal coalition budget, broadcast masking + packed-bit value
caching + chunked batching make coalition-based explainers ≥2× faster
than the historical per-coalition loop, without changing a single output
bit. The cache is the big lever for permutation sampling: every walk
re-evaluates ∅ and N, and antithetic pairs plus short prefixes collide
constantly at tabular feature counts, so most v(S) queries become
dictionary lookups instead of model evaluations.
"""

import time

import numpy as np

from repro import obs
from repro.datasets import make_loan_dataset
from repro.models import GradientBoostingClassifier
from repro.shapley import KernelShapExplainer, SamplingShapleyExplainer

from conftest import emit, fmt_row

N_PERMUTATIONS = 100
KERNEL_BUDGET = 126


def _timed_explain(explainer, x):
    """(attribution, wall seconds, rows evaluated) for one explain call."""
    rows_before = obs.counter("model.rows").value
    t0 = time.perf_counter()
    attribution = explainer.explain(x)
    wall = time.perf_counter() - t0
    return attribution, wall, obs.counter("model.rows").value - rows_before


def test_e37_engine_speedup(loan_setup):
    data, __, gbm = loan_setup
    x = data.X[1]

    common = dict(
        n_permutations=N_PERMUTATIONS, max_background=100, seed=3
    )
    legacy = SamplingShapleyExplainer(gbm, data.X, engine=False, **common)
    engine = SamplingShapleyExplainer(gbm, data.X, engine=True, **common)

    att_legacy, wall_legacy, rows_legacy = _timed_explain(legacy, x)
    hits_before = obs.counter("coalition.cache.hits").value
    misses_before = obs.counter("coalition.cache.misses").value
    att_engine, wall_engine, rows_engine = _timed_explain(engine, x)
    cache_hits = obs.counter("coalition.cache.hits").value - hits_before
    cache_misses = obs.counter("coalition.cache.misses").value - misses_before

    # Equal budget, identical numbers: the engine is a pure perf change.
    assert np.array_equal(att_engine.values, att_legacy.values)
    speedup = wall_legacy / wall_engine

    # Kernel SHAP at full enumeration: coalitions are all distinct, so
    # this row isolates the broadcast-expansion win without cache help.
    k_common = dict(n_samples=KERNEL_BUDGET, max_background=100, seed=3)
    k_legacy = KernelShapExplainer(gbm, data.X, engine=False, **k_common)
    k_engine = KernelShapExplainer(gbm, data.X, engine=True, **k_common)
    k_att_legacy, k_wall_legacy, k_rows_legacy = _timed_explain(k_legacy, x)
    k_att_engine, k_wall_engine, k_rows_engine = _timed_explain(k_engine, x)
    assert np.array_equal(k_att_engine.values, k_att_legacy.values)
    k_speedup = k_wall_legacy / k_wall_engine

    rows = [
        fmt_row("explainer", "path", "wall s", "rows evald", "speedup"),
        fmt_row("sampling_shap", "legacy", wall_legacy, rows_legacy, 1.0),
        fmt_row("sampling_shap", "engine", wall_engine, rows_engine, speedup),
        fmt_row("kernel_shap", "legacy", k_wall_legacy, k_rows_legacy, 1.0),
        fmt_row("kernel_shap", "engine", k_wall_engine, k_rows_engine,
                k_speedup),
        fmt_row("cache", "hits", cache_hits, "misses", cache_misses),
    ]
    emit("E37_coalition_engine", rows, data={
        "n_permutations": N_PERMUTATIONS,
        "kernel_budget": KERNEL_BUDGET,
        "sampling": {
            "wall_s_legacy": wall_legacy,
            "wall_s_engine": wall_engine,
            "rows_legacy": int(rows_legacy),
            "rows_engine": int(rows_engine),
            "speedup": speedup,
        },
        "kernel": {
            "wall_s_legacy": k_wall_legacy,
            "wall_s_engine": k_wall_engine,
            "rows_legacy": int(k_rows_legacy),
            "rows_engine": int(k_rows_engine),
            "speedup": k_speedup,
        },
        "cache_hits": int(cache_hits),
        "cache_misses": int(cache_misses),
    })

    # The headline claim: ≥2× at equal budget, with the cache doing the
    # heavy lifting (most coalition evaluations become lookups).
    assert speedup >= 2.0
    assert cache_hits > cache_misses
    assert rows_engine < rows_legacy / 2
