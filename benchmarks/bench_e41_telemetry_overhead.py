"""E41 — telemetry v2 overhead: always-on observability costs <5%.

Telemetry v2 put quantile histograms, the run ledger, per-chunk
coalition timing and pool-health gauges in the hot path of every
explanation. The claim this experiment guards: all of it together —
spans, histograms, ledger rows written to a JSONL sink, traces sampled
at 10% — costs less than 5% wall time on the two workloads whose perf
we already guard, and moves **zero** output bits.

* **E37 workload** — the vectorized coalition engine under
  ``SamplingShapleyExplainer`` (CPU-bound; per-chunk ``observe_duration``
  and the estimator convergence stream are the costs under test).
* **E40 workload** — a trimmed process-backend Data Shapley run
  (latency-bound; worker histogram snapshots/merges and the shard
  gauges are the costs under test).

Each workload runs alternately with observability off
(``obs.set_enabled(False)`` — the wrappers short-circuit) and fully on
(trace sampling 0.1, ledger sink to a temp JSONL). Min-of-repeats walls
are compared, so scheduler noise inflates neither side.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro import obs
from repro.datasets import make_classification, make_loan_dataset
from repro.datavalue.data_shapley import tmc_shapley
from repro.datavalue.utility import UtilityFunction
from repro.models import GradientBoostingClassifier, LogisticRegression
from repro.models.model_selection import train_test_split
from repro.shapley import SamplingShapleyExplainer

from conftest import emit, fmt_row

N_PERMUTATIONS = 400
REPEATS = 5
N_PROCS = 4
PROCESS_PERMS = 24
RETRAIN_LATENCY_S = 0.008
MAX_OVERHEAD = 0.05
TRACE_SAMPLE = 0.1


class LatencyModel:
    """Logistic fit behind a fixed per-retrain latency (as in E40)."""

    def __init__(self) -> None:
        self._model = LogisticRegression(alpha=1.0)

    def fit(self, X, y):
        time.sleep(RETRAIN_LATENCY_S)
        self._model.fit(X, y)
        return self

    def predict(self, X):
        return self._model.predict(X)


def _make_utility() -> UtilityFunction:
    data = make_classification(60, n_features=3, n_informative=2,
                               class_sep=2.0, seed=13)
    Xtr, Xv, ytr, yv = train_test_split(data.X, data.y, test_size=0.4, seed=0)
    return UtilityFunction(lambda: LatencyModel(), Xtr[:10], ytr[:10], Xv, yv)


def _engine_workload(gbm, X, x):
    # A fresh explainer per run: the coalition value cache must start
    # cold in every condition, or the first condition measured wins.
    explainer = SamplingShapleyExplainer(
        gbm, X, engine=True, n_permutations=N_PERMUTATIONS,
        max_background=100, seed=3,
    )
    return explainer.explain(x).values


def _process_workload():
    return tmc_shapley(
        _make_utility(), n_permutations=PROCESS_PERMS,
        truncation_tolerance=0.0, seed=3,
        backend="process", n_procs=N_PROCS,
    ).values


def _measure(workload, ledger_path: str):
    """Min-of-repeats walls for obs-off vs obs-fully-on, plus outputs.

    Conditions alternate within each repeat so slow drift (thermal,
    background load) biases neither side.
    """
    walls: dict[str, list[float]] = {"off": [], "on": []}
    outputs: dict[str, np.ndarray] = {}
    workload()  # warm-up: JIT-free, but caches, imports and forks are not
    for __ in range(REPEATS):
        for label in ("off", "on"):
            if label == "on":
                obs.set_enabled(True)
                obs.set_trace_sample(TRACE_SAMPLE)
                obs.reset_ledger(ledger_path)
            else:
                obs.set_enabled(False)
            try:
                t0 = time.perf_counter()
                out = workload()
                walls[label].append(time.perf_counter() - t0)
            finally:
                obs.set_enabled(True)
                obs.set_trace_sample(None)
            outputs[label] = np.asarray(out)
    return min(walls["off"]), min(walls["on"]), outputs


def test_e41_telemetry_overhead(loan_setup, tmp_path):
    data, __, gbm = loan_setup
    x = data.X[1]
    ledger_path = str(tmp_path / "ledger.jsonl")

    try:
        engine_off, engine_on, engine_out = _measure(
            lambda: _engine_workload(gbm, data.X, x), ledger_path
        )
        process_off, process_on, process_out = _measure(
            _process_workload, ledger_path
        )
    finally:
        # Hand the shared registry/ledger back to the other benchmarks.
        obs.set_enabled(True)
        obs.set_trace_sample(None)
        obs.reset_ledger()

    engine_overhead = engine_on / engine_off - 1.0
    process_overhead = process_on / process_off - 1.0

    # The ledger sink really ran: one JSON row per obs-on explain call.
    with open(ledger_path, encoding="utf-8") as fh:
        ledger_rows = [json.loads(line) for line in fh if line.strip()]

    rows = [
        fmt_row("workload", "obs off (s)", "obs on (s)", "overhead"),
        fmt_row("engine (E37)", engine_off, engine_on,
                f"{engine_overhead * 100.0:+.1f}%"),
        fmt_row("process (E40)", process_off, process_on,
                f"{process_overhead * 100.0:+.1f}%"),
        fmt_row("ledger rows", len(ledger_rows), "trace sample",
                TRACE_SAMPLE),
    ]
    emit("E41_telemetry_overhead", rows, data={
        "n_permutations": N_PERMUTATIONS,
        "repeats": REPEATS,
        "trace_sample": TRACE_SAMPLE,
        "engine": {
            "wall_s_off": engine_off,
            "wall_s_on": engine_on,
            "overhead": engine_overhead,
        },
        "process": {
            "wall_s_off": process_off,
            "wall_s_on": process_on,
            "overhead": process_overhead,
        },
        "ledger_rows": len(ledger_rows),
    })

    # Bitwise determinism: telemetry is purely passive.
    assert np.array_equal(engine_out["off"], engine_out["on"])
    assert np.array_equal(process_out["off"], process_out["on"])
    # The headline claim: full telemetry under 5% on both regimes.
    assert engine_overhead < MAX_OVERHEAD
    assert process_overhead < MAX_OVERHEAD
    # And the obs-on runs really exercised the ledger sink.
    assert len(ledger_rows) >= REPEATS
    assert all(row["status"] == "ok" for row in ledger_rows)
