"""E31 — Rule-based weak supervision: label model vs majority vote
(§2.2.1, [7, 71]).

Two claims from the Snorkel/Snuba line:

* when labeling functions have *varying* quality, the accuracy-weighted
  label model beats unweighted majority vote (part A, controlled LFs
  with known accuracies);
* labeling functions synthesized from a tiny labeled seed can label a
  large pool well enough that the end model approaches the fully
  supervised oracle (part B, the Snuba pipeline end-to-end).
"""

import numpy as np

from repro.core.dataset import TabularDataset
from repro.datasets import make_classification
from repro.models import LogisticRegression
from repro.rules import ABSTAIN, LabelModel, generate_candidate_lfs

from conftest import emit, fmt_row


def synthetic_votes(y, accuracies, coverages, seed=0):
    rng = np.random.default_rng(seed)
    votes = []
    for accuracy, coverage in zip(accuracies, coverages):
        column = np.full(y.shape[0], ABSTAIN)
        active = rng.random(y.shape[0]) < coverage
        correct = rng.random(y.shape[0]) < accuracy
        column[active & correct] = y[active & correct]
        column[active & ~correct] = 1 - y[active & ~correct]
        votes.append(column)
    return np.column_stack(votes)


def test_e31_weak_supervision(benchmark):
    rows = []

    # Part A: varied-quality LFs — the label model's raison d'être.
    rng = np.random.default_rng(5)
    y = rng.integers(0, 2, 2000)
    votes_a = synthetic_votes(
        y,
        accuracies=[0.95, 0.9, 0.65, 0.55, 0.55],
        coverages=[0.5, 0.5, 0.8, 0.8, 0.8],
        seed=6,
    )
    label_model = LabelModel().fit(votes_a)
    weighted = float(np.mean(label_model.predict(votes_a) == y))
    majority = float(np.mean(LabelModel.majority_vote(votes_a, seed=0) == y))
    rows += [
        fmt_row("A: label quality", "value"),
        fmt_row("majority vote", majority),
        fmt_row("label model", weighted),
        fmt_row("est. accuracies", *np.round(label_model.accuracies_, 2)),
    ]

    # Part B: the Snuba pipeline end-to-end on a tiny seed.
    full = make_classification(1200, n_features=5, n_informative=3,
                               class_sep=2.0, seed=17)
    seed_data = TabularDataset(full.X[:100], full.y[:100], list(full.features))
    pool_X, pool_y = full.X[100:900], full.y[100:900]
    test_X, test_y = full.X[900:], full.y[900:]
    lfs = generate_candidate_lfs(seed_data, min_precision=0.8,
                                 min_coverage=0.08)
    votes_b = np.column_stack([lf(pool_X) for lf in lfs])
    covered = (votes_b != ABSTAIN).any(axis=1)
    weak_labels = LabelModel().fit(votes_b).predict(votes_b)
    label_quality = float(np.mean(weak_labels[covered] == pool_y[covered]))
    weak_model = LogisticRegression(alpha=1.0).fit(
        pool_X[covered], weak_labels[covered]
    )
    oracle_model = LogisticRegression(alpha=1.0).fit(pool_X, pool_y)
    rows += [
        fmt_row("B: Snuba pipeline", "value"),
        fmt_row("n synthesized LFs", len(lfs)),
        fmt_row("pool coverage", float(covered.mean())),
        fmt_row("weak label quality", label_quality),
        fmt_row("end model (weak)", weak_model.score(test_X, test_y)),
        fmt_row("end model (oracle)", oracle_model.score(test_X, test_y)),
    ]
    emit("E31_weak_supervision", rows)

    # Shape A: weighting wins when qualities vary, and the model ranks
    # the good LFs above the weak ones.
    assert weighted > majority
    est = label_model.accuracies_
    assert min(est[0], est[1]) > max(est[2], est[3], est[4])
    # Shape B: the weakly supervised end model approaches the oracle.
    assert label_quality > 0.8
    assert covered.mean() > 0.5
    assert weak_model.score(test_X, test_y) >= \
        oracle_model.score(test_X, test_y) - 0.1

    benchmark(lambda: LabelModel().fit(votes_a))
