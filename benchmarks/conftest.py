"""Shared helpers for the experiment benchmarks (E1–E36).

Each ``bench_eNN_*.py`` regenerates one experiment from DESIGN.md's index:
it prints the table/series the claim is about (visible with ``-s``; also
persisted under ``benchmarks/results/``) and asserts the claim's *shape*,
so the suite doubles as a regression harness for the headline results.
The ``benchmark`` fixture times the experiment's representative kernel.

Telemetry: every call to :func:`emit` now writes, atomically,

* ``results/<experiment>.txt`` — the human table, headed by the
  experiment id and an ISO timestamp;
* ``results/<experiment>.json`` — the same lines plus optional
  structured ``data`` rows, the test's wall time, the model-eval
  counters it spent (``repro.obs`` meter deltas) and per-explainer span
  aggregates;
* ``BENCH_summary.json`` at the repository root — the rolling perf
  trajectory mapping experiment id → latest entry, stamped with
  ``git_sha``/``schema_version`` and carrying p50/p95/p99 explain
  latency from the quantile histograms (the ``p95_ms`` the
  ``scripts/bench_compare.py`` guard compares).
"""

from __future__ import annotations

import os
import time

import pytest

from repro import obs

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_SUMMARY = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_summary.json",
)

# Per-test observation window, maintained by the autouse fixture below so
# emit() can report wall time and eval-counter deltas without any changes
# to the individual benchmark modules.
_WINDOW: dict = {}


def _counter_values() -> dict[str, int]:
    return {
        "model_calls": obs.counter("model.calls").value,
        "model_rows": obs.counter("model.rows").value,
        "robust_retries": obs.counter("robust.retries").value,
        "robust_rows_failed": obs.counter("robust.rows_failed").value,
        "robust_budget_exhausted": obs.counter("robust.budget_exhausted").value,
        # Cache counters include worker-side deltas merged by the exec
        # backends — visible proof in BENCH_summary.json that sharded
        # runs still account their cache traffic to the parent.
        "coalition_cache_hits": obs.counter("coalition.cache.hits").value,
        "coalition_cache_misses": obs.counter("coalition.cache.misses").value,
        "datavalue_cache_hits": obs.counter("datavalue.cache.hits").value,
        "datavalue_cache_misses": obs.counter("datavalue.cache.misses").value,
    }


@pytest.fixture(autouse=True)
def _obs_window():
    _WINDOW["t0"] = time.perf_counter()
    _WINDOW["counters"] = _counter_values()
    _WINDOW["span_mark"] = obs.get_tracer().mark()
    _WINDOW["histograms"] = obs.histogram_states()
    yield
    _WINDOW.clear()


# Explain-call latency histograms folded into each experiment's summary
# entry as p50/p95/p99 (what scripts/bench_compare.py guards as p95_ms).
_LATENCY_HISTOGRAMS = ("explain.wall_ms", "explain_batch.wall_ms")


def _latency_quantiles(before: dict) -> dict | None:
    """p50/p95/p99 (ms) of this test's explain calls, or None if none ran."""
    deltas = obs.histogram_deltas(before)
    window = obs.Histogram("window.explain_ms")
    for name in _LATENCY_HISTOGRAMS:
        if name in deltas:
            window.merge_state(deltas[name])
    if window.count == 0:
        return None
    return {
        "count": window.count,
        "p50_ms": round(window.p50, 3),
        "p95_ms": round(window.p95, 3),
        "p99_ms": round(window.p99, 3),
    }


def emit(experiment: str, lines: list[str], data=None, summary=None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    ``data`` optionally carries the structured rows behind the formatted
    table (any JSON-serializable value); it lands verbatim in the
    experiment's ``.json`` record. ``summary`` optionally adds flat
    headline numbers (e.g. speedup ratios) to the experiment's
    ``BENCH_summary.json`` entry, where ``scripts/bench_compare.py``
    floors can guard them.
    """
    banner = f"==== {experiment} ===="
    print()
    print(banner)
    for line in lines:
        print(line)

    wall_s = None
    counters: dict[str, int] = {}
    spans: list[dict] = []
    latency = None
    if _WINDOW:
        wall_s = time.perf_counter() - _WINDOW["t0"]
        before = _WINDOW["counters"]
        counters = {
            key: value - before.get(key, 0)
            for key, value in _counter_values().items()
        }
        spans = obs.summary_dict(
            obs.get_tracer().spans_since(_WINDOW["span_mark"])
        )
        latency = _latency_quantiles(_WINDOW["histograms"])
    timestamp = obs.bench.utc_timestamp()
    json_path = obs.bench.write_benchmark_result(
        RESULTS_DIR,
        experiment,
        lines,
        data=data,
        wall_s=wall_s,
        counters=counters,
        spans=spans,
        timestamp=timestamp,
    )
    obs.bench.update_bench_summary(
        BENCH_SUMMARY,
        experiment,
        {
            "timestamp": timestamp,
            "wall_s": None if wall_s is None else round(wall_s, 6),
            **counters,
            **(latency or {}),
            **(summary or {}),
            "result_json": os.path.relpath(
                json_path, os.path.dirname(BENCH_SUMMARY)
            ),
        },
    )


def fmt_row(*cells, width: int = 14) -> str:
    out = []
    for cell in cells:
        if isinstance(cell, float):
            out.append(f"{cell:>{width}.4g}")
        else:
            out.append(f"{str(cell):>{width}}")
    return " ".join(out)


@pytest.fixture(scope="session")
def loan_setup():
    """Shared loan data + models used by several experiments."""
    from repro.datasets import make_loan_dataset
    from repro.models import GradientBoostingClassifier, LogisticRegression

    data = make_loan_dataset(600, seed=7)
    logistic = LogisticRegression(alpha=1.0).fit(data.X, data.y)
    gbm = GradientBoostingClassifier(
        n_estimators=25, max_depth=3, seed=0
    ).fit(data.X, data.y)
    return data, logistic, gbm
