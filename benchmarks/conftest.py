"""Shared helpers for the experiment benchmarks (E1–E24).

Each ``bench_eNN_*.py`` regenerates one experiment from DESIGN.md's index:
it prints the table/series the claim is about (visible with ``-s``; also
echoed into ``benchmarks/results/ENN.txt``) and asserts the claim's
*shape*, so the suite doubles as a regression harness for the headline
results. The ``benchmark`` fixture times the experiment's representative
kernel.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(experiment: str, lines: list[str]) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"==== {experiment} ===="
    print()
    print(banner)
    for line in lines:
        print(line)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w") as f:
        f.write("\n".join([banner, *lines]) + "\n")


def fmt_row(*cells, width: int = 14) -> str:
    out = []
    for cell in cells:
        if isinstance(cell, float):
            out.append(f"{cell:>{width}.4g}")
        else:
            out.append(f"{str(cell):>{width}}")
    return " ".join(out)


@pytest.fixture(scope="session")
def loan_setup():
    """Shared loan data + models used by several experiments."""
    from repro.datasets import make_loan_dataset
    from repro.models import GradientBoostingClassifier, LogisticRegression

    data = make_loan_dataset(600, seed=7)
    logistic = LogisticRegression(alpha=1.0).fit(data.X, data.y)
    gbm = GradientBoostingClassifier(
        n_estimators=25, max_depth=3, seed=0
    ).fit(data.X, data.y)
    return data, logistic, gbm
