"""E15 — Sufficient reasons: provably correct, compact; model-agnostic
checking is exponential (§2.2.2, [65]).

Claim: on decision trees the sufficiency check is linear-time, reasons
are much shorter than the decision path, and their precision is exactly 1
by construction. The same check treated model-agnostically (enumerating
completions) blows up exponentially in the number of free features.
"""

import time

import numpy as np

from repro.datasets import make_classification
from repro.logic import is_sufficient, minimal_sufficient_reason, reason_to_rule
from repro.models import DecisionTreeClassifier

from conftest import emit, fmt_row


def brute_force_is_sufficient(model, x, subset, grid, n_features):
    """Model-agnostic sufficiency: try every grid completion (exponential)."""
    free = [j for j in range(n_features) if j not in subset]
    target = model.predict(np.asarray(x)[None, :])[0]

    def recurse(position, current):
        if position == len(free):
            return model.predict(current[None, :])[0] == target
        for value in grid:
            current[free[position]] = value
            if not recurse(position + 1, current):
                return False
        return True

    return recurse(0, np.asarray(x, dtype=float).copy())


def test_e15_reasons(benchmark):
    results = []
    grid = np.linspace(-3, 3, 4)
    for n_features in (4, 6, 8):
        data = make_classification(400, n_features=n_features,
                                   n_informative=min(3, n_features), seed=23)
        tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(data.X, data.y)
        x = data.X[0]
        reason = minimal_sufficient_reason(tree, x)
        path_len = len({f for __, f, __, __ in tree.tree_.decision_path(x)})

        t0 = time.perf_counter()
        for __ in range(50):
            is_sufficient(tree, x, reason)
        t_tree = (time.perf_counter() - t0) / 50

        t0 = time.perf_counter()
        agnostic = brute_force_is_sufficient(tree, x, reason, grid, n_features)
        t_agnostic = time.perf_counter() - t0
        assert agnostic  # both oracles agree on the grid

        rule = reason_to_rule(tree, x, reason, reference=data.X)
        covered = data.X[rule.holds(data.X)]
        exact_precision = (
            float(np.mean(tree.predict(covered) == rule.outcome))
            if covered.shape[0] else 1.0
        )
        results.append((n_features, len(reason), path_len, t_tree,
                        t_agnostic, exact_precision))

    rows = [fmt_row("n_features", "|reason|", "|path|", "tree check (s)",
                    "agnostic (s)", "precision")]
    for record in results:
        rows.append(fmt_row(*record))
    emit("E15_reasons", rows)

    # Shape: reasons never exceed the path; the interval rendering keeps
    # near-perfect precision (the pointwise guarantee itself is absolute
    # and asserted via brute_force_is_sufficient above); the
    # model-agnostic check cost explodes with dimensionality while the
    # tree-structural check stays flat.
    for n_features, reason_len, path_len, t_tree, __, precision in results:
        assert reason_len <= path_len
        assert precision >= 0.9
    assert results[-1][4] / max(results[0][4], 1e-9) > \
        results[-1][3] / max(results[0][3], 1e-9)

    data = make_classification(400, n_features=8, seed=23)
    tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(data.X, data.y)
    benchmark(lambda: minimal_sufficient_reason(tree, data.X[0]))
