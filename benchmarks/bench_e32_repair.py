"""E32 — Shapley explanations for data repair (§3, [17]).

Claim [Deutch et al.]: ranking tuples by their Shapley contribution to
integrity-constraint violations identifies the culprits — greedy repair
in responsibility order reaches consistency with (near-)minimal
deletions, while naive orders waste repair budget.
"""

import numpy as np

from repro.db import (
    FunctionalDependency,
    Relation,
    greedy_repair,
    repair_responsibility,
)

from conftest import emit, fmt_row


def make_dirty_relation(n_groups: int = 12, group_size: int = 4,
                        corrupt_fraction: float = 0.25, seed: int = 0
                        ) -> tuple[Relation, set[int]]:
    """zip → city data where a minority of tuples carry a wrong city."""
    rng = np.random.default_rng(seed)
    rows = []
    corrupted: set[int] = set()
    for g in range(n_groups):
        city = f"city{g}"
        for k in range(group_size):
            idx = len(rows)
            value = city
            if k == 0 and rng.random() < corrupt_fraction * group_size:
                value = f"wrong{g}"
                corrupted.add(idx)
            rows.append((f"zip{g}", value, idx))
    return Relation(["zip", "city", "rowid"], rows, name="addr"), corrupted


def test_e32_repair(benchmark):
    relation, corrupted = make_dirty_relation(seed=3)
    fd = FunctionalDependency(("zip",), ("city",))
    dirty = fd.violations(relation)
    assert dirty > 0 and corrupted

    responsibility = repair_responsibility(relation, [fd], seed=0)
    ranking = sorted(responsibility, key=lambda i: -responsibility[i])
    # precision@k: are the top-responsibility tuples the corrupted ones?
    k = len(corrupted)
    hits = len(set(ranking[:k]) & corrupted) / k

    __, deleted_shapley = greedy_repair(relation, [fd], ranking=ranking)
    rng = np.random.default_rng(1)
    random_sizes = []
    for __ in range(5):
        random_ranking = [int(i) for i in rng.permutation(len(relation))]
        ___, deleted_random = greedy_repair(
            relation, [fd], ranking=random_ranking
        )
        random_sizes.append(len(deleted_random))

    rows = [
        fmt_row("quantity", "value"),
        fmt_row("violating pairs", dirty),
        fmt_row("corrupted tuples", len(corrupted)),
        fmt_row("precision@k of ranking", hits),
        fmt_row("deletions (shapley order)", len(deleted_shapley)),
        fmt_row("deletions (random order)", float(np.mean(random_sizes))),
    ]
    emit("E32_repair", rows)

    # Shape: the responsibility ranking surfaces the corrupted tuples and
    # repairs with (near-)minimal deletions; random repair deletes more.
    assert hits >= 0.8
    assert len(deleted_shapley) <= len(corrupted) + 1
    assert np.mean(random_sizes) >= len(deleted_shapley)

    benchmark(lambda: repair_responsibility(relation, [fd], seed=0))
