"""E45 — Indexed provenance: interval range scans vs naive DAG walks.

Claim: the XPath-accelerator interval encoding turns lineage-support
queries ("which query outputs does this base tuple support?") from an
O(n) scan of every root's derivation subtree into a handful of binary
searches, and incremental maintenance makes a single-tuple insert
O(depth + log n) instead of an O(n) rebuild. Two headline numbers:

* **indexed speedup** (floor: >=10x at the largest scale in
  ``bench_compare.FLOORS``) — wall time of a mixed lineage-support +
  ancestor workload over a synthetic derivation forest, naive
  (``legacy_supports`` / ``legacy_ancestors``) vs ``IntervalIndex``,
  at 10^3 / 10^4 / 10^5 base tuples. Answers are asserted identical.
* **incremental speedup** — per-mutation cost of ``insert_leaf`` (gap
  allocation inside the parent's interval) vs rebuilding the index
  from scratch after the same DAG mutation.
"""

import time

from repro.db.index import (
    IntervalIndex,
    ProvenanceDAG,
    legacy_ancestors,
    legacy_supports,
)

from conftest import emit, fmt_row

SCALES = (1_000, 10_000, 100_000)
BRANCHING = 10          # base tuples consumed per derived output
N_QUERIES = 25          # sampled base tuples per scale
N_MUTATIONS = 20        # incremental insert_leaf ops timed
N_REBUILDS = 3          # full rebuilds timed (slow; amortized per-op)
MUTATION_SCALE = 10_000


def _derivation_forest(n_base: int) -> ProvenanceDAG:
    """One output node per BRANCHING consecutive base tuples."""
    dag = ProvenanceDAG()
    for j in range(n_base // BRANCHING):
        base = range(j * BRANCHING, (j + 1) * BRANCHING)
        dag.add_node(("out", j), [("base", i) for i in base])
    return dag


def _sampled_bases(n_base: int) -> list:
    step = max(1, n_base // N_QUERIES)
    return [("base", i) for i in range(0, n_base, step)][:N_QUERIES]


def test_e45_indexed_provenance():
    rows = [fmt_row("n base", "naive", "indexed", "speedup", "build")]
    data_scales = []
    indexed_speedup = 0.0

    for n_base in SCALES:
        dag = _derivation_forest(n_base)

        t0 = time.perf_counter()
        index = IntervalIndex(dag)
        build_s = time.perf_counter() - t0

        queries = _sampled_bases(n_base)

        t0 = time.perf_counter()
        naive = [
            (legacy_supports(dag, q), legacy_ancestors(dag, q))
            for q in queries
        ]
        naive_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        indexed = [(index.supports(q), index.ancestors(q)) for q in queries]
        indexed_s = time.perf_counter() - t0

        # The index is a pure perf artifact: identical answers.
        for (n_sup, n_anc), (i_sup, i_anc) in zip(naive, indexed):
            assert set(n_sup) == set(i_sup)
            assert set(n_anc) == set(i_anc)

        speedup = naive_s / indexed_s
        indexed_speedup = speedup  # last scale is the headline
        rows.append(fmt_row(
            n_base,
            f"{naive_s * 1e3 / N_QUERIES:.3f} ms",
            f"{indexed_s * 1e3 / N_QUERIES:.3f} ms",
            f"{speedup:.0f}x",
            f"{build_s * 1e3:.0f} ms",
        ))
        data_scales.append({
            "n_base": n_base,
            "n_queries": N_QUERIES,
            "naive_s": naive_s,
            "indexed_s": indexed_s,
            "build_s": build_s,
            "speedup": speedup,
        })

    # -- incremental maintenance vs full rebuild --------------------------
    dag = _derivation_forest(MUTATION_SCALE)
    index = IntervalIndex(dag)
    n_roots = MUTATION_SCALE // BRANCHING

    t0 = time.perf_counter()
    for i in range(N_MUTATIONS):
        # Distinct parents: steady-state single-tuple inserts, not the
        # same-parent gap-exhaustion worst case (tested elsewhere).
        index.insert_leaf(("out", i * 7 % n_roots), ("new", i))
    incremental_per_op = (time.perf_counter() - t0) / N_MUTATIONS

    for i in range(N_MUTATIONS):
        assert ("out", i * 7 % n_roots) in index.supports(("new", i))

    t0 = time.perf_counter()
    for __ in range(N_REBUILDS):
        rebuilt = IntervalIndex(dag)
    rebuild_per_op = (time.perf_counter() - t0) / N_REBUILDS
    assert set(index.supports(("base", 0))) == set(
        rebuilt.supports(("base", 0))
    )

    incremental_speedup = rebuild_per_op / incremental_per_op
    rows.append(fmt_row("", "", "", "", ""))
    rows.append(fmt_row("maintain", "rebuild", "incremental", "speedup", ""))
    rows.append(fmt_row(
        f"{MUTATION_SCALE} base",
        f"{rebuild_per_op * 1e3:.1f} ms",
        f"{incremental_per_op * 1e6:.1f} us",
        f"{incremental_speedup:.0f}x",
        "",
    ))

    emit(
        "E45_indexed_provenance",
        rows,
        data={
            "branching": BRANCHING,
            "scales": data_scales,
            "maintenance": {
                "n_base": MUTATION_SCALE,
                "n_mutations": N_MUTATIONS,
                "incremental_per_op_s": incremental_per_op,
                "rebuild_per_op_s": rebuild_per_op,
            },
        },
        summary={
            "indexed_speedup": indexed_speedup,
            "incremental_speedup": incremental_speedup,
        },
    )
