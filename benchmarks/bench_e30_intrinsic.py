"""E30 — Intrinsic vs post-hoc explanations (§2, taxonomy axis (a)).

Claim: for an intrinsically interpretable additive model (a GAM), its own
exact decomposition *is* the ground truth — and post-hoc Shapley values
computed on it must recover that decomposition (for additive models the
Shapley value of the interventional game equals the centered shape
function). Post-hoc methods are thus validated against a model whose
explanation is known, the cleanest sanity check the taxonomy affords.
"""

import numpy as np

from repro.models import ExplainableBoostingClassifier
from repro.models.metrics import pearson_correlation
from repro.shapley import ExactShapleyExplainer
from repro.surrogate import LimeTabularExplainer

from conftest import emit, fmt_row


def test_e30_intrinsic(benchmark, loan_setup):
    data, __, ___ = loan_setup
    gam = ExplainableBoostingClassifier(n_rounds=60, seed=0)
    gam.fit(data.X, data.y)

    shap = ExactShapleyExplainer(gam, data.X[:60], output="raw")
    instances = data.X[:8]
    agreements, gaps = [], []
    for x in instances:
        own = gam.explain(x, feature_names=data.feature_names)
        post_hoc = shap.explain(x, feature_names=data.feature_names)
        agreements.append(pearson_correlation(own.values, post_hoc.values))
        gaps.append(float(np.abs(own.values - post_hoc.values).max()))

    rows = [
        fmt_row("metric", "value"),
        fmt_row("GAM accuracy", gam.score(data.X, data.y)),
        fmt_row("mean corr(own, SHAP)", float(np.mean(agreements))),
        fmt_row("mean max |diff|", float(np.mean(gaps))),
    ]
    emit("E30_intrinsic", rows)

    # Shape: the post-hoc Shapley values recover the model's own additive
    # decomposition almost exactly (background-sampling noise only).
    assert np.mean(agreements) > 0.95
    assert gam.score(data.X, data.y) > 0.75

    benchmark(lambda: gam.explain(data.X[0]))
