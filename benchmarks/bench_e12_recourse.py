"""E12 — Actionable recourse audit on a linear classifier (§2.1.4, [69]).

Claim [Ustun et al.]: the flipset search finds minimum-cost actions for
(nearly) all denied individuals, actions respect immutability, and the
population audit exposes cost disparities across groups when the
underlying data is biased.
"""

import numpy as np

from repro.counterfactual import LinearRecourse, recourse_audit
from repro.datasets import make_loan_dataset
from repro.models import LogisticRegression

from conftest import emit, fmt_row


def test_e12_recourse(benchmark):
    data = make_loan_dataset(600, seed=7, gender_gap=1.2)
    model = LogisticRegression(alpha=1.0).fit(data.X, data.y)
    recourse = LinearRecourse(
        model.coef_, model.intercept_, data, grid_size=8, max_actions=3
    )
    X = data.X[:250]
    groups = X[:, data.feature_index("gender")]
    audit = recourse_audit(recourse, X, groups=groups)

    rows = [fmt_row("population", "n_denied", "feasible", "mean cost")]
    for key in ("overall", "group_0.0", "group_1.0"):
        stats = audit[key]
        rows.append(fmt_row(key, stats["n_denied"], stats["feasible_rate"],
                            stats["mean_cost"]))
    emit("E12_recourse", rows)

    # Shape: recourse is feasible for (almost) everyone, and the
    # income-disadvantaged group (gender 0) bears at least as much cost.
    assert audit["overall"]["feasible_rate"] >= 0.95
    assert audit["group_0.0"]["n_denied"] >= audit["group_1.0"]["n_denied"]
    assert audit["group_0.0"]["mean_cost"] >= \
        audit["group_1.0"]["mean_cost"] - 0.05

    denied = next(x for x in X if recourse.score(x) < 0)
    benchmark(lambda: recourse.find(denied))
