"""E27 — Causal feasibility of counterfactual explanations (§2.1.4, [48]).

Claim [Mahajan, Tan & Sharma]: feature-vector counterfactual generators
produce causally infeasible instances — they move variables a person
cannot directly act on (credit score) or freeze descendants of the
variables they move. Measuring Mahajan-style feasibility (per-variable
mechanism residuals, with a declared set of directly-actionable
variables exempt) shows large violations for raw DiCE/GeCo outputs;
repairing a counterfactual by keeping only its *action-variable* edits
and propagating them through the SCM restores feasibility exactly, at
the validity cost the paper describes.
"""

import numpy as np

from repro.core.base import as_predict_fn
from repro.core.explanation import CounterfactualExplanation
from repro.counterfactual import (
    DiceExplainer,
    GecoExplainer,
    causal_inconsistency,
    mad_scale,
    project_counterfactual,
    validity,
)
from repro.datasets import make_loan_dataset

from conftest import emit, fmt_row

# What a person can directly act on; everything else must follow its
# causal mechanism.
ACTIONS = {"education", "employment_years", "savings"}


def repair(scm, feature_order, cf: CounterfactualExplanation) -> np.ndarray:
    """Keep only action-variable edits and propagate them causally."""
    repaired = []
    action_idx = [j for j, n in enumerate(feature_order) if n in ACTIONS]
    for row in cf.counterfactuals:
        restricted = cf.factual.copy()
        for j in action_idx:
            restricted[j] = row[j]
        repaired.append(
            project_counterfactual(scm, feature_order, cf.factual, restricted)
        )
    return np.vstack(repaired)


def test_e27_causal_feasibility(benchmark):
    data, scm = make_loan_dataset(600, seed=7, return_scm=True)
    from repro.models import LogisticRegression

    model = LogisticRegression(alpha=1.0).fit(data.X, data.y)
    predict = as_predict_fn(model)
    scale = mad_scale(data.X)
    denied = data.X[np.where(predict(data.X) < 0.4)[0][:4]]

    rows = [fmt_row("method", "infeasibility", "validity")]
    stats = {}
    for name, factory in (
        ("dice", lambda: DiceExplainer(model, data, seed=0)),
        ("geco", lambda: GecoExplainer(model, data, seed=0)),
    ):
        raw_gaps, raw_validity = [], []
        fixed_gaps, fixed_validity = [], []
        for x in denied:
            cf = factory().explain(x)
            raw_gaps.append(causal_inconsistency(
                scm, data.feature_names, cf, scale, exempt=ACTIONS
            ))
            raw_validity.append(validity(cf, predict))
            repaired_cf = CounterfactualExplanation(
                factual=cf.factual,
                counterfactuals=repair(scm, data.feature_names, cf),
                factual_outcome=cf.factual_outcome,
                target_outcome=cf.target_outcome,
                feature_names=cf.feature_names,
            )
            fixed_gaps.append(causal_inconsistency(
                scm, data.feature_names, repaired_cf, scale, exempt=ACTIONS
            ))
            fixed_validity.append(validity(repaired_cf, predict))
        stats[name] = {
            "raw_gap": float(np.mean(raw_gaps)),
            "raw_validity": float(np.mean(raw_validity)),
            "fixed_gap": float(np.mean(fixed_gaps)),
            "fixed_validity": float(np.mean(fixed_validity)),
        }
        rows.append(fmt_row(name, stats[name]["raw_gap"],
                            stats[name]["raw_validity"]))
        rows.append(fmt_row(f"{name}+repair", stats[name]["fixed_gap"],
                            stats[name]["fixed_validity"]))
    emit("E27_causal_feasibility", rows)

    for name in ("dice", "geco"):
        # Raw generators violate mechanisms substantially...
        assert stats[name]["raw_gap"] > 0.3
        # ...repair restores feasibility exactly (up to clipping noise in
        # the loan mechanisms)...
        assert stats[name]["fixed_gap"] < 0.05
        # ...at a validity cost, the paper's trade-off.
        assert stats[name]["fixed_validity"] <= \
            stats[name]["raw_validity"] + 1e-9

    geco = GecoExplainer(model, data, seed=0)
    x = denied[0]
    cf = geco.explain(x)
    benchmark(lambda: repair(scm, data.feature_names, cf))
