"""E10 — Marginal vs causal vs asymmetric Shapley under dependence
(§2.1.3, [18, 30]).

Claim: on a chain SCM a → b with f = a + 2b, marginal SHAP credits only
direct model use; causal Shapley additionally credits a's indirect effect
through b; asymmetric Shapley pushes (nearly) all of b's credit up to its
cause a. The three orderings of a's credit must be
marginal < causal < asymmetric.
"""

import numpy as np

from repro.causal import (
    AsymmetricShapleyExplainer,
    CausalShapleyExplainer,
    StructuralCausalModel,
    linear_mechanism,
)
from repro.shapley import ExactShapleyExplainer

from conftest import emit, fmt_row


def test_e10_causal_shapley(benchmark):
    scm = StructuralCausalModel()
    scm.add_variable("a", [], lambda p, u: u,
                     noise=lambda rng, n: rng.normal(0, 1, n))
    scm.add_variable("b", ["a"], linear_mechanism({"a": 1.0}),
                     noise=lambda rng, n: rng.normal(0, 0.3, n))

    def model_fn(X):
        return X[:, 0] + 2.0 * X[:, 1]

    x = np.array([1.0, 1.0])
    background = scm.sample_matrix(300, ["a", "b"], seed=0)

    marginal = ExactShapleyExplainer(model_fn, background).explain(x)
    causal = CausalShapleyExplainer(
        model_fn, scm, ["a", "b"], n_permutations=40, n_samples=500, seed=0
    ).explain(x)
    asymmetric = AsymmetricShapleyExplainer(
        model_fn, scm, ["a", "b"], n_permutations=15, n_samples=500, seed=0
    ).explain(x)

    rows = [
        fmt_row("method", "phi(a)", "phi(b)"),
        fmt_row("marginal SHAP", float(marginal.values[0]),
                float(marginal.values[1])),
        fmt_row("causal Shapley", float(causal.values[0]),
                float(causal.values[1])),
        fmt_row("  (direct a)", float(causal.meta["direct"][0]), ""),
        fmt_row("  (indirect a)", float(causal.meta["indirect"][0]), ""),
        fmt_row("asymmetric", float(asymmetric.values[0]),
                float(asymmetric.values[1])),
    ]
    emit("E10_causal_shapley", rows)

    # Shape: the ordering of a's credit across the three notions.
    assert marginal.values[0] < causal.values[0] < asymmetric.values[0]
    # causal indirect effect of a is clearly positive; of b is ~0
    assert causal.meta["indirect"][0] > 0.3
    assert abs(causal.meta["indirect"][1]) < 0.15
    # marginal SHAP of a ≈ its direct coefficient × deviation (1·1)
    assert marginal.values[0] < 1.6

    explainer = CausalShapleyExplainer(
        model_fn, scm, ["a", "b"], n_permutations=10, n_samples=200, seed=0
    )
    benchmark(lambda: explainer.explain(x))
