"""Regenerate the frozen golden attributions under tests/goldens/.

Each case is a fully seeded end-to-end explanation; the golden files are
**persist artifacts** — the explanation object itself, serialized
through :mod:`repro.persist` (type-tag envelope, canonical b64 float64
encoding) — and ``tests/test_goldens.py`` loads them back through
``from_dict`` before comparing at 1e-12. The test module imports *this*
file for the case definitions, so the fixtures can never drift apart
from the goldens they regenerate.

Usage::

    PYTHONPATH=src python scripts/regen_goldens.py            # all cases
    PYTHONPATH=src python scripts/regen_goldens.py kernel_shap lime

Regenerating is a deliberate act: only run it when an intentional
numeric change (new default, fixed bug) is being frozen, and commit the
diff with the change that caused it.
"""

from __future__ import annotations

import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "goldens")
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def _classification_parts():
    from repro.datasets import make_classification
    from repro.models import LogisticRegression

    data = make_classification(80, n_features=4, n_informative=3,
                               class_sep=1.5, seed=7)
    model = LogisticRegression(alpha=1.0).fit(data.X, data.y)
    background = data.X[:30]
    x = data.X[40]
    return model, background, x, data


def case_kernel_shap(backend: str | None = None):
    from repro.shapley.kernel import KernelShapExplainer

    model, background, x, __ = _classification_parts()
    return KernelShapExplainer(model, background, n_samples=64, seed=0,
                               backend=backend, n_procs=2).explain(x)


def view_kernel_shap(attr) -> dict:
    return {
        "values": np.asarray(attr.values, dtype=float).tolist(),
        "base_value": float(attr.base_value),
        "prediction": float(attr.prediction),
    }


def case_sampling_shap(backend: str | None = None):
    from repro.shapley.sampling import SamplingShapleyExplainer

    model, background, x, __ = _classification_parts()
    return SamplingShapleyExplainer(model, background, n_permutations=16,
                                    seed=0, backend=backend,
                                    n_procs=2).explain(x)


def view_sampling_shap(attr) -> dict:
    return {
        "values": np.asarray(attr.values, dtype=float).tolist(),
        "base_value": float(attr.base_value),
        "std_err": np.asarray(attr.meta["std_err"], dtype=float).tolist(),
    }


def case_tmc_datashapley(backend: str | None = None):
    from repro.datavalue.data_shapley import tmc_shapley
    from repro.datavalue.utility import UtilityFunction
    from repro.datasets import make_classification
    from repro.models import LogisticRegression
    from repro.models.model_selection import train_test_split

    data = make_classification(60, n_features=3, n_informative=2,
                               class_sep=2.0, seed=13)
    Xtr, Xv, ytr, yv = train_test_split(data.X, data.y, test_size=0.4, seed=0)
    utility = UtilityFunction(lambda: LogisticRegression(alpha=1.0),
                              Xtr[:10], ytr[:10], Xv, yv)
    return tmc_shapley(utility, n_permutations=12, seed=3,
                       backend=backend, n_procs=2)


def view_tmc_datashapley(attr) -> dict:
    return {
        "values": np.asarray(attr.values, dtype=float).tolist(),
        "full_score": float(attr.meta["full_score"]),
        "mean_truncation_position": float(
            attr.meta["mean_truncation_position"]
        ),
    }


def case_tuple_shapley(backend: str | None = None):
    from repro.db.relation import Relation
    from repro.db.tuple_shapley import shapley_of_tuples

    relation = Relation(["id", "grp"], [(i, i % 3) for i in range(9)])
    query = (lambda r: sum(1 for t in r.rows if t[1] == 0) * 2.0
             + len(r.rows) * 0.1)
    exact = shapley_of_tuples(relation, query, method="exact",
                              backend=backend, n_procs=2)
    sampled = shapley_of_tuples(relation, query, method="sampling",
                                n_permutations=24, seed=5,
                                backend=backend, n_procs=2)
    return {
        "exact": [float(exact[i]) for i in sorted(exact)],
        "sampled": [float(sampled[i]) for i in sorted(sampled)],
    }


def case_causal_shapley(backend: str | None = None):
    from repro.causal.causal_shapley import CausalShapleyExplainer
    from repro.causal.scm import StructuralCausalModel, linear_mechanism

    scm = StructuralCausalModel()
    scm.add_variable("a", [], lambda p, u: u,
                     noise=lambda rng, n: rng.normal(0, 1, n))
    scm.add_variable("b", ["a"], linear_mechanism({"a": 2.0}),
                     noise=lambda rng, n: rng.normal(0, 0.5, n))
    scm.add_variable("c", ["b"], linear_mechanism({"b": 1.5}),
                     noise=lambda rng, n: rng.normal(0, 0.5, n))
    model = lambda X: np.atleast_2d(X) @ np.array([1.0, 0.5, 2.0])
    explainer = CausalShapleyExplainer(model, scm, ["a", "b", "c"],
                                       n_permutations=8, n_samples=60,
                                       seed=2, backend=backend, n_procs=2)
    return explainer.explain(np.array([1.0, 2.0, 0.5]))


def view_causal_shapley(attr) -> dict:
    return {
        "values": np.asarray(attr.values, dtype=float).tolist(),
        "direct": np.asarray(attr.meta["direct"], dtype=float).tolist(),
        "indirect": np.asarray(attr.meta["indirect"], dtype=float).tolist(),
        "base_value": float(attr.base_value),
    }


def case_lime(backend: str | None = None):
    # LIME never consumes the coalition estimators, so the backend knob
    # must be a no-op for it — the golden freezes exactly that.
    from repro.core.dataset import TabularDataset
    from repro.surrogate import LimeTabularExplainer

    model, background, x, data = _classification_parts()
    dataset = TabularDataset(data.X, data.y)
    return LimeTabularExplainer(model, dataset, n_samples=120,
                                seed=11).explain(x)


def view_lime(attr) -> dict:
    return {
        "values": np.asarray(attr.values, dtype=float).tolist(),
        "prediction": float(attr.prediction),
    }


def case_db_plans(backend: str | None = None):
    # The planner never touches the coalition estimators, so the backend
    # knob must be a no-op; the golden freezes the explain_plan() text of
    # eight representative queries, so planner rewrites show up as
    # reviewed diffs rather than silent behavior changes.
    from repro.db.planner import And, Eq, Not, Opaque, Query, Range
    from repro.db.relation import Relation

    emp = Relation(
        ["name", "dept", "salary"],
        [("ann", "eng", 100), ("bob", "eng", 90), ("cat", "ops", 80),
         ("dan", "eng", 100), ("eve", "ops", 120)],
        name="emp",
    )
    dept = Relation(
        ["dept", "building"],
        [("eng", "B1"), ("ops", "B2"), ("hr", "B3")],
        name="dept",
    )
    contractors = Relation(
        ["name", "dept", "salary"],
        [("fay", "eng", 70), ("gil", "hr", 60)],
        name="contractors",
    )
    sites = Relation(["site"], [("north",), ("south",)], name="sites")

    queries = {
        "point_select": Query(emp).select(Eq("dept", "eng")),
        "range_select": Query(emp).select(Range("salary", 85, 110)),
        "negated_select": Query(emp).select(Not(Eq("dept", "eng"))),
        "residual_select": Query(emp).select(
            And(Eq("dept", "eng"), Range("salary", 90, None))
        ),
        "opaque_select": Query(emp).select(
            Opaque(lambda row: row["name"] < "d", "name < 'd'")
        ),
        "pushdown_index_join": Query(emp).join(dept).select(
            Range("salary", 90, None)
        ),
        "pushdown_hash_join": Query(emp).join(dept).select(
            And(Range("salary", 90, None), Eq("building", "B1"))
        ),
        "cartesian_join": Query(emp).project(["name"]).join(sites),
        "union_pushdown": Query(emp).union(contractors).select(
            Eq("dept", "eng")
        ),
    }
    return {name: query.explain_plan() for name, query in queries.items()}


CASES = {
    "kernel_shap": case_kernel_shap,
    "sampling_shap": case_sampling_shap,
    "tmc_datashapley": case_tmc_datashapley,
    "tuple_shapley": case_tuple_shapley,
    "causal_shapley": case_causal_shapley,
    "lime": case_lime,
    "db_plans": case_db_plans,
}

# Numeric projection compared at 1e-12; identity for plain-dict cases.
VIEWS = {
    "kernel_shap": view_kernel_shap,
    "sampling_shap": view_sampling_shap,
    "tmc_datashapley": view_tmc_datashapley,
    "causal_shapley": view_causal_shapley,
    "lime": view_lime,
}


def golden_view(name: str, output) -> dict:
    """The numeric dict a case's output is compared by."""
    view = VIEWS.get(name)
    return view(output) if view is not None else output


def regenerate(names=None) -> list[str]:
    """Persist each named case's artifact golden; returns written paths."""
    from repro.persist import dumps

    os.makedirs(GOLDEN_DIR, exist_ok=True)
    written = []
    for name in names or sorted(CASES):
        payload = {"case": name, "artifact": CASES[name]()}
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        text = dumps(payload, indent=2) + "\n"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        written.append(path)
    return written


def main(argv=None) -> int:
    names = list(argv if argv is not None else sys.argv[1:])
    unknown = [n for n in names if n not in CASES]
    if unknown:
        sys.stderr.write(
            f"unknown case(s) {unknown}; choose from {sorted(CASES)}\n"
        )
        return 2
    for path in regenerate(names or None):
        sys.stdout.write(f"wrote {os.path.relpath(path, REPO_ROOT)}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
