#!/usr/bin/env python3
"""Lint: forbid bare ``print(`` inside ``src/repro``.

Diagnostics belong in :mod:`repro.obs` (spans, counters, summaries), not
on stdout — a library that prints is a library whose cost you cannot
meter. The only modules allowed to print are the human-output surfaces:
``render.py``, ``report.py`` and ``cli.py``.

AST-based, so comments and strings mentioning print() don't trip it.
Exit status 0 when clean, 1 with a ``path:line`` listing otherwise.
Enforced in tier-1 via ``tests/test_obs_lint_and_bench.py``.
"""

from __future__ import annotations

import ast
import os
import sys

ALLOWED_FILES = {"render.py", "report.py", "cli.py"}


def find_print_calls(path: str) -> list[int]:
    """Line numbers of bare ``print(...)`` calls in one Python file."""
    with open(path, encoding="utf-8") as f:
        tree = ast.parse(f.read(), filename=path)
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def offenders(root: str) -> list[str]:
    """All ``path:line`` print offences under ``root``."""
    out: list[str] = []
    for dirpath, __, filenames in sorted(os.walk(root)):
        for name in sorted(filenames):
            if not name.endswith(".py") or name in ALLOWED_FILES:
                continue
            path = os.path.join(dirpath, name)
            out.extend(f"{path}:{line}" for line in find_print_calls(path))
    return out


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    default_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
        "repro",
    )
    root = argv[0] if argv else default_root
    found = offenders(root)
    if found:
        sys.stderr.write(
            "bare print() calls found (route diagnostics through repro.obs; "
            "only render.py/report.py/cli.py may print):\n"
        )
        for offence in found:
            sys.stderr.write(f"  {offence}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
