#!/usr/bin/env sh
# Tier-1 gate, runnable locally and in CI: the full test suite, the
# source lints, and the benchmark wall-time regression guard.
# Referenced from ROADMAP.md ("Tier-1 verify"); exits non-zero on the
# first failing step.
set -eu

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

echo "== tier-1: lint (no print) =="
python scripts/check_no_print.py

echo "== tier-1: lint (exception hygiene: src + tests) =="
python scripts/check_exception_hygiene.py

echo "== tier-1: lint (no bespoke shapley loops) =="
python scripts/check_no_bespoke_shapley.py

echo "== tier-1: lint (metric names + blessed timing) =="
python scripts/check_metric_names.py

echo "== tier-1: lint (no per-row explain loops) =="
python scripts/check_batch_loops.py

echo "== tier-1: lint (no naive row scans in the db layer) =="
python scripts/check_db_scans.py

echo "== tier-1: lint (no untimed blocking io in serve) =="
python scripts/check_blocking_io.py

echo "== tier-1: lint (persist protocol: to_dict/from_dict pairs, no stray pickle) =="
python scripts/check_serializable.py

echo "== tier-1: benchmark regression guard =="
python scripts/bench_compare.py

echo "== tier-1: OK =="
