#!/usr/bin/env python3
"""Lint: metric naming + the blessed-timing rule, inside ``src/repro``.

Two rules keep the telemetry surface coherent:

1. **Metric names are dotted lowercase.** Every literal first argument
   to ``counter(...)`` / ``gauge(...)`` / ``histogram(...)`` (bare or
   attribute-qualified, e.g. ``metrics.counter``) must match
   ``segment(.segment)+`` with segments of ``[a-z0-9_]`` — so the
   Prometheus exposition, the summary tables, and ``grep`` all agree on
   what a metric is called. Non-literal names are ignored (registry
   helpers pass names through variables).
2. **No ad-hoc ``time.perf_counter()`` timing outside ``repro/obs``.**
   Latency measured with a bare perf counter is invisible to the
   histograms, the ledger, and ``/metrics``; use
   ``repro.obs.metrics.observe_duration`` or a span instead. A line may
   opt out with a ``# obs: allow`` comment when the raw duration value
   itself is the payload (the exec pool's shard gauges, experiment
   scripts measuring their *subject*).

AST-based; exit 0 when clean, 1 with a ``path:line`` listing otherwise.
Enforced in tier-1 via ``scripts/run_tier1.sh`` and
``tests/test_obs_lint_and_bench.py``.
"""

from __future__ import annotations

import ast
import os
import re
import sys

METRIC_FACTORIES = {"counter", "gauge", "histogram"}
NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
ALLOW_MARK = "# obs: allow"
# The obs package owns the timing primitives; within it perf_counter is
# the implementation, not an escape.
EXEMPT_DIR = os.path.join("repro", "obs")


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_perf_counter(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "perf_counter":
        return True
    return isinstance(func, ast.Name) and func.id == "perf_counter"


def check_file(path: str) -> list[str]:
    """``path:line reason`` offences for one Python file."""
    with open(path, encoding="utf-8") as f:
        source = f.read()
    tree = ast.parse(source, filename=path)
    source_lines = source.splitlines()

    def allowed(lineno: int) -> bool:
        line = source_lines[lineno - 1] if lineno <= len(source_lines) else ""
        return ALLOW_MARK in line

    timing_exempt = EXEMPT_DIR in os.path.normpath(path)
    out: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in METRIC_FACTORIES and node.args:
            first = node.args[0]
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
                and not NAME_RE.match(first.value)
            ):
                out.append(
                    f"{path}:{node.lineno} metric name {first.value!r} is "
                    "not dotted lowercase (want e.g. 'model.latency_ms')"
                )
        if (
            not timing_exempt
            and _is_perf_counter(node)
            and not allowed(node.lineno)
        ):
            out.append(
                f"{path}:{node.lineno} ad-hoc time.perf_counter() timing — "
                "use obs.metrics.observe_duration / obs.span, or mark the "
                "line '# obs: allow'"
            )
    return out


def offenders(root: str) -> list[str]:
    """All offences under ``root``, sorted by path."""
    out: list[str] = []
    for dirpath, __, filenames in sorted(os.walk(root)):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            out.extend(check_file(os.path.join(dirpath, name)))
    return out


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    default_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
        "repro",
    )
    root = argv[0] if argv else default_root
    found = offenders(root)
    if found:
        sys.stderr.write("metric-name / timing lint failures:\n")
        for offence in found:
            sys.stderr.write(f"  {offence}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
