#!/usr/bin/env python3
"""Lint: forbid bespoke Shapley permutation loops outside ``repro.games``.

The games layer exists so that every Shapley-style computation shares one
walk loop (caching, chunking, budgets, telemetry, convergence
diagnostics). The failure mode it guards against is regression by
convenience: a new estimator quietly re-implementing the
"sample a permutation, accumulate marginal contributions" loop and
losing all of that machinery.

Detection is a small per-function taint analysis, not a grep:

* any name assigned from an expression containing a ``.permutation(...)``
  call is *tainted* (``perm = rng.permutation(n)``);
* taint propagates through assignments referencing tainted names and
  through ``for`` targets iterating tainted iterables (unwrapping
  ``enumerate()``);
* an offence is a marginal-contribution accumulation driven by the
  permutation: an augmented assignment into a subscript whose index
  references a tainted name (``sums[point] += ...``), or a ``for`` loop
  over a tainted iterable whose body performs any subscript ``+=``.

Plain uses of ``rng.permutation`` — shuffling minibatch order, permuting
rows for a baseline — do not accumulate per-player marginals and pass.
The retained ``legacy_*`` parity implementations opt out with a trailing
``# games: allow`` on the ``.permutation(...)`` line, and everything
under ``src/repro/games/`` is exempt (that is where the one true loop
lives).

AST-based, so strings and comments cannot trip it. Exit status 0 when
clean, 1 with a ``path:line reason`` listing otherwise. Enforced in
tier-1 via ``tests/test_obs_lint_and_bench.py``.
"""

from __future__ import annotations

import ast
import os
import sys

ALLOW_MARKER = "# games: allow"
_EXEMPT_DIR = os.sep + os.path.join("repro", "games") + os.sep


def _contains_permutation_call(node: ast.AST) -> int | None:
    """Line of the first ``<anything>.permutation(...)`` call, else None."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "permutation"
        ):
            return sub.lineno
    return None


def _loaded_names(node: ast.AST) -> set[str]:
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


def _target_names(target: ast.AST) -> set[str]:
    return {
        sub.id for sub in ast.walk(target) if isinstance(sub, ast.Name)
    }


def _unwrap_enumerate(node: ast.expr) -> ast.expr:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "enumerate"
        and node.args
    ):
        return node.args[0]
    return node


def _scope_statements(body: list[ast.stmt]) -> list[ast.stmt]:
    """All statements of a scope in source order, not entering functions."""
    out: list[ast.stmt] = []
    stack = list(reversed(body))
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for field in ("body", "orelse", "finalbody"):
            stack.extend(reversed(getattr(stmt, field, [])))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(reversed(handler.body))
    out.sort(key=lambda s: (s.lineno, s.col_offset))
    return out


def _body_has_subscript_augassign(stmt: ast.For) -> bool:
    for sub in ast.walk(stmt):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(sub, ast.AugAssign) and isinstance(
            sub.target, ast.Subscript
        ):
            return True
    return False


def _scope_violations(body: list[ast.stmt]) -> list[tuple[int, str]]:
    """``(origin_line, reason)`` offences for one function/module scope."""
    statements = _scope_statements(body)
    tainted: dict[str, int] = {}
    offences: dict[tuple[int, str], None] = {}

    def origin_of(names: set[str]) -> int | None:
        lines = [tainted[n] for n in names if n in tainted]
        return min(lines) if lines else None

    # Two passes reach the taint fixpoint across loop-carried assignments;
    # offences are recorded on the second, fully-tainted pass.
    for record in (False, True):
        for stmt in statements:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is None:
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                call_line = _contains_permutation_call(value)
                origin = (
                    call_line
                    if call_line is not None
                    else origin_of(_loaded_names(value))
                )
                if origin is not None:
                    for target in targets:
                        # Writing through a subscript does not taint the
                        # container name itself (masks[i] = perm-derived
                        # data is construction, not accumulation).
                        if isinstance(target, ast.Subscript):
                            continue
                        for name in _target_names(target):
                            tainted.setdefault(name, origin)
            elif isinstance(stmt, ast.For):
                iter_expr = _unwrap_enumerate(stmt.iter)
                origin = origin_of(_loaded_names(iter_expr))
                if origin is not None:
                    for name in _target_names(stmt.target):
                        tainted.setdefault(name, origin)
                    if record and _body_has_subscript_augassign(stmt):
                        offences[
                            origin,
                            "permutation-driven loop accumulates into a "
                            f"subscript (line {stmt.lineno}); use "
                            "repro.games.permutation_estimator",
                        ] = None
            elif isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Subscript
            ):
                origin = origin_of(_loaded_names(stmt.target.slice))
                if record and origin is not None:
                    offences[
                        origin,
                        "marginal contributions accumulated by permutation "
                        f"index (line {stmt.lineno}); use "
                        "repro.games.permutation_estimator",
                    ] = None
    return sorted(offences)


def find_violations(path: str) -> list[tuple[int, str]]:
    """``(line, reason)`` pairs for one Python file."""
    with open(path, encoding="utf-8") as f:
        source = f.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    scopes: list[list[ast.stmt]] = [tree.body]
    scopes.extend(
        node.body
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    out: list[tuple[int, str]] = []
    for body in scopes:
        for line, reason in _scope_violations(body):
            line_text = lines[line - 1] if line <= len(lines) else ""
            if ALLOW_MARKER in line_text:
                continue
            out.append((line, reason))
    return sorted(set(out))


def offenders(root: str) -> list[str]:
    """All ``path:line reason`` offences under ``root``."""
    out: list[str] = []
    for dirpath, __, filenames in sorted(os.walk(root)):
        if _EXEMPT_DIR in dirpath + os.sep:
            continue
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            out.extend(
                f"{path}:{line} {reason}"
                for line, reason in find_violations(path)
            )
    return out


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    default_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
        "repro",
    )
    root = argv[0] if argv else default_root
    found = offenders(root)
    if found:
        sys.stderr.write(
            "bespoke Shapley permutation loop found (route it through "
            "repro.games.permutation_estimator, or mark a retained legacy "
            f"implementation with `{ALLOW_MARKER}`):\n"
        )
        for offence in found:
            sys.stderr.write(f"  {offence}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
