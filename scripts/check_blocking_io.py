#!/usr/bin/env python3
"""Lint: no untimed blocking calls inside ``src/repro/serve``.

The serve layer's contract is "no hung sockets, no hung requests":
every wait is bounded by a timeout that chains back to a request
deadline or a config knob. One unbounded ``.wait()`` quietly breaks the
whole overload story, and nothing in the test suite fails until a
production-shaped traffic pattern finds it. So the contract is linted,
not just remembered:

1. **No zero-argument blocking primitives.** A call spelled
   ``x.wait()`` / ``x.acquire()`` / ``x.join()`` / ``x.get()`` /
   ``x.result()`` / ``x.read()`` / ``x.recv()`` / ``x.accept()`` with
   no arguments at all blocks until its peer acts; passing a timeout
   (positionally or by keyword) or ``blocking=False`` is what bounds
   it. Calls with any argument are accepted — the reviewer's job is to
   check the bound is right, the linter's job is to make sure there is
   one.
2. **No ``settimeout(None)``.** That is how a bounded socket becomes an
   unbounded one after the fact.
3. **No bare ``sleep`` outside backoff helpers.** ``time.sleep`` in a
   request path is a hidden latency floor; the only blessed sleeps live
   in functions with ``backoff`` in their name (the retry path, where
   the guard already caps the delay by the scope's remaining deadline).

A line may opt out with a ``# serve: allow`` comment when the blocking
call is deliberate and bounded by construction elsewhere.

AST-based; exit 0 when clean, 1 with a ``path:line`` listing otherwise.
Enforced in tier-1 via ``scripts/run_tier1.sh``.
"""

from __future__ import annotations

import ast
import os
import sys

BLOCKING_METHODS = {
    "wait", "acquire", "join", "get", "result", "read", "recv", "accept",
}
ALLOW_MARK = "# serve: allow"
DEFAULT_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro", "serve",
)


def _attr_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_settimeout_none(node: ast.Call) -> bool:
    if _attr_name(node) != "settimeout":
        return False
    args = list(node.args) + [kw.value for kw in node.keywords]
    return any(
        isinstance(a, ast.Constant) and a.value is None for a in args
    )


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.func_stack: list[str] = []
        self.out: list[str] = []

    def _allowed(self, lineno: int) -> bool:
        line = self.lines[lineno - 1] if lineno <= len(self.lines) else ""
        return ALLOW_MARK in line

    def _flag(self, node: ast.AST, reason: str) -> None:
        if not self._allowed(node.lineno):
            self.out.append(f"{self.path}:{node.lineno} {reason}")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _in_backoff_helper(self) -> bool:
        return any("backoff" in name for name in self.func_stack)

    def visit_Call(self, node: ast.Call) -> None:
        name = _attr_name(node)
        if name == "sleep" and not self._in_backoff_helper():
            self._flag(
                node,
                "bare sleep() outside a backoff helper — bound the wait "
                "by a deadline, or mark the line '# serve: allow'",
            )
        elif _is_settimeout_none(node):
            self._flag(
                node,
                "settimeout(None) makes a socket unbounded — pass a "
                "finite timeout",
            )
        elif (
            name in BLOCKING_METHODS
            and isinstance(node.func, ast.Attribute)
            and not node.args
            and not node.keywords
        ):
            self._flag(
                node,
                f"untimed blocking call .{name}() — pass a timeout (or "
                "blocking=False), or mark the line '# serve: allow'",
            )
        self.generic_visit(node)


def check_file(path: str) -> list[str]:
    """``path:line reason`` offences for one Python file."""
    with open(path, encoding="utf-8") as f:
        source = f.read()
    visitor = _Visitor(path, source.splitlines())
    visitor.visit(ast.parse(source, filename=path))
    return visitor.out


def offenders(root: str) -> list[str]:
    """All offences under ``root`` (or a single file), sorted by path."""
    if os.path.isfile(root):
        return check_file(root)
    out: list[str] = []
    for dirpath, __, filenames in sorted(os.walk(root)):
        for name in sorted(filenames):
            if name.endswith(".py"):
                out.extend(check_file(os.path.join(dirpath, name)))
    return out


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = argv[0] if argv else DEFAULT_ROOT
    found = offenders(root)
    if found:
        sys.stderr.write("blocking-io lint failures:\n")
        for offence in found:
            sys.stderr.write(f"  {offence}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
