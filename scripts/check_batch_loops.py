#!/usr/bin/env python3
"""Lint: forbid per-row ``explain()`` loops in library code.

PR 7's amortized batch path only pays off if callers actually go through
``explain_batch``: a shared coalition plan is drawn once per batch, the
TreeSHAP precompute is reused across rows, and fused model calls replace
per-row re-sampling. The failure mode this lint guards against is the
easy regression — a new aggregation helper writing
``for x in X: explainer.explain(x)`` and silently forfeiting the
amortization (plus its ``coalition.plan.*`` telemetry).

Detection is AST-based: any ``<something>.explain(...)`` call whose
enclosing statement sits inside a ``for``/``while`` loop or a
comprehension is an offence. Nested function definitions reset the
search (a worker callable *defined* in a loop is dispatch machinery, not
a per-row loop). Legitimate per-row sites opt out with a trailing
``# batch: allow`` on the call line or on the loop header line — the
marker is reserved for loops the batch path cannot serve: stability
sweeps that vary the seed per run, metrics that need per-row companion
computations, and the sanctioned per-row fallback itself.

Scope is ``src/repro`` only; tests, benchmarks and examples may loop
freely. Exit status 0 when clean, 1 with a ``path:line reason`` listing
otherwise. Enforced in tier-1 via ``scripts/run_tier1.sh``.
"""

from __future__ import annotations

import ast
import os
import sys

ALLOW_MARKER = "# batch: allow"

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _explain_calls(node: ast.AST):
    """``(line, col)`` of each ``*.explain(...)`` call under ``node``,
    not descending into nested function definitions (fresh loop scope).
    """
    stack = [node]
    while stack:
        sub = stack.pop()
        if isinstance(sub, _FUNCTIONS):
            continue
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "explain"
        ):
            yield sub.func.lineno
        stack.extend(ast.iter_child_nodes(sub))


def find_violations(path: str) -> list[tuple[int, str]]:
    """``(line, reason)`` pairs for one Python file."""
    with open(path, encoding="utf-8") as f:
        source = f.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()

    def allowed(line: int) -> bool:
        return line <= len(lines) and ALLOW_MARKER in lines[line - 1]

    out: set[tuple[int, str]] = set()
    for node in ast.walk(tree):
        if isinstance(node, _LOOPS):
            header, bodies = node.lineno, node.body + node.orelse
        elif isinstance(node, _COMPREHENSIONS):
            header, bodies = node.lineno, [node]
        else:
            continue
        for body in bodies:
            for line in _explain_calls(body):
                if allowed(line) or allowed(header):
                    continue
                out.add((
                    line,
                    "per-row explain() inside a loop "
                    f"(loop at line {header}); use explain_batch so the "
                    "amortized path (shared plans, tree precompute) "
                    "applies",
                ))
    return sorted(out)


def offenders(root: str) -> list[str]:
    """All ``path:line reason`` offences under ``root``."""
    out: list[str] = []
    for dirpath, __, filenames in sorted(os.walk(root)):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            out.extend(
                f"{path}:{line} {reason}"
                for line, reason in find_violations(path)
            )
    return out


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    default_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
        "repro",
    )
    root = argv[0] if argv else default_root
    found = offenders(root)
    if found:
        sys.stderr.write(
            "per-row explain() loop found (route batches through "
            "explain_batch, or mark a loop the amortized path cannot "
            f"serve with `{ALLOW_MARKER}`):\n"
        )
        for offence in found:
            sys.stderr.write(f"  {offence}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
