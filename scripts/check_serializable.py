#!/usr/bin/env python3
"""Lint: the persist protocol's two structural invariants, by AST.

1. Every class decorated ``@register_serializable(...)`` must *have*
   both ``to_dict`` and ``from_dict`` — defined in its own body or
   inherited from a base that has them (``Serializable`` supplies the
   generic pair). Registration without the pair is a latent
   ``PersistError`` that only fires on the first save/load.

2. ``pickle`` stays out of :mod:`repro` except under ``exec/`` — the
   spawn backend's transport is the one sanctioned use. Everything else
   must go through the persist envelope (versioned, canonical,
   dependency-free); an ad-hoc pickle is an unversioned artifact no
   registry can validate. A deliberate exception is granted by putting
   ``# persist: allow`` on the import line.

Inheritance is resolved by name, preferring classes defined in the
registered class's own module over same-named classes elsewhere (the
repo's registered hierarchies are single-module, but unrelated modules
may reuse a class name — e.g. ``db.planner.Predicate`` vs the
registered ``core.Predicate``), with ``Serializable`` as the axiom. AST-based, so strings and comments
can't trip it. Exit 0 when clean, 1 with a ``path:line`` listing.
Enforced in tier-1 via ``scripts/run_tier1.sh``.
"""

from __future__ import annotations

import ast
import os
import sys

ALLOW_MARK = "# persist: allow"
PICKLE_ALLOWED_DIRS = {"exec"}
# Base classes that provide to_dict/from_dict outside scanned sources.
PROVIDERS = {"Serializable"}


def _decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Attribute):
            names.append(base.attr)
        elif isinstance(base, ast.Name):
            names.append(base.id)
    return names


def _scan_file(path: str):
    """(registered classes, all classes, pickle import lines) of one file."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    registered, classes, pickle_lines = [], {}, []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            classes[node.name] = (methods, _base_names(node))
            if any(
                _decorator_name(d) == "register_serializable"
                for d in node.decorator_list
            ):
                registered.append((node.name, node.lineno))
        elif isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] == "pickle"
                   for alias in node.names):
                pickle_lines.append(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "pickle":
                pickle_lines.append(node.lineno)
    pickle_lines = [
        line for line in pickle_lines
        if ALLOW_MARK not in lines[line - 1]
    ]
    return registered, classes, pickle_lines


def _provides(name: str, classes: dict, seen: set | None = None) -> bool:
    """Whether class ``name`` has both to_dict and from_dict."""
    if name in PROVIDERS:
        return True
    seen = seen or set()
    if name in seen or name not in classes:
        return False
    seen.add(name)
    methods, bases = classes[name]
    if "to_dict" in methods and "from_dict" in methods:
        return True
    # The pair may be split across the hierarchy (a base's generic pair
    # with one side overridden locally); what matters is that *both*
    # resolve somewhere on the MRO.
    def has(method: str, cls: str, trail: set) -> bool:
        if cls in PROVIDERS:
            return True
        if cls in trail or cls not in classes:
            return False
        trail.add(cls)
        cls_methods, cls_bases = classes[cls]
        if method in cls_methods:
            return True
        return any(has(method, base, trail) for base in cls_bases)

    return (has("to_dict", name, set()) and has("from_dict", name, set()))


def offenders(root: str) -> list[str]:
    out: list[str] = []
    all_classes: dict = {}
    file_classes: dict[str, dict] = {}
    file_registered: list[tuple[str, str, int]] = []
    for dirpath, __, filenames in sorted(os.walk(root)):
        rel = os.path.relpath(dirpath, root)
        top = rel.split(os.sep)[0]
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            registered, classes, pickle_lines = _scan_file(path)
            all_classes.update(classes)
            file_classes[path] = classes
            file_registered.extend(
                (path, cls, line) for cls, line in registered
            )
            if top not in PICKLE_ALLOWED_DIRS:
                out.extend(
                    f"{path}:{line}: pickle import outside exec/ "
                    f"(use repro.persist, or mark '{ALLOW_MARK}')"
                    for line in pickle_lines
                )
    for path, cls, line in file_registered:
        # Resolve names own-module-first: an unrelated class elsewhere
        # reusing the name must not shadow the registered definition.
        scoped = {**all_classes, **file_classes[path]}
        if not _provides(cls, scoped):
            out.append(
                f"{path}:{line}: @register_serializable class {cls!r} "
                "has no to_dict/from_dict pair (define them or inherit "
                "Serializable)"
            )
    return sorted(out)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    default_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
        "repro",
    )
    root = argv[0] if argv else default_root
    found = offenders(root)
    if found:
        sys.stderr.write("persist protocol lint failures:\n")
        for offence in found:
            sys.stderr.write(f"  {offence}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
