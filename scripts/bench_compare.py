#!/usr/bin/env python3
"""Guard: fail on wall-time regressions vs the committed bench baseline.

``BENCH_summary.json`` is the rolling perf trajectory the benchmark suite
maintains; ``benchmarks/BENCH_baseline.json`` is the committed snapshot
it is compared against. A guarded experiment regresses when its fresh
wall time exceeds the baseline by more than ``--max-regression``
(default 25%) *and* by more than ``--min-delta-s`` absolute seconds (so
timer noise on sub-second experiments cannot trip the guard).

Experiments missing from either file are skipped — benchmarks are not
part of tier-1, so a fresh checkout that never ran them must pass. A
guarded experiment that *was* freshly run but has no committed baseline
entry is also skipped, with a stderr warning naming it, so a newly added
benchmark cannot silently escape the guard forever. The perf-sensitive
experiments guarded by default are the Shapley hot paths: E2 (kernel
convergence), E3 (TreeSHAP speed), E37 (the coalition engine itself),
E38 (fault-tolerance overhead) and E39 (the games layer).

Exit status 0 when clean, 1 with a listing otherwise. Enforced in tier-1
via ``tests/test_obs_lint_and_bench.py``, alongside ``check_no_print.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "BENCH_baseline.json")
DEFAULT_FRESH = os.path.join(REPO_ROOT, "BENCH_summary.json")

GUARDED_EXPERIMENTS = (
    "E2_kernel_convergence",
    "E3_treeshap_speed",
    "E37_coalition_engine",
    "E38_fault_tolerance",
    "E39_games_layer",
    "E40_process_backend",
)
MAX_REGRESSION = 0.25
MIN_DELTA_S = 0.75


def load_summary(path: str) -> dict:
    """The ``experiments`` mapping of a summary file ({} when unusable)."""
    try:
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, ValueError):
        return {}
    experiments = payload.get("experiments") if isinstance(payload, dict) else None
    return experiments if isinstance(experiments, dict) else {}


def regressions(
    baseline: dict,
    fresh: dict,
    experiments=GUARDED_EXPERIMENTS,
    max_regression: float = MAX_REGRESSION,
    min_delta_s: float = MIN_DELTA_S,
) -> list[str]:
    """Human-readable findings for every guarded experiment that slowed."""
    found: list[str] = []
    for experiment in experiments:
        base = baseline.get(experiment) or {}
        new = fresh.get(experiment) or {}
        base_wall = base.get("wall_s")
        new_wall = new.get("wall_s")
        if not base_wall or not new_wall:
            continue
        if (
            new_wall > base_wall * (1.0 + max_regression)
            and new_wall - base_wall > min_delta_s
        ):
            found.append(
                f"{experiment}: wall_s {base_wall:.3f} -> {new_wall:.3f} "
                f"(+{(new_wall / base_wall - 1.0) * 100.0:.0f}%, "
                f"limit +{max_regression * 100.0:.0f}%)"
            )
    return found


def missing_baselines(baseline: dict, fresh: dict,
                      experiments=GUARDED_EXPERIMENTS) -> list[str]:
    """Guarded experiments with fresh timings but no committed baseline.

    These cannot be compared, so the guard skips them — but silently
    un-guarded experiments rot, so the caller warns about each one.
    """
    return [
        experiment
        for experiment in experiments
        if (fresh.get(experiment) or {}).get("wall_s")
        and not (baseline.get(experiment) or {}).get("wall_s")
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--fresh", default=DEFAULT_FRESH)
    parser.add_argument("--max-regression", type=float, default=MAX_REGRESSION)
    parser.add_argument("--min-delta-s", type=float, default=MIN_DELTA_S)
    parser.add_argument(
        "--experiments",
        default=",".join(GUARDED_EXPERIMENTS),
        help="comma-separated experiment ids to guard",
    )
    args = parser.parse_args(argv)
    experiments = [e for e in args.experiments.split(",") if e]
    baseline = load_summary(args.baseline)
    fresh = load_summary(args.fresh)
    for experiment in missing_baselines(baseline, fresh, experiments):
        sys.stderr.write(
            f"warning: {experiment} has fresh timings but no entry in "
            f"{args.baseline}; skipping the regression check — commit a "
            "baseline for it\n"
        )
    found = regressions(
        baseline,
        fresh,
        experiments=experiments,
        max_regression=args.max_regression,
        min_delta_s=args.min_delta_s,
    )
    if found:
        sys.stderr.write(
            "benchmark wall-time regressions vs committed baseline "
            f"({args.baseline}):\n"
        )
        for line in found:
            sys.stderr.write(f"  {line}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
