#!/usr/bin/env python3
"""Guard: fail on wall-time regressions vs the committed bench baseline.

``BENCH_summary.json`` is the rolling perf trajectory the benchmark suite
maintains; ``benchmarks/BENCH_baseline.json`` is the committed snapshot
it is compared against. A guarded experiment regresses when its fresh
wall time exceeds the baseline by more than ``--max-regression``
(default 25%) *and* by more than ``--min-delta-s`` absolute seconds (so
timer noise on sub-second experiments cannot trip the guard).

Since telemetry v2 the guard also compares **p95 explain latency**
(``p95_ms``, computed from the quantile histograms by the benchmark
conftest) wherever both files recorded it, with its own, looser
tolerances — and every knob can be overridden per experiment via the
``TOLERANCES`` table.

Experiments missing from either file are skipped — benchmarks are not
part of tier-1, so a fresh checkout that never ran them must pass. A
guarded experiment that *was* freshly run but has no committed baseline
entry is also skipped, with a stderr warning naming it, so a newly added
benchmark cannot silently escape the guard forever. The perf-sensitive
experiments guarded by default are the Shapley hot paths: E2 (kernel
convergence), E3 (TreeSHAP speed), E37 (the coalition engine itself),
E38 (fault-tolerance overhead), E39 (the games layer), E40 (the process
backend), E41 (telemetry overhead), E42 (amortized batch explanation),
E43 (the explanation service under load), E44 (persist round-trips) and
E45 (indexed provenance queries).

Beyond wall-time ratios against the baseline, the guard also enforces
**absolute speedup floors** (``FLOORS``) on headline ratios the
benchmarks publish into their summary entries: E42's amortized batch
paths must stay ≥3× their per-row loops regardless of what the baseline
recorded — an eroding speedup is a regression even when wall time drifts
slowly enough to duck the relative check.

Exit status 0 when clean, 1 with a listing otherwise. Enforced in tier-1
via ``tests/test_obs_lint_and_bench.py``, alongside ``check_no_print.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "BENCH_baseline.json")
DEFAULT_FRESH = os.path.join(REPO_ROOT, "BENCH_summary.json")

# Per-experiment tolerance overrides. Keys are the guarded experiments;
# values override the global knobs below for that experiment only:
#   max_regression      relative wall-time slack (0.25 = +25%)
#   min_delta_s         absolute wall-time floor in seconds
#   p95_max_regression  relative p95-latency slack
#   min_delta_p95_ms    absolute p95-latency floor in milliseconds
# p95 tolerances are looser than wall-time ones by default: a p95 over a
# handful of explain calls is a noisy order statistic, and the guard is
# after step changes (a new O(n) in the hot path), not scheduler jitter.
TOLERANCES: dict = {
    "E2_kernel_convergence": {},
    "E3_treeshap_speed": {},
    "E37_coalition_engine": {},
    "E38_fault_tolerance": {},
    # Pool spin-up cost varies with machine load; keep the absolute
    # floors a bit higher for the fork-heavy experiments.
    "E39_games_layer": {"min_delta_s": 1.0},
    "E40_process_backend": {"min_delta_s": 1.0, "min_delta_p95_ms": 1000.0},
    "E41_telemetry_overhead": {"min_delta_s": 1.0},
    "E42_amortized_batch": {"min_delta_s": 1.0},
    # Thread-scheduling latency under deliberate contention is noisy;
    # the load-bearing checks are the FLOORS ratios below.
    "E43_serve_load": {"min_delta_s": 1.0, "min_delta_p95_ms": 1000.0},
    "E44_persist": {"min_delta_s": 1.0},
    "E45_indexed_provenance": {"min_delta_s": 1.0},
}
GUARDED_EXPERIMENTS = tuple(TOLERANCES)

# Absolute floors on headline ratios published by the benchmarks into
# BENCH_summary.json (via conftest emit(summary=...)). Checked on the
# fresh summary only — no baseline needed — and skipped when the
# experiment (or the key) was not freshly run.
FLOORS: dict = {
    "E42_amortized_batch": {"sampling_speedup": 3.0, "tree_speedup": 3.0},
    # The serve layer's headline guarantees: hot-key p95 must stay ≥5×
    # better with coalescing+cache than without, and every request at
    # 4× overload must resolve (1.0 = zero hung requests).
    "E43_serve_load": {
        "hot_key_p95_improvement": 5.0,
        "overload_resolved_fraction": 1.0,
    },
    # A coalition-cache snapshot must make the repeat evaluation at
    # least 2× faster than the cold run (in practice it is orders of
    # magnitude: every mask answers from the snapshot, zero model rows).
    "E44_persist": {"prewarm_speedup": 2.0},
    # Interval-encoded lineage-support queries must stay ≥10× faster
    # than the naive per-root DAG walks at the largest scale (10^5 base
    # tuples; in practice the gap is three orders of magnitude).
    "E45_indexed_provenance": {"indexed_speedup": 10.0},
}
MAX_REGRESSION = 0.25
MIN_DELTA_S = 0.75
P95_MAX_REGRESSION = 0.50
MIN_DELTA_P95_MS = 500.0


def load_summary(path: str) -> dict:
    """The ``experiments`` mapping of a summary file ({} when unusable)."""
    try:
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, ValueError):
        return {}
    experiments = payload.get("experiments") if isinstance(payload, dict) else None
    return experiments if isinstance(experiments, dict) else {}


def regressions(
    baseline: dict,
    fresh: dict,
    experiments=GUARDED_EXPERIMENTS,
    max_regression: float = MAX_REGRESSION,
    min_delta_s: float = MIN_DELTA_S,
    p95_max_regression: float = P95_MAX_REGRESSION,
    min_delta_p95_ms: float = MIN_DELTA_P95_MS,
) -> list[str]:
    """Human-readable findings for every guarded experiment that slowed.

    Two checks per experiment, each gated by both a relative and an
    absolute tolerance (so noise on fast experiments cannot trip the
    guard): mean wall time (``wall_s``) and — when both sides recorded
    it — the p95 explain latency (``p95_ms``, from the quantile
    histograms). The :data:`TOLERANCES` table may tighten or loosen any
    knob per experiment.
    """
    found: list[str] = []
    for experiment in experiments:
        tolerance = TOLERANCES.get(experiment, {})
        base = baseline.get(experiment) or {}
        new = fresh.get(experiment) or {}
        base_wall = base.get("wall_s")
        new_wall = new.get("wall_s")
        max_reg = tolerance.get("max_regression", max_regression)
        if base_wall and new_wall and (
            new_wall > base_wall * (1.0 + max_reg)
            and new_wall - base_wall
            > tolerance.get("min_delta_s", min_delta_s)
        ):
            found.append(
                f"{experiment}: wall_s {base_wall:.3f} -> {new_wall:.3f} "
                f"(+{(new_wall / base_wall - 1.0) * 100.0:.0f}%, "
                f"limit +{max_reg * 100.0:.0f}%)"
            )
        base_p95 = base.get("p95_ms")
        new_p95 = new.get("p95_ms")
        p95_reg = tolerance.get("p95_max_regression", p95_max_regression)
        if base_p95 and new_p95 and (
            new_p95 > base_p95 * (1.0 + p95_reg)
            and new_p95 - base_p95
            > tolerance.get("min_delta_p95_ms", min_delta_p95_ms)
        ):
            found.append(
                f"{experiment}: p95_ms {base_p95:.1f} -> {new_p95:.1f} "
                f"(+{(new_p95 / base_p95 - 1.0) * 100.0:.0f}%, "
                f"limit +{p95_reg * 100.0:.0f}%)"
            )
    return found


def floor_shortfalls(fresh: dict, floors: dict | None = None) -> list[str]:
    """Headline ratios that fell below their absolute floor.

    Floors bind whenever the experiment was freshly run and recorded the
    keyed ratio; a missing experiment or key is skipped (the benchmarks
    are not part of tier-1), so this degrades exactly like the relative
    guard on checkouts that never ran the suite.
    """
    found: list[str] = []
    for experiment, keys in sorted((floors or FLOORS).items()):
        entry = fresh.get(experiment) or {}
        for key, floor in sorted(keys.items()):
            value = entry.get(key)
            if value is not None and value < floor:
                found.append(
                    f"{experiment}: {key} {value:.2f} below the "
                    f"{floor:.1f}x floor"
                )
    return found


def missing_baselines(baseline: dict, fresh: dict,
                      experiments=GUARDED_EXPERIMENTS) -> list[str]:
    """Guarded experiments with fresh timings but no committed baseline.

    These cannot be compared, so the guard skips them — but silently
    un-guarded experiments rot, so the caller warns about each one.
    """
    return [
        experiment
        for experiment in experiments
        if (fresh.get(experiment) or {}).get("wall_s")
        and not (baseline.get(experiment) or {}).get("wall_s")
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--fresh", default=DEFAULT_FRESH)
    parser.add_argument("--max-regression", type=float, default=MAX_REGRESSION)
    parser.add_argument("--min-delta-s", type=float, default=MIN_DELTA_S)
    parser.add_argument(
        "--experiments",
        default=",".join(GUARDED_EXPERIMENTS),
        help="comma-separated experiment ids to guard",
    )
    args = parser.parse_args(argv)
    experiments = [e for e in args.experiments.split(",") if e]
    baseline = load_summary(args.baseline)
    fresh = load_summary(args.fresh)
    for experiment in missing_baselines(baseline, fresh, experiments):
        sys.stderr.write(
            f"warning: {experiment} has fresh timings but no entry in "
            f"{args.baseline}; skipping the regression check — commit a "
            "baseline for it\n"
        )
    found = regressions(
        baseline,
        fresh,
        experiments=experiments,
        max_regression=args.max_regression,
        min_delta_s=args.min_delta_s,
    )
    found.extend(floor_shortfalls(fresh))
    if found:
        sys.stderr.write(
            "benchmark wall-time regressions vs committed baseline "
            f"({args.baseline}):\n"
        )
        for line in found:
            sys.stderr.write(f"  {line}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
