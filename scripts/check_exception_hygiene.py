#!/usr/bin/env python3
"""Lint: forbid silent exception swallowing in ``src/repro`` and ``tests``.

Two patterns are banned:

* bare ``except:`` — always, anywhere. It catches ``KeyboardInterrupt``
  and ``SystemExit`` along with everything else; there is no good use of
  it in library code.
* ``except Exception:`` / ``except BaseException:`` whose body does
  nothing (``pass`` / ``...``) — the failure mode that motivated the
  :mod:`repro.robust` layer: a model error silently becomes a wrong
  number. Handlers that re-raise, log, count (``obs.internal_errors``)
  or return a sentinel are fine; handlers that swallow are not.

Narrow except clauses (``except (TypeError, ValueError):``) may pass —
naming the types is the author demonstrating intent. One deliberate
exception site can be allowlisted with a trailing
``# hygiene: allow`` comment on the ``except`` line.

AST-based, so strings and comments cannot trip it. Exit status 0 when
clean, 1 with a ``path:line reason`` listing otherwise. With no
arguments both the library *and* the test suite are scanned — a test
that swallows the very failure it should assert on is how regressions
go unnoticed; any number of roots can be passed explicitly. Enforced in
tier-1 via ``tests/test_obs_lint_and_bench.py``, alongside
``check_no_print.py``.
"""

from __future__ import annotations

import ast
import os
import sys

ALLOW_MARKER = "# hygiene: allow"
_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Does the handler catch Exception/BaseException (possibly in a tuple)?"""
    node = handler.type
    names = node.elts if isinstance(node, ast.Tuple) else [node]
    for name in names:
        if isinstance(name, ast.Name) and name.id in _BROAD_NAMES:
            return True
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    """Is the handler body only ``pass`` / ``...`` statements?"""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


def find_violations(path: str) -> list[tuple[int, str]]:
    """``(line, reason)`` pairs for one Python file."""
    with open(path, encoding="utf-8") as f:
        source = f.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        line_text = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if ALLOW_MARKER in line_text:
            continue
        if node.type is None:
            out.append((node.lineno, "bare except:"))
        elif _is_broad(node) and _is_silent(node):
            out.append(
                (node.lineno, "except Exception with silent (pass-only) body")
            )
    return sorted(out)


def offenders(root: str) -> list[str]:
    """All ``path:line reason`` offences under ``root``."""
    out: list[str] = []
    for dirpath, __, filenames in sorted(os.walk(root)):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            out.extend(
                f"{path}:{line} {reason}"
                for line, reason in find_violations(path)
            )
    return out


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    roots = list(argv) if argv else [
        os.path.join(repo_root, "src", "repro"),
        os.path.join(repo_root, "tests"),
    ]
    found: list[str] = []
    for root in roots:
        found.extend(offenders(root))
    if found:
        sys.stderr.write(
            "silent exception handling found (narrow the except type, or "
            "count it via obs.internal_errors; see repro.robust):\n"
        )
        for offence in found:
            sys.stderr.write(f"  {offence}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
