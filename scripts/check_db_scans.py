#!/usr/bin/env python3
"""Lint: forbid naive ``Relation.rows`` scans in the db layer.

PR 10's indexed-provenance work only pays off if the db consumers
actually route through the planner: selections through access paths
(hash/sort indexes with residual filters), joins through the physical
join operators, lineage questions through the interval index. The
failure mode this lint guards against is the easy regression — a new
helper writing ``for i, row in enumerate(relation.rows): ...`` and
silently reintroducing the O(n) scan the planner was built to kill.

Detection is AST-based: any ``for`` loop or comprehension whose
iterable mentions a ``<something>.rows`` attribute is an offence,
including scans wrapped in ``enumerate``/``zip``/``sorted``/
``reversed``/``range(len(...))``. Three sanctioned escapes:

* the storage/planner layer itself — ``relation.py``, ``index.py`` and
  ``planner.py`` hold the physical operators and may scan freely;
* functions named ``legacy_*`` — the naive oracles kept forever for
  the differential tests; and
* a trailing ``# db: allow`` marker on the loop header or scan line,
  reserved for loops that are not selections at all (e.g. formatting
  every row of an already-reduced result).

Scope is ``src/repro/db`` only; tests, benchmarks and examples may
scan freely. Exit status 0 when clean, 1 with a ``path:line reason``
listing otherwise. Enforced in tier-1 via ``scripts/run_tier1.sh``.
"""

from __future__ import annotations

import ast
import os
import sys

ALLOW_MARKER = "# db: allow"

# The physical layer: these files *are* the sanctioned scan sites.
EXEMPT_FILES = {"relation.py", "index.py", "planner.py"}

_LOOPS = (ast.For, ast.AsyncFor)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _mentions_rows(node: ast.AST) -> int | None:
    """Line of the first ``<expr>.rows`` mention under ``node``, or None."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "rows":
            return sub.lineno
    return None


def _iter_scans(node: ast.AST):
    """``(header_line, scan_line)`` for each rows-iterating loop under
    ``node``, not descending into nested function definitions (those are
    visited with their own legacy/non-legacy context).
    """
    stack = [node]
    while stack:
        sub = stack.pop()
        if isinstance(sub, _FUNCTIONS):
            continue
        if isinstance(sub, _LOOPS):
            line = _mentions_rows(sub.iter)
            if line is not None:
                yield sub.lineno, line
        elif isinstance(sub, _COMPREHENSIONS):
            for generator in sub.generators:
                line = _mentions_rows(generator.iter)
                if line is not None:
                    yield sub.lineno, line
        stack.extend(ast.iter_child_nodes(sub))


def find_violations(path: str) -> list[tuple[int, str]]:
    """``(line, reason)`` pairs for one Python file."""
    with open(path, encoding="utf-8") as f:
        source = f.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()

    def allowed(line: int) -> bool:
        return line <= len(lines) and ALLOW_MARKER in lines[line - 1]

    out: set[tuple[int, str]] = set()

    def visit(node: ast.AST, in_legacy: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTIONS):
                visit(child, in_legacy or child.name.startswith("legacy_"))
                continue
            if not in_legacy:
                for header, line in _iter_scans(child):
                    if allowed(line) or allowed(header):
                        continue
                    out.add((
                        line,
                        "O(n) scan over Relation.rows "
                        f"(loop at line {header}); route selections and "
                        "joins through the planner / index layer, or "
                        "keep the naive path in a legacy_* oracle",
                    ))
                # _iter_scans stops at nested defs; recurse past this
                # statement only for the function defs inside it.
            visit(child, in_legacy)

    visit(tree, False)
    return sorted(out)


def offenders(root: str) -> list[str]:
    """All ``path:line reason`` offences under ``root``."""
    out: list[str] = []
    for dirpath, __, filenames in sorted(os.walk(root)):
        for name in sorted(filenames):
            if not name.endswith(".py") or name in EXEMPT_FILES:
                continue
            path = os.path.join(dirpath, name)
            out.extend(
                f"{path}:{line} {reason}"
                for line, reason in find_violations(path)
            )
    return out


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    default_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
        "repro",
        "db",
    )
    root = argv[0] if argv else default_root
    found = offenders(root)
    if found:
        sys.stderr.write(
            "naive Relation.rows scan found (use the planner / index "
            "layer, move the loop into a legacy_* oracle, or mark a "
            f"non-selection loop with `{ALLOW_MARKER}`):\n"
        )
        for offence in found:
            sys.stderr.write(f"  {offence}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
