"""JSON serialization for models and explanation objects.

Explanations are evidence: audits and user studies need them stored,
diffed and re-rendered long after the Python session is gone. This
module round-trips the library's explanation objects and its main models
through plain JSON (no pickle — artifacts stay inspectable and safe to
load).

Use :func:`dump_explanation` / :func:`load_explanation` for any of the
four explanation types, and :func:`dump_model` / :func:`load_model` for
the linear, logistic, tree, forest and boosting models.
"""

from __future__ import annotations

import json

import numpy as np

from .core.explanation import (
    CounterfactualExplanation,
    DataAttribution,
    FeatureAttribution,
    Predicate,
    RuleExplanation,
)
from .models.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from .models.forest import RandomForestClassifier
from .models.linear import LinearRegression, RidgeRegression
from .models.logistic import LogisticRegression
from .models.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeStructure

__all__ = [
    "dump_explanation",
    "load_explanation",
    "dump_model",
    "load_model",
]


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _restore(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value["dtype"])
        return {k: _restore(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_restore(v) for v in value]
    return value


# -- explanations --------------------------------------------------------------


def dump_explanation(explanation) -> str:
    """Serialize any explanation object to a JSON string."""
    if isinstance(explanation, FeatureAttribution):
        payload = {
            "type": "feature_attribution",
            "values": explanation.values.tolist(),
            "feature_names": explanation.feature_names,
            "base_value": explanation.base_value,
            "prediction": explanation.prediction,
            "method": explanation.method,
            "meta": _jsonable(explanation.meta),
        }
    elif isinstance(explanation, RuleExplanation):
        payload = {
            "type": "rule",
            "predicates": [
                [p.feature, p.op, p.value, p.feature_name]
                for p in explanation.predicates
            ],
            "outcome": explanation.outcome,
            "precision": explanation.precision,
            "coverage": explanation.coverage,
            "method": explanation.method,
            "meta": _jsonable(explanation.meta),
        }
    elif isinstance(explanation, CounterfactualExplanation):
        payload = {
            "type": "counterfactual",
            "factual": explanation.factual.tolist(),
            "counterfactuals": explanation.counterfactuals.tolist(),
            "factual_outcome": explanation.factual_outcome,
            "target_outcome": explanation.target_outcome,
            "feature_names": explanation.feature_names,
            "method": explanation.method,
            "meta": _jsonable(explanation.meta),
        }
    elif isinstance(explanation, DataAttribution):
        payload = {
            "type": "data_attribution",
            "values": explanation.values.tolist(),
            "method": explanation.method,
            "meta": _jsonable(explanation.meta),
        }
    else:
        raise TypeError(
            f"cannot serialize {type(explanation).__name__}"
        )
    return json.dumps(payload)


def load_explanation(text: str):
    """Inverse of :func:`dump_explanation`."""
    payload = json.loads(text)
    kind = payload.get("type")
    if kind == "feature_attribution":
        return FeatureAttribution(
            values=np.asarray(payload["values"], dtype=float),
            feature_names=list(payload["feature_names"]),
            base_value=payload["base_value"],
            prediction=payload["prediction"],
            method=payload["method"],
            meta=_restore(payload["meta"]),
        )
    if kind == "rule":
        return RuleExplanation(
            predicates=[
                Predicate(int(f), op, float(v), name)
                for f, op, v, name in payload["predicates"]
            ],
            outcome=payload["outcome"],
            precision=payload["precision"],
            coverage=payload["coverage"],
            method=payload["method"],
            meta=_restore(payload["meta"]),
        )
    if kind == "counterfactual":
        return CounterfactualExplanation(
            factual=np.asarray(payload["factual"], dtype=float),
            counterfactuals=np.asarray(payload["counterfactuals"], dtype=float),
            factual_outcome=payload["factual_outcome"],
            target_outcome=payload["target_outcome"],
            feature_names=list(payload["feature_names"]),
            method=payload["method"],
            meta=_restore(payload["meta"]),
        )
    if kind == "data_attribution":
        return DataAttribution(
            values=np.asarray(payload["values"], dtype=float),
            method=payload["method"],
            meta=_restore(payload["meta"]),
        )
    raise ValueError(f"unknown explanation payload type {kind!r}")


# -- models ------------------------------------------------------------------------


def _tree_to_dict(structure: TreeStructure) -> dict:
    return {
        "feature": list(structure.feature),
        "threshold": list(structure.threshold),
        "children_left": list(structure.children_left),
        "children_right": list(structure.children_right),
        "value": [v.tolist() for v in structure.value],
        "n_node_samples": list(structure.n_node_samples),
    }


def _tree_from_dict(payload: dict) -> TreeStructure:
    structure = TreeStructure()
    structure.feature = [int(v) for v in payload["feature"]]
    structure.threshold = [float(v) for v in payload["threshold"]]
    structure.children_left = [int(v) for v in payload["children_left"]]
    structure.children_right = [int(v) for v in payload["children_right"]]
    structure.value = [np.asarray(v, dtype=float) for v in payload["value"]]
    structure.n_node_samples = [float(v) for v in payload["n_node_samples"]]
    return structure


def dump_model(model) -> str:
    """Serialize a fitted model to a JSON string."""
    if isinstance(model, (RidgeRegression, LinearRegression)):
        payload = {
            "type": "ridge",
            "alpha": model.alpha,
            "coef": model.coef_.tolist(),
            "intercept": model.intercept_,
        }
    elif isinstance(model, LogisticRegression):
        payload = {
            "type": "logistic",
            "alpha": model.alpha,
            "coef": model.coef_.tolist(),
            "intercept": model.intercept_,
            "classes": _jsonable(list(model.classes_)),
        }
    elif isinstance(model, DecisionTreeClassifier):
        payload = {
            "type": "tree_classifier",
            "tree": _tree_to_dict(model.tree_),
            "classes": _jsonable(list(model.classes_)),
            "n_features": model.n_features_,
        }
    elif isinstance(model, DecisionTreeRegressor):
        payload = {
            "type": "tree_regressor",
            "tree": _tree_to_dict(model.tree_),
            "n_features": model.n_features_,
        }
    elif isinstance(model, RandomForestClassifier):
        payload = {
            "type": "forest",
            "classes": _jsonable(list(model.classes_)),
            "trees": [json.loads(dump_model(t)) for t in model.estimators_],
        }
    elif isinstance(model, (GradientBoostingClassifier, GradientBoostingRegressor)):
        payload = {
            "type": ("gbm_classifier"
                     if isinstance(model, GradientBoostingClassifier)
                     else "gbm_regressor"),
            "learning_rate": model.learning_rate,
            "init_raw": model.init_raw_,
            "stages": [json.loads(dump_model(t)) for t in model.estimators_],
        }
        if isinstance(model, GradientBoostingClassifier):
            payload["classes"] = _jsonable(list(model.classes_))
            payload["leaf_l2"] = model.leaf_l2
    else:
        raise TypeError(f"cannot serialize {type(model).__name__}")
    return json.dumps(payload)


def _load_model_payload(payload: dict):
    kind = payload["type"]
    if kind == "ridge":
        model = RidgeRegression(alpha=payload["alpha"])
        model.coef_ = np.asarray(payload["coef"], dtype=float)
        model.intercept_ = float(payload["intercept"])
        model._n_features = model.coef_.shape[0]
        return model
    if kind == "logistic":
        model = LogisticRegression(alpha=payload["alpha"])
        model.coef_ = np.asarray(payload["coef"], dtype=float)
        model.intercept_ = float(payload["intercept"])
        model.classes_ = np.asarray(payload["classes"])
        model._n_features = model.coef_.shape[0]
        return model
    if kind == "tree_classifier":
        model = DecisionTreeClassifier()
        model.tree_ = _tree_from_dict(payload["tree"])
        model.classes_ = np.asarray(payload["classes"])
        model.n_classes_ = len(model.classes_)
        model.n_features_ = payload["n_features"]
        return model
    if kind == "tree_regressor":
        model = DecisionTreeRegressor()
        model.tree_ = _tree_from_dict(payload["tree"])
        model.n_features_ = payload["n_features"]
        return model
    if kind == "forest":
        model = RandomForestClassifier()
        model.classes_ = np.asarray(payload["classes"])
        model.estimators_ = [
            _load_model_payload(t) for t in payload["trees"]
        ]
        return model
    if kind in ("gbm_classifier", "gbm_regressor"):
        if kind == "gbm_classifier":
            model = GradientBoostingClassifier(
                learning_rate=payload["learning_rate"],
                leaf_l2=payload["leaf_l2"],
            )
            model.classes_ = np.asarray(payload["classes"])
        else:
            model = GradientBoostingRegressor(
                learning_rate=payload["learning_rate"]
            )
        model.init_raw_ = float(payload["init_raw"])
        model.estimators_ = [
            _load_model_payload(t) for t in payload["stages"]
        ]
        return model
    raise ValueError(f"unknown model payload type {kind!r}")


def load_model(text: str):
    """Inverse of :func:`dump_model`."""
    return _load_model_payload(json.loads(text))
