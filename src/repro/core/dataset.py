"""Tabular dataset abstraction shared by every explainer in the library.

A :class:`TabularDataset` bundles a numeric feature matrix with the metadata
explainers need but raw arrays lack: feature names, which columns are
categorical, per-column value domains, and summary statistics used by
perturbation-based methods (LIME, SHAP, counterfactual search).

Categorical features are stored *encoded* as small integers; the
:class:`FeatureSpec` for the column remembers the category labels so
explanations can be rendered in human terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FeatureSpec", "TabularDataset"]


@dataclass(frozen=True)
class FeatureSpec:
    """Schema entry for one column of a :class:`TabularDataset`.

    Parameters
    ----------
    name:
        Human-readable column name (``"age"``, ``"income"``).
    kind:
        ``"numeric"`` or ``"categorical"``.
    categories:
        For categorical columns, the label of each encoded integer value;
        ``categories[v]`` renders encoded value ``v``. Empty for numeric.
    actionable:
        Whether recourse/counterfactual search may change this feature.
        Immutable attributes (e.g. birthplace) should set this to ``False``.
    monotone:
        Direction counterfactual search may move a numeric feature:
        ``0`` unrestricted, ``+1`` may only increase, ``-1`` only decrease.
        Education is a classic +1 example: recourse cannot ask a user to
        un-earn a degree.
    """

    name: str
    kind: str = "numeric"
    categories: tuple[str, ...] = ()
    actionable: bool = True
    monotone: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("numeric", "categorical"):
            raise ValueError(f"unknown feature kind {self.kind!r}")
        if self.kind == "categorical" and not self.categories:
            raise ValueError(f"categorical feature {self.name!r} needs categories")
        if self.monotone not in (-1, 0, 1):
            raise ValueError("monotone must be -1, 0 or +1")

    @property
    def is_categorical(self) -> bool:
        return self.kind == "categorical"

    def render(self, value: float) -> str:
        """Format an encoded cell value as a human-readable string."""
        if self.is_categorical:
            return self.categories[int(value)]
        return f"{value:.4g}"


class TabularDataset:
    """A feature matrix, target vector and column schema.

    Parameters
    ----------
    X:
        Feature matrix of shape ``(n_samples, n_features)``. Categorical
        columns hold integer codes.
    y:
        Target vector of shape ``(n_samples,)``; class labels for
        classification or real values for regression.
    features:
        One :class:`FeatureSpec` per column. Plain strings are promoted to
        numeric specs.
    target_name:
        Name of the target column, used when rendering explanations.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        features: list[FeatureSpec | str] | None = None,
        target_name: str = "outcome",
    ) -> None:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape[0] != X.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if features is None:
            features = [f"x{i}" for i in range(X.shape[1])]
        if len(features) != X.shape[1]:
            raise ValueError(
                f"{len(features)} feature specs for {X.shape[1]} columns"
            )
        self.X = X
        self.y = y
        self.features = [
            f if isinstance(f, FeatureSpec) else FeatureSpec(name=f)
            for f in features
        ]
        self.target_name = target_name

    # -- basic protocol ----------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def feature_names(self) -> list[str]:
        return [f.name for f in self.features]

    def __len__(self) -> int:
        return self.n_samples

    def __repr__(self) -> str:
        return (
            f"TabularDataset(n_samples={self.n_samples}, "
            f"n_features={self.n_features}, target={self.target_name!r})"
        )

    # -- schema helpers -----------------------------------------------------

    def feature_index(self, name: str) -> int:
        """Return the column index of the feature called ``name``."""
        for i, spec in enumerate(self.features):
            if spec.name == name:
                return i
        raise KeyError(f"no feature named {name!r}")

    @property
    def categorical_indices(self) -> list[int]:
        return [i for i, f in enumerate(self.features) if f.is_categorical]

    @property
    def numeric_indices(self) -> list[int]:
        return [i for i, f in enumerate(self.features) if not f.is_categorical]

    # -- statistics used by perturbation-based explainers --------------------

    def column_stats(self) -> dict[str, np.ndarray]:
        """Per-column mean/std (numeric) and category frequencies.

        Returns a dict with ``mean`` and ``std`` arrays (std floored at a
        tiny epsilon so degenerate constant columns never divide by zero)
        plus ``frequencies``, a list indexed by column that is ``None`` for
        numeric columns and an empirical category distribution otherwise.
        """
        mean = self.X.mean(axis=0)
        std = np.maximum(self.X.std(axis=0), 1e-12)
        frequencies: list[np.ndarray | None] = []
        for i, spec in enumerate(self.features):
            if spec.is_categorical:
                counts = np.bincount(
                    self.X[:, i].astype(int), minlength=len(spec.categories)
                ).astype(float)
                frequencies.append(counts / counts.sum())
            else:
                frequencies.append(None)
        return {"mean": mean, "std": std, "frequencies": frequencies}

    # -- slicing -------------------------------------------------------------

    def subset(self, indices: np.ndarray) -> "TabularDataset":
        """Return a new dataset containing only the given row indices."""
        indices = np.asarray(indices)
        return TabularDataset(
            self.X[indices], self.y[indices], list(self.features), self.target_name
        )

    def drop(self, indices: np.ndarray) -> "TabularDataset":
        """Return a new dataset with the given row indices removed."""
        mask = np.ones(self.n_samples, dtype=bool)
        mask[np.asarray(indices)] = False
        return TabularDataset(
            self.X[mask], self.y[mask], list(self.features), self.target_name
        )

    def render_row(self, row: np.ndarray) -> dict[str, str]:
        """Render one feature vector as ``{name: human-readable value}``."""
        row = np.asarray(row).ravel()
        return {
            spec.name: spec.render(value)
            for spec, value in zip(self.features, row)
        }
