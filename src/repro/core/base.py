"""Explainer base classes and the black-box model protocol.

The library is model-agnostic at its boundaries: explainers accept either a
plain callable ``f(X) -> outputs`` or any model from :mod:`repro.models`.
:func:`as_predict_fn` normalizes both to a single calling convention, and
chooses the probability of the positive class for classifiers so that every
attribution method explains a real-valued output in ``[0, 1]``.

Every normalized predict function carries two layers:

* the :mod:`repro.obs` model-eval meter — each invocation is counted
  (calls and batched rows) and attributed to the innermost open span,
  which is how ``explain()`` spans learn their model-query cost;
* the :mod:`repro.robust` guard, composed directly above the meter —
  output shape/finiteness validation, capped-exponential retry of
  transient failures, and per-explanation deadlines and model-query
  budgets (``REPRO_RETRIES`` / ``REPRO_BACKOFF`` / ``REPRO_DEADLINE_S``
  / ``REPRO_QUERY_BUDGET``). Pass ``guard=False`` to opt a predict
  function out, or a :class:`repro.robust.GuardConfig` to tune it.

Subclassing :class:`Explainer` auto-instruments ``explain`` /
``explain_batch`` with spans *and* wraps them in a fresh guard scope, so
budgets are per explanation (each row of a batch budgets independently,
including on the thread-pool path). ``explain_batch`` degrades
gracefully: per-row failures are captured, completed rows survive, and
the caller gets them back either via ``return_errors=True`` or on the
:class:`repro.robust.PartialBatchError` raised by default.
"""

from __future__ import annotations

import contextvars
import functools
import os
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from ..exec import map_shards, plan_shards, resolve_backend, resolve_n_procs
from ..obs import metrics
from ..obs.instrument import instrument_explainer
from ..obs.metrics import meter_predict_fn
from ..obs.trace import current_span
from ..robust.errors import BatchRowError, InputValidationError, PartialBatchError
from ..robust.guard import (
    GuardConfig,
    guard_predict_fn,
    guard_scope,
    resolve_deadline_s,
    resolve_query_budget,
)
from .explanation import FeatureAttribution

__all__ = ["as_predict_fn", "Explainer", "AttributionExplainer", "resolve_n_jobs"]

_ROWS_FAILED = "robust.rows_failed"
_PLAN_FALLBACKS = "coalition.plan.fallbacks"


def _budgets_configured(guard) -> bool:
    """Whether a guard deadline or model-query budget is in force.

    The amortized batch path evaluates many rows inside one guard
    scope, which would silently convert per-*row* budgets into a
    per-*batch* budget; explainers with an active deadline or query
    budget therefore keep the per-row loop, whose scope-per-row
    semantics the robust tests pin down.
    """
    cfg = guard if isinstance(guard, GuardConfig) else None
    return (
        resolve_deadline_s(cfg.deadline_s if cfg else None) is not None
        or resolve_query_budget(cfg.query_budget if cfg else None) is not None
    )


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Worker count for ``explain_batch``: param > ``REPRO_N_JOBS`` > 1.

    ``-1`` (either source) means "all cores". Parallelism stays off unless
    explicitly requested — serial is the correctness baseline and the
    right default for the common small-batch case.
    """
    if n_jobs is None:
        env = os.environ.get("REPRO_N_JOBS", "").strip()
        if not env:
            return 1
        try:
            n_jobs = int(env)
        except ValueError:
            return 1
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        n_jobs = os.cpu_count() or 1
    return max(1, n_jobs)

PredictFn = Callable[[np.ndarray], np.ndarray]


def as_predict_fn(model, output: str = "auto",
                  guard: GuardConfig | None | bool = None) -> PredictFn:
    """Normalize a model or callable to ``f(X) -> 1-D float array``.

    Parameters
    ----------
    model:
        A callable, or an object exposing ``predict_proba`` / ``predict``.
    output:
        * ``"auto"`` — ``predict_proba[:, 1]`` when available, else
          ``predict``;
        * ``"proba"`` — require ``predict_proba[:, 1]``;
        * ``"label"`` — hard ``predict`` labels;
        * ``"raw"`` — require ``decision_function`` / raw margin.
    guard:
        ``None`` (default) installs the :mod:`repro.robust` guard with
        environment-driven settings; a :class:`GuardConfig` tunes it;
        ``False`` skips guarding (meter only).

    The returned function is wrapped with the :mod:`repro.obs` model-eval
    meter and the robust guard (both idempotently — re-normalizing a
    metered or guarded function does not double-count or double-guard).
    """
    if getattr(model, "__repro_guarded__", False):
        return model
    if getattr(model, "__repro_metered__", False):
        return guard_predict_fn(model, guard)

    if callable(model) and not hasattr(model, "predict"):
        fn = lambda X: np.asarray(model(np.atleast_2d(X)), dtype=float).ravel()
    elif output == "label":
        fn = lambda X: np.asarray(
            model.predict(np.atleast_2d(X)), dtype=float
        ).ravel()
    elif output == "raw":
        if not hasattr(model, "decision_function"):
            raise TypeError(f"{type(model).__name__} has no decision_function")
        fn = lambda X: np.asarray(
            model.decision_function(np.atleast_2d(X)), dtype=float
        ).ravel()
    elif hasattr(model, "predict_proba") and output in ("auto", "proba"):
        def fn(X: np.ndarray) -> np.ndarray:
            p = np.asarray(model.predict_proba(np.atleast_2d(X)), dtype=float)
            return p[:, 1] if p.ndim == 2 else p.ravel()
    elif output == "proba":
        raise TypeError(f"{type(model).__name__} has no predict_proba")
    else:
        fn = lambda X: np.asarray(
            model.predict(np.atleast_2d(X)), dtype=float
        ).ravel()
    wrapped = guard_predict_fn(meter_predict_fn(fn), guard)
    # Rebuild recipe for pickle-free transport: the spawn backend and the
    # persist layer reconstruct an equivalent predict function from the
    # underlying model rather than pickling the closure stack.
    wrapped.__repro_spec__ = {"model": model, "output": output, "guard": guard}
    return wrapped


def _scope_wrap(fn):
    """Open a fresh per-explanation guard scope around an entry point."""

    @functools.wraps(fn)
    def scoped(self, *args, **kwargs):
        with guard_scope(getattr(self, "guard_config", None)):
            return fn(self, *args, **kwargs)

    scoped.__repro_guard_scoped__ = True
    return scoped


class Explainer(ABC):
    """Common base: wraps a model into a normalized prediction function.

    Subclasses are automatically instrumented: their own ``explain`` /
    ``explain_batch`` definitions are wrapped in :mod:`repro.obs` spans
    carrying the explainer name, input width, wall time and model-eval
    counters — and in a :func:`repro.robust.guard_scope`, so deadlines
    and query budgets reset per explanation.
    """

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        instrument_explainer(cls)
        for name in ("explain", "explain_batch"):
            fn = cls.__dict__.get(name)
            if fn is None:
                continue
            if getattr(fn, "__repro_guard_scoped__", False):
                continue
            if getattr(fn, "__isabstractmethod__", False):
                continue
            if isinstance(fn, (staticmethod, classmethod)):
                continue
            setattr(cls, name, _scope_wrap(fn))

    def __init__(self, model, output: str = "auto",
                 guard: GuardConfig | None | bool = None) -> None:
        self.model = model
        self.guard_config = guard
        self.predict_fn = as_predict_fn(model, output, guard=guard)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """The normalized model output being explained."""
        return self.predict_fn(X)


class AttributionExplainer(Explainer):
    """Base for explainers that return :class:`FeatureAttribution`."""

    method_name = "attribution"

    @abstractmethod
    def explain(self, x: np.ndarray, **kwargs) -> FeatureAttribution:
        """Explain the model output at a single instance ``x``."""

    def explain_batch(
        self,
        X: np.ndarray,
        n_jobs: int | None = None,
        return_errors: bool = False,
        backend: str | None = None,
        n_procs: int | None = None,
        **kwargs,
    ) -> list[FeatureAttribution] | tuple[list, list[BatchRowError]]:
        """Explain every row of ``X``, surviving per-row failures.

        ``n_jobs`` (or env ``REPRO_N_JOBS``; default 1 = serial) sizes a
        ``concurrent.futures`` thread pool. Each instance runs under a
        copy of the submitting context, so per-instance ``explain`` spans
        keep the batch span as parent, eval counters roll up exactly as
        in the serial path, and each row gets its own guard scope;
        results are returned in row order.

        ``backend`` (or env ``REPRO_BACKEND``; see :mod:`repro.exec`)
        selects the execution backend instead: ``"thread"`` is the pool
        above sized by ``n_procs``, ``"process"`` shards contiguous row
        ranges across forked workers. Worker rows re-raise per-row
        failures through the same :class:`BatchRowError` channel (a dead
        worker fails its shard's rows, never hangs the batch), worker
        spans re-parent under this call's batch span, and worker-side
        ``model.*`` / ``robust.*`` counters merge into the parent
        snapshot on join. ``backend`` takes precedence over ``n_jobs``
        when both request parallelism.

        Failure semantics (serial and parallel paths behave identically):
        one poisoned row no longer discards the completed ones. With
        ``return_errors=True`` the call returns ``(results, errors)`` —
        ``results`` has ``None`` at failed positions, ``errors`` is a
        list of :class:`repro.robust.BatchRowError` records. With the
        default ``return_errors=False`` a clean batch returns the plain
        result list, and any failure raises
        :class:`repro.robust.PartialBatchError` carrying the same
        partial results. Failed rows increment ``robust.rows_failed``.

        Amortization: explainers implementing the ``_amortized_context``
        / ``_amortized_rows`` hook pair (the sampling/kernel/QII/
        conditional SHAP family) serve the whole batch from one shared
        :class:`repro.games.plan.CoalitionPlan` — bitwise-identical
        seeded attributions without per-row re-sampling. The fused path
        is skipped in favour of the per-row loop (``amortized=False`` on
        the batch span) when ``REPRO_BATCH_PLAN=0``, when the batch has
        a single row, when extra ``explain`` kwargs beyond
        ``feature_names`` are passed, or when guard deadlines/query
        budgets are configured (those are per-row semantics the fused
        path cannot honour); a mid-fuse failure increments
        ``coalition.plan.fallbacks`` and falls back to the loop.
        """
        try:
            X = np.atleast_2d(np.asarray(X, dtype=float))
        except (TypeError, ValueError) as e:
            raise InputValidationError(
                f"X is not convertible to a float matrix: {e}"
            ) from e
        if X.size == 0:
            raise InputValidationError(
                f"explain_batch needs a non-empty batch, got shape {X.shape}"
            )
        backend_name = resolve_backend(backend)
        n_jobs = resolve_n_jobs(n_jobs)
        if backend_name == "thread":
            n_jobs = max(n_jobs, resolve_n_procs(n_procs))

        results = self._try_amortized(X, backend_name, n_jobs, n_procs, kwargs)
        if results is not None:
            return (results, []) if return_errors else results

        def run_row(i: int, x: np.ndarray):
            try:
                return self.explain(x, **kwargs), None
            except Exception as e:
                return None, BatchRowError(index=i, error=e)

        if backend_name in ("process", "spawn") and X.shape[0] >= 2:
            outcomes = self._run_batch_process(
                X, run_row, n_procs, backend=backend_name
            )
        elif n_jobs == 1 or X.shape[0] <= 1:
            outcomes = [run_row(i, x) for i, x in enumerate(X)]
        else:
            with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                futures = [
                    pool.submit(contextvars.copy_context().run, run_row, i, x)
                    for i, x in enumerate(X)
                ]
                outcomes = [f.result() for f in futures]
        results = [res for res, __ in outcomes]
        errors = [err for __, err in outcomes if err is not None]
        if errors:
            metrics.counter(_ROWS_FAILED).inc(len(errors))
        if return_errors:
            return results, errors
        if errors:
            raise PartialBatchError(partial=results, errors=errors)
        return results

    def _try_amortized(self, X, backend_name, n_jobs, n_procs, kwargs):
        """Run the shared-plan batch path if eligible, else ``None``.

        Eligibility gates keep the fused path strictly
        behaviour-preserving; any exception inside it counts a
        ``coalition.plan.fallbacks`` and yields the per-row loop. The
        ambient batch span gets an ``amortized`` attribute either way.
        """
        # Deferred import: repro.games imports the engine/exec layers at
        # package-init time, so a module-level import here would cycle.
        from ..games.plan import resolve_batch_plan

        amortized = False
        results = None
        if (
            X.shape[0] >= 2
            and hasattr(self, "_amortized_rows")
            and set(kwargs) <= {"feature_names"}
            and resolve_batch_plan()
            and self._amortized_supported()
            and not _budgets_configured(self.guard_config)
        ):
            try:
                results = self._run_amortized(
                    X, backend_name, n_jobs, n_procs, **kwargs
                )
                amortized = True
            except Exception:
                metrics.counter(_PLAN_FALLBACKS).inc()
                results = None
        sp = current_span()
        if sp is not None:
            sp.set_attr("amortized", amortized)
        return results

    def _amortized_supported(self) -> bool:
        """Explainer-specific veto for the amortized path (default: on)."""
        return True

    def _run_amortized(self, X, backend_name, n_jobs, n_procs, **kwargs):
        """Shared-plan batch execution: one context, row-sharded evaluation.

        ``_amortized_context`` builds everything row-independent (the
        coalition plan, precomputed structures) parent-side exactly
        once; ``_amortized_rows`` then evaluates a contiguous row range
        against it. On the process backend the context ships to forked
        workers via copy-on-write memory — once per worker, not per
        shard — and the thread backend shares it in-process.
        """
        ctx = self._amortized_context(X, **kwargs)
        n_rows = X.shape[0]
        if backend_name == "serial" and n_jobs > 1:
            backend_name = "thread"
            workers = n_jobs
        elif backend_name != "serial":
            workers = max(resolve_n_procs(n_procs), n_jobs)
        else:
            workers = 1
        if backend_name == "serial" or workers < 2:
            return self._amortized_rows(X, 0, n_rows, ctx, **kwargs)
        plan = plan_shards(n_rows, workers)
        if plan.n_shards < 2:
            return self._amortized_rows(X, 0, n_rows, ctx, **kwargs)

        def run_shard(bounds):
            lo, hi = bounds
            return self._amortized_rows(X, lo, hi, ctx, **kwargs)

        outcomes = map_shards(
            run_shard, list(plan.slices), backend=backend_name,
            n_procs=workers, split_scope=False,
        )
        results = []
        for outcome in outcomes:
            if not outcome.ok:
                raise outcome.error
            results.extend(outcome.value)
        return results

    def _run_batch_process(self, X, run_row, n_procs, backend="process"):
        """Row-sharded ``explain_batch`` over worker processes.

        Each shard is a contiguous row range; workers ship back, per
        row, either the explanation or a JSON-safe error record (live
        exception objects do not reliably cross the pickle boundary).
        ``split_scope=False`` because budgets here are per *row*, not
        per batch: each ``explain`` call opens its own guard scope in
        the worker exactly as it does serially. Under ``spawn`` the
        row closure cannot pickle, so :func:`repro.exec.map_shards`
        degrades it to the thread pool — same results, shared memory.
        """
        plan = plan_shards(X.shape[0], resolve_n_procs(n_procs))

        def run_shard(bounds):
            lo, hi = bounds
            out = []
            for i in range(lo, hi):
                res, err = run_row(i, X[i])
                out.append((res, None if err is None else err.to_dict()))
            return out

        shard_args = list(plan.slices)
        shard_outcomes = map_shards(
            run_shard, shard_args, backend=backend,
            n_procs=n_procs, split_scope=False,
        )
        outcomes = []
        for (lo, hi), outcome in zip(shard_args, shard_outcomes):
            if not outcome.ok:
                # The whole shard died (worker crash / broken pool):
                # every row in it is reported failed, rows elsewhere
                # survive — same contract as a poisoned row.
                outcomes.extend(
                    (None, BatchRowError(index=i, error=outcome.error))
                    for i in range(lo, hi)
                )
                continue
            for res, err in outcome.value:
                if err is None:
                    outcomes.append((res, None))
                else:
                    exc = type(err["error_type"], (Exception,), {})(
                        err["message"]
                    )
                    outcomes.append(
                        (None, BatchRowError(index=err["index"], error=exc))
                    )
        return outcomes
