"""Explainer base classes and the black-box model protocol.

The library is model-agnostic at its boundaries: explainers accept either a
plain callable ``f(X) -> outputs`` or any model from :mod:`repro.models`.
:func:`as_predict_fn` normalizes both to a single calling convention, and
chooses the probability of the positive class for classifiers so that every
attribution method explains a real-valued output in ``[0, 1]``.

Every normalized predict function carries the :mod:`repro.obs` model-eval
meter: each invocation is counted (calls and batched rows) and attributed
to the innermost open span, which is how ``explain()`` spans learn their
model-query cost. Subclassing :class:`Explainer` auto-instruments
``explain`` / ``explain_batch`` with spans — concrete explainers get
telemetry with zero local code.
"""

from __future__ import annotations

import contextvars
import os
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from ..obs.instrument import instrument_explainer
from ..obs.metrics import meter_predict_fn
from .explanation import FeatureAttribution

__all__ = ["as_predict_fn", "Explainer", "AttributionExplainer", "resolve_n_jobs"]


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Worker count for ``explain_batch``: param > ``REPRO_N_JOBS`` > 1.

    ``-1`` (either source) means "all cores". Parallelism stays off unless
    explicitly requested — serial is the correctness baseline and the
    right default for the common small-batch case.
    """
    if n_jobs is None:
        env = os.environ.get("REPRO_N_JOBS", "").strip()
        if not env:
            return 1
        try:
            n_jobs = int(env)
        except ValueError:
            return 1
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        n_jobs = os.cpu_count() or 1
    return max(1, n_jobs)

PredictFn = Callable[[np.ndarray], np.ndarray]


def as_predict_fn(model, output: str = "auto") -> PredictFn:
    """Normalize a model or callable to ``f(X) -> 1-D float array``.

    Parameters
    ----------
    model:
        A callable, or an object exposing ``predict_proba`` / ``predict``.
    output:
        * ``"auto"`` — ``predict_proba[:, 1]`` when available, else
          ``predict``;
        * ``"proba"`` — require ``predict_proba[:, 1]``;
        * ``"label"`` — hard ``predict`` labels;
        * ``"raw"`` — require ``decision_function`` / raw margin.

    The returned function is wrapped with the :mod:`repro.obs` model-eval
    meter (idempotently — re-normalizing a metered function does not
    double-count).
    """
    if getattr(model, "__repro_metered__", False):
        return model

    if callable(model) and not hasattr(model, "predict"):
        fn = lambda X: np.asarray(model(np.atleast_2d(X)), dtype=float).ravel()
        return meter_predict_fn(fn)

    if output == "label":
        fn = lambda X: np.asarray(
            model.predict(np.atleast_2d(X)), dtype=float
        ).ravel()
        return meter_predict_fn(fn)
    if output == "raw":
        if not hasattr(model, "decision_function"):
            raise TypeError(f"{type(model).__name__} has no decision_function")
        fn = lambda X: np.asarray(
            model.decision_function(np.atleast_2d(X)), dtype=float
        ).ravel()
        return meter_predict_fn(fn)
    if hasattr(model, "predict_proba") and output in ("auto", "proba"):
        def proba_fn(X: np.ndarray) -> np.ndarray:
            p = np.asarray(model.predict_proba(np.atleast_2d(X)), dtype=float)
            return p[:, 1] if p.ndim == 2 else p.ravel()

        return meter_predict_fn(proba_fn)
    if output == "proba":
        raise TypeError(f"{type(model).__name__} has no predict_proba")
    fn = lambda X: np.asarray(model.predict(np.atleast_2d(X)), dtype=float).ravel()
    return meter_predict_fn(fn)


class Explainer(ABC):
    """Common base: wraps a model into a normalized prediction function.

    Subclasses are automatically instrumented: their own ``explain`` /
    ``explain_batch`` definitions are wrapped in :mod:`repro.obs` spans
    carrying the explainer name, input width, wall time and model-eval
    counters.
    """

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        instrument_explainer(cls)

    def __init__(self, model, output: str = "auto") -> None:
        self.model = model
        self.predict_fn = as_predict_fn(model, output)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """The normalized model output being explained."""
        return self.predict_fn(X)


class AttributionExplainer(Explainer):
    """Base for explainers that return :class:`FeatureAttribution`."""

    method_name = "attribution"

    @abstractmethod
    def explain(self, x: np.ndarray, **kwargs) -> FeatureAttribution:
        """Explain the model output at a single instance ``x``."""

    def explain_batch(
        self, X: np.ndarray, n_jobs: int | None = None, **kwargs
    ) -> list[FeatureAttribution]:
        """Explain every row of ``X``, optionally fanning out over threads.

        ``n_jobs`` (or env ``REPRO_N_JOBS``; default 1 = serial) sizes a
        ``concurrent.futures`` thread pool. Each instance runs under a
        copy of the submitting context, so per-instance ``explain`` spans
        keep the batch span as parent and eval counters roll up exactly
        as in the serial path; results are returned in row order.
        """
        X = np.atleast_2d(X)
        n_jobs = resolve_n_jobs(n_jobs)
        if n_jobs == 1 or X.shape[0] <= 1:
            return [self.explain(x, **kwargs) for x in X]
        with ThreadPoolExecutor(max_workers=n_jobs) as pool:
            futures = [
                pool.submit(contextvars.copy_context().run, self.explain, x, **kwargs)
                for x in X
            ]
            return [f.result() for f in futures]
