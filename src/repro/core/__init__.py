"""Core abstractions: datasets, explanation objects, samplers, base classes."""

from .base import AttributionExplainer, Explainer, as_predict_fn
from .dataset import FeatureSpec, TabularDataset
from .explanation import (
    CounterfactualExplanation,
    DataAttribution,
    FeatureAttribution,
    Predicate,
    RuleExplanation,
)
from .coalition_engine import (
    CoalitionEngine,
    CoalitionValueCache,
    batched_predict,
    broadcast_expand,
    legacy_expand,
)
from .sampling import GaussianPerturber, MaskingSampler

__all__ = [
    "CoalitionEngine",
    "CoalitionValueCache",
    "batched_predict",
    "broadcast_expand",
    "legacy_expand",
    "AttributionExplainer",
    "Explainer",
    "as_predict_fn",
    "FeatureSpec",
    "TabularDataset",
    "FeatureAttribution",
    "Predicate",
    "RuleExplanation",
    "CounterfactualExplanation",
    "DataAttribution",
    "GaussianPerturber",
    "MaskingSampler",
]
