"""Shared coalition-evaluation engine for Shapley-family explainers.

Every coalition-based explainer in the library reduces to the same hot
loop: given an instance ``x``, a background sample, and a batch of binary
coalition masks, materialize ``n_coalitions × n_background`` hybrid rows,
push them through the black-box predict function, and average each
coalition's block into one value ``v(S)``. The tutorial's cost axis for
post-hoc explainers is exactly this model-query bill, and the meters in
:mod:`repro.obs` made it visible; this module makes it cheap:

* **Broadcast masking** — one ``np.where(coalitions[:, None, :], x,
  background)`` replaces the per-coalition Python loop that used to live
  in ``MaskingSampler.expand``.
* **Memory-bounded chunking** — ``max_batch_rows`` (env
  ``REPRO_MAX_BATCH_ROWS``) splits huge coalition×background blocks into
  bounded predict-fn calls instead of one giant allocation; the chunk
  geometry is surfaced on the ``coalition_eval`` span.
* **Coalition-value caching** — identical masks are deduplicated within
  and across calls via packed-bit keys, so paired/antithetic permutation
  walks and the fully-enumerated small sizes of Kernel SHAP never pay
  for the same ``v(S)`` twice. Hits/misses are exported through
  ``repro.obs.metrics`` as ``coalition.cache.hits`` / ``.misses``.

The cache is only correct when the value function is a *deterministic*
function of the mask — true for the interventional masking game (no
randomness after background subsampling) and the empirical-conditional
game, false for stochastic value functions that consume fresh random
draws per evaluation (e.g. QII's factorized interventions). Those callers
must pass ``cache=False`` (or use :func:`batched_predict` directly) so
repeated masks keep their independent draws.

Fault tolerance: each chunk's guarded predict call is retried at the
chunk level (``chunk_retries``) when the guard gives up, and failed
evaluations are **never committed** to the value cache — cache writes
happen only after a chunk's values come back clean, so a poisoned chunk
cannot leave corrupt ``v(S)`` entries behind for later calls to reuse.

The pre-engine evaluation path (per-coalition loop expand, one unchunked
predict call, no cache) is preserved as :func:`legacy_expand` /
:meth:`CoalitionEngine.legacy_value_function` so E37 can benchmark
old-vs-new at equal coalition budget and the regression tests can assert
bitwise-identical expansions.
"""

from __future__ import annotations

import base64
import os
from typing import Callable

import numpy as np

from ..obs import metrics
from ..obs.trace import span
from ..persist.errors import PayloadError
from ..persist.protocol import register_serializable
from ..robust.errors import ModelEvaluationError

__all__ = [
    "DEFAULT_MAX_BATCH_ROWS",
    "resolve_max_batch_rows",
    "resolve_cache",
    "broadcast_expand",
    "legacy_expand",
    "batched_predict",
    "CoalitionValueCache",
    "CoalitionEngine",
]

DEFAULT_MAX_BATCH_ROWS = 65_536
DEFAULT_CHUNK_RETRIES = 1

_HITS = "coalition.cache.hits"
_MISSES = "coalition.cache.misses"
_CHUNK_RETRIES = "robust.chunk_retries"


def resolve_max_batch_rows(value: int | None = None) -> int:
    """The per-predict-call row bound: explicit value > env > default.

    ``REPRO_MAX_BATCH_ROWS`` lets deployments cap the transient
    coalition×background allocation without touching call sites.
    """
    if value is not None:
        return max(1, int(value))
    env = os.environ.get("REPRO_MAX_BATCH_ROWS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return DEFAULT_MAX_BATCH_ROWS


def resolve_cache(value: bool = True) -> bool:
    """Whether coalition-value caching is enabled.

    ``REPRO_COALITION_CACHE=0`` (or ``false``/``off``/``no``; CLI flag
    ``--no-coalition-cache``) force-disables every coalition value cache
    in the process — the A/B lever benchmarks and cache-suspicion
    debugging sessions need. An explicit ``value=False`` at a call site
    always wins; the env var can only turn caching *off*, never on for
    a caller that opted out (stochastic games stay uncached).
    """
    if not value:
        return False
    env = os.environ.get("REPRO_COALITION_CACHE", "").strip().lower()
    return env not in ("0", "false", "off", "no")


def broadcast_expand(
    x: np.ndarray, coalitions: np.ndarray, background: np.ndarray
) -> np.ndarray:
    """Materialize coalition rows against the whole background, vectorized.

    Returns shape ``(n_coalitions * n_background, d)``: for each
    coalition, one copy of every background row with present features
    overwritten by the instance's values. Block layout (all background
    rows of coalition 0, then coalition 1, …) matches the historical
    ``MaskingSampler.expand`` exactly.
    """
    x = np.asarray(x, dtype=float).ravel()
    coalitions = np.atleast_2d(np.asarray(coalitions, dtype=bool))
    background = np.atleast_2d(np.asarray(background, dtype=float))
    n_c, d = coalitions.shape
    rows = np.where(coalitions[:, None, :], x[None, None, :], background[None, :, :])
    return rows.reshape(n_c * background.shape[0], d)


def legacy_expand(
    x: np.ndarray, coalitions: np.ndarray, background: np.ndarray
) -> np.ndarray:
    """The pre-engine per-coalition expansion loop.

    Kept verbatim-in-behaviour (the chained ``out[block][:, present]``
    view assignment is replaced by a single-step index) so E37 can time
    the old path and the regression tests can assert the broadcast path
    is bitwise identical.
    """
    x = np.asarray(x, dtype=float).ravel()
    coalitions = np.atleast_2d(np.asarray(coalitions, dtype=bool))
    background = np.atleast_2d(np.asarray(background, dtype=float))
    n_c = coalitions.shape[0]
    n_b = background.shape[0]
    out = np.tile(background, (n_c, 1))
    for c in range(n_c):
        present = coalitions[c]
        out[c * n_b : (c + 1) * n_b, present] = x[present]
    return out


def batched_predict(
    predict_fn: Callable[[np.ndarray], np.ndarray],
    rows: np.ndarray,
    max_batch_rows: int | None = None,
) -> np.ndarray:
    """Evaluate ``predict_fn`` over ``rows`` in memory-bounded chunks.

    Per-row outputs are independent of chunk boundaries, so the result is
    identical to one giant call — only the peak allocation (and the
    ``model.calls`` meter) changes.
    """
    rows = np.atleast_2d(rows)
    limit = resolve_max_batch_rows(max_batch_rows)
    n = rows.shape[0]
    if n <= limit:
        return np.asarray(predict_fn(rows), dtype=float).ravel()
    out = np.empty(n, dtype=float)
    for start in range(0, n, limit):
        stop = min(start + limit, n)
        out[start:stop] = np.asarray(
            predict_fn(rows[start:stop]), dtype=float
        ).ravel()
    return out


@register_serializable("core.CoalitionValueCache")
class CoalitionValueCache:
    """Memo of coalition values keyed by packed-bit masks.

    Keys are ``np.packbits`` bytes of the boolean mask — 8× smaller than
    tuple keys and hashable without per-element Python objects. One cache
    instance is scoped to one ``(instance, value function)`` pair; values
    for different explained instances never share a cache.
    """

    __slots__ = ("values", "hits", "misses")

    def __init__(self) -> None:
        self.values: dict[bytes, float] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.values)

    def record(self, hits: int, misses: int) -> None:
        """Accumulate local stats and export them through repro.obs."""
        self.hits += hits
        self.misses += misses
        if hits:
            metrics.counter(_HITS).inc(hits)
        if misses:
            metrics.counter(_MISSES).inc(misses)

    def to_dict(self) -> dict:
        """Entries only; hit/miss statistics are ephemeral run state."""
        return {
            "entries": {
                base64.b64encode(key).decode("ascii"): float(value)
                for key, value in self.values.items()
            }
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CoalitionValueCache":
        out = cls()
        try:
            for key_b64, value in payload.get("entries", {}).items():
                out.values[base64.b64decode(key_b64.encode("ascii"))] = \
                    float(value)
        except (ValueError, TypeError, AttributeError) as e:
            raise PayloadError(f"malformed cache entries: {e}") from e
        return out


@register_serializable("core.CoalitionEngine")
class CoalitionEngine:
    """Vectorized, cached, memory-bounded coalition evaluation.

    Parameters
    ----------
    background:
        Background sample; absent features are imputed from it
        (subsampled to ``max_background`` rows, as before).
    max_batch_rows:
        Upper bound on rows per predict-fn call (``None`` → env
        ``REPRO_MAX_BATCH_ROWS`` → :data:`DEFAULT_MAX_BATCH_ROWS`).
    chunk_retries:
        Extra whole-chunk attempts after the guarded predict function
        gives up on a chunk (:class:`repro.robust.ModelEvaluationError`).
        Chunk geometry means one flaky evaluation would otherwise sink
        thousands of coalition values at once; a fresh attempt re-enters
        the guard with a full retry allowance. Budget exhaustion is
        never chunk-retried (the budget will not recover).
    """

    def __init__(
        self,
        background: np.ndarray,
        max_background: int = 100,
        rng: np.random.Generator | None = None,
        max_batch_rows: int | None = None,
        chunk_retries: int = DEFAULT_CHUNK_RETRIES,
    ) -> None:
        background = np.atleast_2d(np.asarray(background, dtype=float))
        if background.shape[0] > max_background:
            rng = rng or np.random.default_rng(0)
            idx = rng.choice(background.shape[0], size=max_background, replace=False)
            background = background[idx]
        self.background = background
        self.max_batch_rows = resolve_max_batch_rows(max_batch_rows)
        self.chunk_retries = max(0, int(chunk_retries))

    @property
    def n_background(self) -> int:
        return self.background.shape[0]

    def to_dict(self) -> dict:
        return {
            "background": self.background,
            "max_batch_rows": self.max_batch_rows,
            "chunk_retries": self.chunk_retries,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CoalitionEngine":
        background = np.atleast_2d(np.asarray(payload["background"],
                                              dtype=float))
        # The stored background was already subsampled at construction;
        # passing its own row count as the cap keeps it verbatim instead
        # of re-subsampling.
        return cls(
            background,
            max_background=background.shape[0],
            max_batch_rows=payload.get("max_batch_rows"),
            chunk_retries=payload.get("chunk_retries",
                                      DEFAULT_CHUNK_RETRIES),
        )

    # -- expansion -----------------------------------------------------------

    def expand(self, x: np.ndarray, coalitions: np.ndarray) -> np.ndarray:
        """Broadcast-materialize coalition rows (see :func:`broadcast_expand`)."""
        return broadcast_expand(x, coalitions, self.background)

    # -- evaluation ----------------------------------------------------------

    def _evaluate(
        self,
        model_fn: Callable[[np.ndarray], np.ndarray],
        x: np.ndarray,
        coalitions: np.ndarray,
        sp,
    ) -> np.ndarray:
        """Chunked v(S) for unique coalitions; one value per coalition."""
        n_b = self.n_background
        n_c = coalitions.shape[0]
        per_chunk = max(1, self.max_batch_rows // n_b)
        values = np.empty(n_c, dtype=float)
        n_chunks = 0
        for start in range(0, n_c, per_chunk):
            chunk = coalitions[start : start + per_chunk]
            with metrics.observe_duration("coalition.chunk_ms"):
                rows = broadcast_expand(x, chunk, self.background)
                attempt = 0
                while True:
                    try:
                        preds = np.asarray(model_fn(rows), dtype=float).ravel()
                        break
                    except ModelEvaluationError:
                        # Chunk-level retry: re-enter the guard with a fresh
                        # allowance. BudgetExceededError is not a
                        # ModelEvaluationError and propagates immediately.
                        attempt += 1
                        if attempt > self.chunk_retries:
                            raise
                        metrics.counter(_CHUNK_RETRIES).inc()
                values[start : start + chunk.shape[0]] = preds.reshape(
                    chunk.shape[0], n_b
                ).mean(axis=1)
            n_chunks += 1
        sp.set_attr("chunk_coalitions", per_chunk)
        sp.set_attr("chunk_rows", per_chunk * n_b)
        sp.set_attr("n_chunks", n_chunks)
        return values

    def batch_value_matrix(
        self,
        model_fn: Callable[[np.ndarray], np.ndarray],
        X: np.ndarray,
        coalitions: np.ndarray,
    ) -> np.ndarray:
        """Fused ``v(S)`` over a batch of instances × shared coalitions.

        Returns a ``(n_instances, n_coalitions)`` matrix: entry
        ``[r, c]`` is the mean model output over the background with
        coalition ``c`` fixed to instance ``r`` — exactly what
        ``value_function(model_fn, X[r])(coalitions)[c]`` computes, but
        evaluated as one flattened ``instance × coalition`` grid so
        chunks can span row boundaries and small per-row mask sets no
        longer pay one model call each. Each coalition block is averaged
        over its own background rows only, so values are bitwise
        independent of the chunk geometry (the same invariant
        :func:`batched_predict` relies on); the amortized
        ``explain_batch`` parity tests assert this against the per-row
        path. Callers pass pre-deduplicated coalitions (a
        :class:`repro.games.plan.CoalitionPlan`); no value cache is
        consulted here.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        coalitions = np.atleast_2d(np.asarray(coalitions, dtype=bool))
        n_rows, n_c = X.shape[0], coalitions.shape[0]
        n_b = self.n_background
        total = n_rows * n_c
        per_chunk = max(1, self.max_batch_rows // n_b)
        out = np.empty(total, dtype=float)
        with span(
            "coalition_eval", n_coalitions=total, n_background=n_b,
            fused_rows=n_rows,
        ) as sp:
            n_chunks = 0
            for start in range(0, total, per_chunk):
                stop = min(start + per_chunk, total)
                slots = np.arange(start, stop)
                row_ids = slots // n_c
                coal_ids = slots - row_ids * n_c
                with metrics.observe_duration("coalition.chunk_ms"):
                    rows = np.where(
                        coalitions[coal_ids][:, None, :],
                        X[row_ids][:, None, :],
                        self.background[None, :, :],
                    ).reshape((stop - start) * n_b, X.shape[1])
                    attempt = 0
                    while True:
                        try:
                            preds = np.asarray(
                                model_fn(rows), dtype=float
                            ).ravel()
                            break
                        except ModelEvaluationError:
                            attempt += 1
                            if attempt > self.chunk_retries:
                                raise
                            metrics.counter(_CHUNK_RETRIES).inc()
                    out[start:stop] = preds.reshape(
                        stop - start, n_b
                    ).mean(axis=1)
                n_chunks += 1
            sp.set_attr("chunk_coalitions", per_chunk)
            sp.set_attr("chunk_rows", per_chunk * n_b)
            sp.set_attr("n_chunks", n_chunks)
        return out.reshape(n_rows, n_c)

    def value_function(
        self,
        model_fn: Callable[[np.ndarray], np.ndarray],
        x: np.ndarray,
        cache: bool = True,
    ):
        """Return ``v(S)``: mean model output with coalition S fixed to x.

        The returned callable accepts a binary coalition matrix and
        returns one averaged output per coalition. With ``cache=True``
        (the default — correct because the masking game is deterministic)
        identical masks are evaluated once within and across calls; the
        cache is reachable afterwards as ``v.cache``.
        """
        x = np.asarray(x, dtype=float).ravel()
        store = CoalitionValueCache() if resolve_cache(cache) else None
        if store is not None:
            # Opt-in pre-warming from a persisted snapshot
            # (REPRO_CACHE_SNAPSHOT). Scope tokens keep foreign snapshots
            # out, and a broken snapshot never fails the explanation.
            from ..persist.snapshot import (maybe_prewarm,
                                            resolve_snapshot_path,
                                            scope_token)
            if resolve_snapshot_path() is not None:
                maybe_prewarm(store, scope_token(x, self.background))

        def v(coalitions: np.ndarray) -> np.ndarray:
            coalitions = np.atleast_2d(np.asarray(coalitions, dtype=bool))
            n_c = coalitions.shape[0]
            with span(
                "coalition_eval", n_coalitions=n_c, n_background=self.n_background
            ) as sp:
                if store is None:
                    out = self._evaluate(model_fn, x, coalitions, sp)
                    sp.set_attr("cache_hits", 0)
                    sp.set_attr("cache_misses", n_c)
                    return out
                keys = np.packbits(coalitions, axis=1)
                out = np.empty(n_c, dtype=float)
                # First occurrence of each uncached mask, plus every row
                # (cached, duplicate, or fresh) it must fill.
                fresh_rows: list[int] = []
                followers: dict[bytes, list[int]] = {}
                hits = 0
                for i in range(n_c):
                    key = keys[i].tobytes()
                    known = store.values.get(key)
                    if known is not None:
                        out[i] = known
                        hits += 1
                    elif key in followers:
                        followers[key].append(i)
                        hits += 1
                    else:
                        followers[key] = [i]
                        fresh_rows.append(i)
                if fresh_rows:
                    vals = self._evaluate(
                        model_fn, x, coalitions[fresh_rows], sp
                    )
                    for j, i0 in enumerate(fresh_rows):
                        key = keys[i0].tobytes()
                        store.values[key] = vals[j]
                        for i in followers[key]:
                            out[i] = vals[j]
                store.record(hits, len(fresh_rows))
                sp.set_attr("cache_hits", hits)
                sp.set_attr("cache_misses", len(fresh_rows))
                return out

        v.cache = store
        return v

    def legacy_value_function(
        self, model_fn: Callable[[np.ndarray], np.ndarray], x: np.ndarray
    ):
        """The pre-engine path: loop expand, one unchunked call, no cache.

        Kept so E37 can compare old-vs-new wall time and model-eval counts
        at equal coalition budget.
        """
        x = np.asarray(x, dtype=float).ravel()
        n_b = self.n_background

        def v(coalitions: np.ndarray) -> np.ndarray:
            rows = legacy_expand(x, coalitions, self.background)
            preds = np.asarray(model_fn(rows), dtype=float)
            return preds.reshape(-1, n_b).mean(axis=1)

        return v
