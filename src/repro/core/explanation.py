"""Explanation result objects shared across the library.

Every explainer returns one of a small set of typed results rather than a
bare array, so downstream code (rendering, benchmarks, tests) can treat all
attribution methods interchangeably:

* :class:`FeatureAttribution` — one real number per feature (LIME, SHAP,
  QII, causal Shapley, saliency, ...).
* :class:`RuleExplanation` — an if-then rule with precision/coverage
  (Anchors, decision sets, sufficient reasons).
* :class:`CounterfactualExplanation` — one or more contrastive instances.
* :class:`DataAttribution` — one real number per *training point* (Data
  Shapley, influence functions, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..persist.protocol import Serializable, register_serializable

__all__ = [
    "FeatureAttribution",
    "Predicate",
    "RuleExplanation",
    "CounterfactualExplanation",
    "DataAttribution",
]


@register_serializable("core.FeatureAttribution")
@dataclass
class FeatureAttribution(Serializable):
    """Per-feature importance scores for a single prediction.

    Attributes
    ----------
    values:
        One score per feature; sign encodes direction of influence.
    base_value:
        The reference output the scores are measured against (for Shapley
        methods, the expected model output over the background).
    prediction:
        The model output being explained.
    feature_names:
        Column names aligned with ``values``.
    method:
        Short identifier of the producing algorithm (``"kernel_shap"``).
    meta:
        Free-form extras (sampling budget, convergence diagnostics, ...).
    """

    values: np.ndarray
    feature_names: list[str]
    base_value: float = 0.0
    prediction: float | None = None
    method: str = ""
    meta: dict = field(default_factory=dict)

    __persist_init__ = ("values", "feature_names", "base_value",
                        "prediction", "method", "meta")

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape[0] != len(self.feature_names):
            raise ValueError(
                f"{self.values.shape[0]} values for "
                f"{len(self.feature_names)} feature names"
            )

    def additivity_gap(self) -> float:
        """|base + sum(values) − prediction|; 0 for exact Shapley methods."""
        if self.prediction is None:
            raise ValueError("prediction not recorded on this attribution")
        return abs(self.base_value + float(self.values.sum()) - self.prediction)

    def ranking(self) -> list[int]:
        """Feature indices sorted by |score| descending."""
        return list(np.argsort(-np.abs(self.values)))

    def top(self, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` most important (name, score) pairs."""
        order = self.ranking()[:k]
        return [(self.feature_names[i], float(self.values[i])) for i in order]

    def as_dict(self) -> dict[str, float]:
        return {
            name: float(v) for name, v in zip(self.feature_names, self.values)
        }

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}={v:+.3g}" for n, v in self.top(4))
        return f"FeatureAttribution[{self.method}]({parts}, ...)"


@register_serializable("core.Predicate")
@dataclass(frozen=True)
class Predicate(Serializable):
    """An atomic condition on one feature: ``feature <op> value``.

    ``op`` is one of ``"=="``, ``"<="``, ``">"``, ``">="``, ``"<"``.
    ``value`` is the encoded numeric threshold or category code.
    """

    feature: int
    op: str
    value: float
    feature_name: str = ""

    __persist_init__ = ("feature", "op", "value", "feature_name")

    _OPS = ("==", "<=", ">", ">=", "<", "!=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown predicate op {self.op!r}")

    def holds(self, X: np.ndarray) -> np.ndarray:
        """Vectorized evaluation: boolean mask over rows of ``X``."""
        col = np.atleast_2d(X)[:, self.feature]
        if self.op == "==":
            return col == self.value
        if self.op == "!=":
            return col != self.value
        if self.op == "<=":
            return col <= self.value
        if self.op == "<":
            return col < self.value
        if self.op == ">=":
            return col >= self.value
        return col > self.value

    def __str__(self) -> str:
        name = self.feature_name or f"x{self.feature}"
        return f"{name} {self.op} {self.value:g}"


@register_serializable("core.RuleExplanation")
@dataclass
class RuleExplanation(Serializable):
    """A conjunction of predicates with quality statistics.

    ``precision`` is P(model gives the explained outcome | rule holds),
    estimated over a perturbation or data distribution; ``coverage`` is
    P(rule holds).
    """

    predicates: list[Predicate]
    outcome: float
    precision: float
    coverage: float
    method: str = ""
    meta: dict = field(default_factory=dict)

    __persist_init__ = ("predicates", "outcome", "precision", "coverage",
                        "method", "meta")

    def holds(self, X: np.ndarray) -> np.ndarray:
        """Boolean mask of rows satisfying every predicate."""
        X = np.atleast_2d(X)
        mask = np.ones(X.shape[0], dtype=bool)
        for pred in self.predicates:
            mask &= pred.holds(X)
        return mask

    def __len__(self) -> int:
        return len(self.predicates)

    def __str__(self) -> str:
        body = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        return (
            f"IF {body} THEN outcome={self.outcome:g} "
            f"(precision={self.precision:.3f}, coverage={self.coverage:.3f})"
        )


@register_serializable("core.CounterfactualExplanation")
@dataclass
class CounterfactualExplanation(Serializable):
    """A set of contrastive instances for one factual input.

    Each row of ``counterfactuals`` is an instance close to ``factual``
    for which the model output flips to ``target_outcome``.
    """

    factual: np.ndarray
    counterfactuals: np.ndarray
    factual_outcome: float
    target_outcome: float
    feature_names: list[str]
    method: str = ""
    meta: dict = field(default_factory=dict)

    __persist_init__ = ("factual", "counterfactuals", "factual_outcome",
                        "target_outcome", "feature_names", "method", "meta")

    def __post_init__(self) -> None:
        self.factual = np.asarray(self.factual, dtype=float).ravel()
        self.counterfactuals = np.atleast_2d(
            np.asarray(self.counterfactuals, dtype=float)
        )

    @property
    def n_counterfactuals(self) -> int:
        return self.counterfactuals.shape[0]

    def changes(self, index: int = 0) -> dict[str, tuple[float, float]]:
        """Features changed by counterfactual ``index``: name -> (from, to)."""
        cf = self.counterfactuals[index]
        return {
            name: (float(a), float(b))
            for name, a, b in zip(self.feature_names, self.factual, cf)
            if not np.isclose(a, b)
        }

    def sparsity(self, index: int = 0) -> int:
        """Number of features changed by counterfactual ``index``."""
        return len(self.changes(index))


@register_serializable("core.DataAttribution")
@dataclass
class DataAttribution(Serializable):
    """Per-training-point importance scores.

    ``values[i]`` scores training point ``i``; the semantics (Shapley value
    of the point, estimated loss change on removal, ...) depend on
    ``method``.
    """

    values: np.ndarray
    method: str = ""
    meta: dict = field(default_factory=dict)

    __persist_init__ = ("values", "method", "meta")

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)

    def ranking(self, ascending: bool = True) -> np.ndarray:
        """Training indices sorted by value (ascending = most harmful first
        for valuation methods, where low value means noise/harm)."""
        order = np.argsort(self.values)
        return order if ascending else order[::-1]

    def top(self, k: int = 10, ascending: bool = True) -> list[tuple[int, float]]:
        order = self.ranking(ascending)[:k]
        return [(int(i), float(self.values[i])) for i in order]
