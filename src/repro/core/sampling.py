"""Perturbation samplers shared by LIME, Anchors and SHAP-style explainers.

All local model-agnostic explainers share the same primitive: draw points
"near" an instance, or draw points with a chosen subset of features fixed to
the instance and the rest resampled from a background distribution. The two
samplers here implement those primitives once so every explainer perturbs
data the same way and the LIME-instability experiments (E4) can vary the
sampler in isolation.
"""

from __future__ import annotations

import numpy as np

from .coalition_engine import CoalitionEngine
from .dataset import TabularDataset

__all__ = ["GaussianPerturber", "MaskingSampler"]


class GaussianPerturber:
    """LIME-style neighborhood sampler.

    Numeric features are perturbed with Gaussian noise scaled by the
    training-column standard deviation; categorical features are resampled
    from their empirical marginal. The binary *interpretable representation*
    used by LIME (1 = feature kept at its original value) is returned
    alongside the raw perturbed rows.

    Parameters
    ----------
    data:
        Background dataset supplying column statistics.
    scale:
        Multiplier on the per-column standard deviation of the noise.
    """

    def __init__(self, data: TabularDataset, scale: float = 1.0) -> None:
        self.data = data
        self.scale = scale
        stats = data.column_stats()
        self._std = stats["std"]
        self._frequencies = stats["frequencies"]

    def sample(
        self, x: np.ndarray, n_samples: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n_samples`` neighbors of ``x``.

        Returns ``(Z, B)`` where ``Z`` is the perturbed feature matrix and
        ``B`` the binary interpretable matrix: ``B[s, j] == 1`` iff sample
        ``s`` kept feature ``j`` at the original value. The first row is
        always the unperturbed instance itself.
        """
        x = np.asarray(x, dtype=float).ravel()
        d = x.shape[0]
        Z = np.tile(x, (n_samples, 1))
        B = np.ones((n_samples, d), dtype=float)
        # Row 0 stays the instance itself, as in the reference LIME code.
        flip = rng.random((n_samples, d)) < 0.5
        flip[0, :] = False
        for j in range(d):
            rows = np.where(flip[:, j])[0]
            if rows.size == 0:
                continue
            freq = self._frequencies[j]
            if freq is None:
                Z[rows, j] = x[j] + rng.normal(
                    0.0, self._std[j] * self.scale, size=rows.size
                )
                B[rows, j] = 0.0
            else:
                draws = rng.choice(len(freq), size=rows.size, p=freq)
                Z[rows, j] = draws
                # A categorical draw that happens to equal the original
                # value still counts as "kept" in the binary representation.
                B[rows, j] = (draws == x[j]).astype(float)
        return Z, B


class MaskingSampler(CoalitionEngine):
    """Coalition sampler for SHAP-style explainers.

    Given a binary coalition vector ``z`` (1 = feature present, i.e. fixed
    to the explained instance), produces raw rows in which absent features
    are imputed from a background sample — the *interventional* value
    function of Kernel SHAP.

    Since the coalition-engine rewrite this class *is* a
    :class:`repro.core.coalition_engine.CoalitionEngine`: ``expand`` is a
    single ``np.where`` broadcast (block layout unchanged), and
    ``value_function`` deduplicates repeated masks through a packed-bit
    value cache and evaluates in memory-bounded chunks. The historical
    loop-based path survives as ``legacy_value_function`` for the E37
    old-vs-new benchmark.
    """

