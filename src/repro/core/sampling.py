"""Perturbation samplers shared by LIME, Anchors and SHAP-style explainers.

All local model-agnostic explainers share the same primitive: draw points
"near" an instance, or draw points with a chosen subset of features fixed to
the instance and the rest resampled from a background distribution. The two
samplers here implement those primitives once so every explainer perturbs
data the same way and the LIME-instability experiments (E4) can vary the
sampler in isolation.
"""

from __future__ import annotations

import numpy as np

from .dataset import TabularDataset

__all__ = ["GaussianPerturber", "MaskingSampler"]


class GaussianPerturber:
    """LIME-style neighborhood sampler.

    Numeric features are perturbed with Gaussian noise scaled by the
    training-column standard deviation; categorical features are resampled
    from their empirical marginal. The binary *interpretable representation*
    used by LIME (1 = feature kept at its original value) is returned
    alongside the raw perturbed rows.

    Parameters
    ----------
    data:
        Background dataset supplying column statistics.
    scale:
        Multiplier on the per-column standard deviation of the noise.
    """

    def __init__(self, data: TabularDataset, scale: float = 1.0) -> None:
        self.data = data
        self.scale = scale
        stats = data.column_stats()
        self._std = stats["std"]
        self._frequencies = stats["frequencies"]

    def sample(
        self, x: np.ndarray, n_samples: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n_samples`` neighbors of ``x``.

        Returns ``(Z, B)`` where ``Z`` is the perturbed feature matrix and
        ``B`` the binary interpretable matrix: ``B[s, j] == 1`` iff sample
        ``s`` kept feature ``j`` at the original value. The first row is
        always the unperturbed instance itself.
        """
        x = np.asarray(x, dtype=float).ravel()
        d = x.shape[0]
        Z = np.tile(x, (n_samples, 1))
        B = np.ones((n_samples, d), dtype=float)
        # Row 0 stays the instance itself, as in the reference LIME code.
        flip = rng.random((n_samples, d)) < 0.5
        flip[0, :] = False
        for j in range(d):
            rows = np.where(flip[:, j])[0]
            if rows.size == 0:
                continue
            freq = self._frequencies[j]
            if freq is None:
                Z[rows, j] = x[j] + rng.normal(
                    0.0, self._std[j] * self.scale, size=rows.size
                )
                B[rows, j] = 0.0
            else:
                draws = rng.choice(len(freq), size=rows.size, p=freq)
                Z[rows, j] = draws
                # A categorical draw that happens to equal the original
                # value still counts as "kept" in the binary representation.
                B[rows, j] = (draws == x[j]).astype(float)
        return Z, B


class MaskingSampler:
    """Coalition sampler for SHAP-style explainers.

    Given a binary coalition vector ``z`` (1 = feature present, i.e. fixed
    to the explained instance), produces raw rows in which absent features
    are imputed from a background sample — the *interventional* value
    function of Kernel SHAP.
    """

    def __init__(
        self,
        background: np.ndarray,
        max_background: int = 100,
        rng: np.random.Generator | None = None,
    ) -> None:
        background = np.atleast_2d(np.asarray(background, dtype=float))
        if background.shape[0] > max_background:
            rng = rng or np.random.default_rng(0)
            idx = rng.choice(background.shape[0], size=max_background, replace=False)
            background = background[idx]
        self.background = background

    @property
    def n_background(self) -> int:
        return self.background.shape[0]

    def expand(self, x: np.ndarray, coalitions: np.ndarray) -> np.ndarray:
        """Materialize coalition rows against the whole background.

        Parameters
        ----------
        x:
            The instance being explained, shape ``(d,)``.
        coalitions:
            Binary matrix ``(n_coalitions, d)``.

        Returns
        -------
        Array of shape ``(n_coalitions * n_background, d)``: for each
        coalition, one copy of every background row with present features
        overwritten by the instance's values. Callers average model outputs
        over each consecutive block of ``n_background`` rows.
        """
        x = np.asarray(x, dtype=float).ravel()
        coalitions = np.atleast_2d(np.asarray(coalitions, dtype=bool))
        n_c, d = coalitions.shape
        n_b = self.n_background
        out = np.tile(self.background, (n_c, 1))
        for c in range(n_c):
            block = slice(c * n_b, (c + 1) * n_b)
            present = coalitions[c]
            out[block][:, present] = x[present]
        return out

    def value_function(self, model_fn, x: np.ndarray):
        """Return ``v(S)``: mean model output with coalition S fixed to x.

        ``model_fn`` maps a feature matrix to a 1-D output vector. The
        returned callable accepts a binary coalition matrix and returns one
        averaged output per coalition.
        """
        n_b = self.n_background

        def v(coalitions: np.ndarray) -> np.ndarray:
            rows = self.expand(x, coalitions)
            preds = np.asarray(model_fn(rows), dtype=float)
            return preds.reshape(-1, n_b).mean(axis=1)

        return v
