"""Observability: tracing, metering, profiling, ledger, exposition.

The tutorial frames every post-hoc explainer as a consumer of black-box
model queries — that is the resource being spent, and this package makes
it measurable. All stdlib-only:

``trace``
    Context-manager spans (monotonic wall + thread CPU time, contextvar
    nesting, thread-safe) feeding a process-global :class:`Tracer` with
    JSONL export. Deterministic root-level sampling via
    ``REPRO_TRACE_SAMPLE`` keeps always-on tracing cheap; disable
    everything with ``REPRO_OBS=0``.
``metrics``
    Counters, gauges, and fixed-boundary log-bucketed **quantile
    histograms** (p50/p95/p99 without stored samples, mergeable across
    forked workers), plus the **model-eval meter** that
    :func:`repro.core.base.as_predict_fn` installs around every wrapped
    predict function: each call is attributed (calls *and* batched rows)
    to the active span and the global ``model.calls``/``model.rows``.
``instrument``
    Class decorator that auto-spans ``explain``/``explain_batch``,
    feeds the ``explain.wall_ms``/``explain_batch.wall_ms`` latency
    histograms, and records every run into the ledger — zero per-module
    code.
``profile``
    Phase-level wall/CPU attribution from the span tree and
    folded-stack ("flamegraph") text export from any trace JSONL.
``ledger``
    Append-only run ledger (in-memory ring + optional ``REPRO_LEDGER``
    JSONL sink): explainer, params hash, seed, cost, convergence,
    error type for every explanation run.
``export``
    The live exposition endpoint — ``/metrics`` (Prometheus text),
    ``/health``, ``/ledger/tail`` — via ``repro metrics serve`` or
    ``REPRO_METRICS_PORT``.
``summary`` / ``bench``
    Aggregation + pretty tables for the CLI and decision reports, and
    atomic writers for ``benchmarks/results/*.json`` and the top-level
    ``BENCH_summary.json`` perf trajectory (stamped with ``git_sha`` and
    ``schema_version``).

Quick use::

    from repro import obs
    with obs.span("experiment", name="ablation"):
        explainer.explain(x)            # auto-spanned, evals metered
    print(obs.summary())                # per-explainer cost table
    print(obs.phase_table())            # where the time went
    obs.get_tracer().export("trace.jsonl")
"""

from .trace import (
    Span,
    Tracer,
    current_span,
    enabled,
    get_tracer,
    set_enabled,
    set_trace_sample,
    span,
    trace_sample,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    counter,
    gauge,
    histogram,
    histogram_deltas,
    histogram_states,
    merge_histogram_deltas,
    meter_predict_fn,
    observe_duration,
    record_model_eval,
    reset_metrics,
    snapshot,
)
from .instrument import instrument_explainer
from .ledger import RunLedger, get_ledger, params_hash, reset_ledger
from .profile import (
    folded_from_jsonl,
    folded_stacks,
    phase_profile,
    phase_table,
    render_folded,
)
from .export import (
    maybe_autostart,
    metrics_server_address,
    prometheus_text,
    start_metrics_server,
    stop_metrics_server,
)
from .summary import aggregate, internal_errors, summary, summary_dict
from . import (
    bench,
    export,
    instrument,
    ledger,
    metrics,
    profile,
    summary as summary_mod,
    trace,
)

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "enabled",
    "set_enabled",
    "trace_sample",
    "set_trace_sample",
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "observe_duration",
    "record_model_eval",
    "meter_predict_fn",
    "snapshot",
    "reset_metrics",
    "histogram_states",
    "histogram_deltas",
    "merge_histogram_deltas",
    "instrument_explainer",
    "RunLedger",
    "get_ledger",
    "reset_ledger",
    "params_hash",
    "phase_profile",
    "phase_table",
    "folded_stacks",
    "folded_from_jsonl",
    "render_folded",
    "prometheus_text",
    "start_metrics_server",
    "stop_metrics_server",
    "metrics_server_address",
    "maybe_autostart",
    "aggregate",
    "internal_errors",
    "summary",
    "summary_dict",
    "bench",
    "trace",
    "metrics",
    "instrument",
    "ledger",
    "profile",
    "export",
]

# REPRO_METRICS_PORT starts the exposition endpoint with the process —
# the no-code-change path for wrapping telemetry around existing
# scripts. A no-op unless the variable is set.
maybe_autostart()
