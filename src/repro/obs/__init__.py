"""Observability: tracing, model-query metering, benchmark telemetry.

The tutorial frames every post-hoc explainer as a consumer of black-box
model queries — that is the resource being spent, and this package makes
it measurable. Four layers, all stdlib-only:

``trace``
    Context-manager spans (monotonic wall time, contextvar nesting,
    thread-safe) feeding a process-global :class:`Tracer` with JSONL
    export. Disable everything with ``REPRO_OBS=0``.
``metrics``
    Counters/histograms plus the **model-eval meter** that
    :func:`repro.core.base.as_predict_fn` installs around every wrapped
    predict function: each call is attributed (calls *and* batched rows)
    to the active span and the global ``model.calls``/``model.rows``.
``instrument``
    Class decorator that auto-spans ``explain``/``explain_batch`` so
    every explainer reports ``{explainer, n_features, wall_ms,
    model_evals, rows_evaluated}`` with zero per-module code.
``summary`` / ``bench``
    Aggregation + pretty tables for the CLI and decision reports, and
    atomic writers for ``benchmarks/results/*.json`` and the top-level
    ``BENCH_summary.json`` perf trajectory.

Quick use::

    from repro import obs
    with obs.span("experiment", name="ablation"):
        explainer.explain(x)            # auto-spanned, evals metered
    print(obs.summary())                # per-explainer cost table
    obs.get_tracer().export("trace.jsonl")
"""

from .trace import (
    Span,
    Tracer,
    current_span,
    enabled,
    get_tracer,
    set_enabled,
    span,
)
from .metrics import (
    Counter,
    Histogram,
    counter,
    histogram,
    meter_predict_fn,
    record_model_eval,
    reset_metrics,
    snapshot,
)
from .instrument import instrument_explainer
from .summary import aggregate, summary, summary_dict
from . import bench, instrument, metrics, summary as summary_mod, trace

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "enabled",
    "set_enabled",
    "Counter",
    "Histogram",
    "counter",
    "histogram",
    "record_model_eval",
    "meter_predict_fn",
    "snapshot",
    "reset_metrics",
    "instrument_explainer",
    "aggregate",
    "summary",
    "summary_dict",
    "bench",
    "trace",
    "metrics",
    "instrument",
]
