"""The run ledger: an append-only record of every explanation run.

The future service layer (ROADMAP item 1) needs a request log, and the
meta-explainer (item 5) needs historical cost/stability profiles per
(explainer, workload) pair. The ledger is both: one JSON row per
``explain`` / ``explain_batch`` call, capturing *who* ran (explainer,
parameter hash, seed), *what it cost* (wall/CPU milliseconds, model
calls and rows, retries), *how it went* (status, error type,
convergence diagnostics when the estimator reports them).

Rows live in a bounded in-memory ring (:data:`RING_SIZE`, oldest rows
evicted) served by ``/ledger/tail`` on the exposition endpoint, and are
optionally appended to a JSONL file named by ``REPRO_LEDGER`` so runs
survive the process. Recording is best-effort by design: a ledger
failure increments ``obs.internal_errors`` and never breaks the
explanation that triggered it.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import deque

from . import metrics

__all__ = [
    "RunLedger",
    "get_ledger",
    "reset_ledger",
    "params_hash",
    "record_run",
    "record_request",
]

RING_SIZE = 4096

_SCALARS = (bool, int, float, str, bytes, type(None))


def params_hash(obj) -> str | None:
    """Short stable hash of an explainer's scalar configuration.

    Hashes the sorted ``(name, value)`` pairs of scalar instance
    attributes (ints, floats, strings, bools, None) — enough to tell
    "same explainer, same knobs" apart without serializing models or
    arrays. Returns None when nothing hashable is found.
    """
    attrs = getattr(obj, "__dict__", None)
    if not isinstance(attrs, dict):
        return None
    items = [
        (k, v)
        for k, v in attrs.items()
        if not k.startswith("_") and isinstance(v, _SCALARS)
    ]
    if not items:
        return None
    payload = repr(sorted(items)).encode()
    return hashlib.sha1(payload).hexdigest()[:12]


class RunLedger:
    """Thread-safe bounded ring of run rows with optional JSONL sink."""

    def __init__(self, path: str | None = None, ring_size: int = RING_SIZE):
        self._lock = threading.Lock()
        self._rows: deque = deque(maxlen=ring_size)
        self.path = path
        self.recorded = 0

    def record(self, row: dict) -> None:
        """Append one run row (stamps ``ts`` if absent)."""
        if "ts" not in row:
            row = dict(row, ts=round(time.time(), 3))
        with self._lock:
            self._rows.append(row)
            self.recorded += 1
            if self.path:
                line = json.dumps(row, sort_keys=True, default=str)
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")

    def tail(self, n: int = 20) -> list[dict]:
        """The most recent ``n`` rows, oldest first."""
        with self._lock:
            rows = list(self._rows)
        return rows[-max(0, int(n)):]

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)


_ledger: RunLedger | None = None
_ledger_lock = threading.Lock()


def get_ledger() -> RunLedger:
    """The process-global ledger (sink path from ``REPRO_LEDGER``)."""
    global _ledger
    with _ledger_lock:
        if _ledger is None:
            _ledger = RunLedger(os.environ.get("REPRO_LEDGER") or None)
        return _ledger


def reset_ledger(path: str | None = None) -> RunLedger:
    """Replace the global ledger (tests; reconfiguring the sink)."""
    global _ledger
    with _ledger_lock:
        _ledger = RunLedger(path)
        return _ledger


def _convergence_of(result) -> dict | None:
    """Convergence diagnostics an estimator attached to its result."""
    meta = getattr(result, "meta", None)
    if isinstance(meta, dict):
        conv = meta.get("convergence")
        if isinstance(conv, dict):
            return conv
        keys = ("n_permutations", "n_samples", "iterations", "stderr")
        picked = {k: meta[k] for k in keys if k in meta}
        if picked:
            return picked
    return None


def record_run(span, explainer=None, result=None, error=None) -> None:
    """Build and record a ledger row from a closed explain span.

    Best-effort: any failure increments ``obs.internal_errors`` instead
    of propagating into the explanation call.
    """
    try:
        attrs = span.attrs or {}
        row = {
            "kind": span.name,
            "explainer": attrs.get("explainer"),
            "params_hash": params_hash(explainer),
            "seed": getattr(
                explainer, "seed", getattr(explainer, "random_state", None)
            ),
            "wall_ms": span.wall_ms,
            "cpu_ms": span.cpu_ms,
            "model_calls": span.model_evals,
            "model_rows": span.rows_evaluated,
            "retries": span.retries,
            "status": "ok" if error is None else f"error:{type(error).__name__}",
            "convergence": _convergence_of(result),
        }
        for key in ("n_features", "n_rows"):
            if key in attrs:
                row[key] = attrs[key]
        get_ledger().record(row)
    except Exception:
        # The ledger must never take an explanation down with it, but the
        # swallow stays visible on the internal-errors counter.
        metrics.counter("obs.internal_errors").inc()


def record_request(
    endpoint: str | None,
    tier: str | None,
    status: int,
    wall_ms: float,
    *,
    cache: str = "miss",
    degraded: bool = False,
    error: BaseException | None = None,
    deadline_ms: float | None = None,
) -> None:
    """Record one serve-layer request outcome (``kind="serve.request"``).

    The service-side counterpart of :func:`record_run`: one row per
    HTTP request, successful or shed, so overload behavior is auditable
    after the fact. Best-effort like everything else here.
    """
    try:
        row = {
            "kind": "serve.request",
            "endpoint": endpoint,
            "tier": tier,
            "status": int(status),
            "wall_ms": round(float(wall_ms), 3),
            "cache": cache,
            "degraded": bool(degraded),
            "error": None if error is None else type(error).__name__,
        }
        if deadline_ms is not None:
            row["deadline_ms"] = round(float(deadline_ms), 1)
        get_ledger().record(row)
    except Exception:
        metrics.counter("obs.internal_errors").inc()
