"""Live exposition endpoint: ``/metrics``, ``/health``, ``/ledger/tail``.

The first brick of the future ``repro.serve`` layer (ROADMAP item 1):
a dependency-free ``http.server`` thread that makes the process's
telemetry scrapeable while experiments run. Three routes:

``/metrics``
    Prometheus text exposition format 0.0.4. Counters and gauges map
    directly; histograms export the standard cumulative
    ``_bucket{le="…"}`` / ``_sum`` / ``_count`` series **plus**
    ``<name>_p50`` / ``_p95`` / ``_p99`` gauges precomputed from the
    log-bucketed quantile sketch — scrape-side quantiles without
    PromQL. Dotted metric names flatten to underscores under a
    ``repro_`` prefix (``model.latency_ms`` → ``repro_model_latency_ms``).
``/health``
    JSON liveness: observability state, trace keep-rate, span/ledger
    volumes, and the ``obs.internal_errors`` count.
``/ledger/tail``
    The most recent run-ledger rows as ND-JSON (``?n=`` bounds the
    count, default 20).

Start it with ``repro metrics serve``, programmatically via
:func:`start_metrics_server`, or implicitly by setting
``REPRO_METRICS_PORT`` (checked once at ``repro.obs`` import). The
server is a daemon thread — it never blocks interpreter exit.
"""

from __future__ import annotations

import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from . import metrics, trace
from .ledger import get_ledger
from .metrics import Counter, Gauge, Histogram

__all__ = [
    "prometheus_text",
    "start_metrics_server",
    "stop_metrics_server",
    "metrics_server_address",
    "maybe_autostart",
]

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """``model.latency_ms`` → ``repro_model_latency_ms``."""
    return "repro_" + _NAME_BAD.sub("_", name)


def _num(value: float) -> str:
    """A Prometheus-parseable number (integers stay integral)."""
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer() and abs(value) < 1e15
    ):
        return str(int(value))
    return format(float(value), ".10g")


def _histogram_lines(name: str, h: Histogram) -> list[str]:
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for index, in_bucket in enumerate(h.buckets):
        if not in_bucket:
            continue  # a sparse-but-sorted le series is valid exposition
        cumulative += in_bucket
        if index < len(h.BOUNDARIES):
            le = _num(h.BOUNDARIES[index])
            lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {h.count}')
    lines.append(f"{name}_sum {_num(h.sum)}")
    lines.append(f"{name}_count {h.count}")
    for q, value in (("p50", h.p50), ("p95", h.p95), ("p99", h.p99)):
        lines.append(f"# TYPE {name}_{q} gauge")
        lines.append(f"{name}_{q} {_num(value)}")
    return lines


def prometheus_text() -> str:
    """The full registry in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for name, metric in metrics.registry_items():
        prom = _prom_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_num(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_num(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.extend(_histogram_lines(prom, metric))
    return "\n".join(lines) + "\n"


def _health_payload() -> dict:
    snap = metrics.snapshot()
    internal = snap.get("obs.internal_errors", {}).get("value", 0)
    return {
        "status": "ok",
        "obs_enabled": trace.enabled(),
        "trace_sample": trace.trace_sample(),
        "spans_recorded": len(trace.get_tracer().spans()),
        "ledger_rows": len(get_ledger()),
        "internal_errors": internal,
    }


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs"

    def _send(self, body: str, content_type: str, status: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                self._send(
                    prometheus_text(), "text/plain; version=0.0.4"
                )
            elif route == "/health":
                self._send(
                    json.dumps(_health_payload(), sort_keys=True),
                    "application/json",
                )
            elif route == "/ledger/tail":
                raw = parse_qs(parsed.query).get("n", ["20"])[0]
                try:
                    n = max(0, int(raw))
                except ValueError:
                    n = 20
                body = "\n".join(
                    json.dumps(row, sort_keys=True, default=str)
                    for row in get_ledger().tail(n)
                )
                self._send(body + ("\n" if body else ""),
                           "application/x-ndjson")
            else:
                self._send("not found\n", "text/plain", status=404)
        except Exception:
            # A broken scrape must not take the endpoint thread down.
            metrics.counter("obs.internal_errors").inc()
            try:
                self._send("internal error\n", "text/plain", status=500)
            except Exception:
                metrics.counter("obs.internal_errors").inc()

    def log_message(self, fmt, *args) -> None:  # noqa: D102
        pass  # scrape logging would drown the CLI's own output


_server: ThreadingHTTPServer | None = None
_server_lock = threading.Lock()


def start_metrics_server(
    port: int = 0, host: str = "127.0.0.1"
) -> tuple[str, int]:
    """Start (or reuse) the exposition server; returns ``(host, port)``.

    ``port=0`` lets the OS pick a free port — the in-process tests use
    that. Idempotent: a second call returns the running server's
    address.
    """
    global _server
    with _server_lock:
        if _server is None:
            _server = ThreadingHTTPServer((host, int(port)), _Handler)
            _server.daemon_threads = True
            thread = threading.Thread(
                target=_server.serve_forever,
                name="repro-metrics-server",
                daemon=True,
            )
            thread.start()
        address = _server.server_address
        return str(address[0]), int(address[1])


def stop_metrics_server() -> None:
    """Shut the exposition server down (idempotent)."""
    global _server
    with _server_lock:
        server, _server = _server, None
    if server is not None:
        server.shutdown()
        server.server_close()


def metrics_server_address() -> tuple[str, int] | None:
    """The running server's ``(host, port)``, or ``None``."""
    with _server_lock:
        if _server is None:
            return None
        address = _server.server_address
        return str(address[0]), int(address[1])


def maybe_autostart() -> tuple[str, int] | None:
    """Honor ``REPRO_METRICS_PORT`` (checked once at package import)."""
    raw = os.environ.get("REPRO_METRICS_PORT", "").strip()
    if not raw:
        return None
    try:
        return start_metrics_server(port=int(raw))
    except (ValueError, OSError):
        metrics.counter("obs.internal_errors").inc()
        return None
