"""Aggregation and pretty-printing of recorded spans.

:func:`aggregate` reduces a span list to per-``(name, explainer)``
totals; :func:`summary` renders them as the fixed-width table the CLI
prints after ``repro trace …`` and :func:`repro.report.decision_report`
embeds as its cost footer. :func:`summary_dict` is the machine-readable
twin used by the benchmark telemetry writer.

Child spans roll their eval counters up into parents (see
:mod:`repro.obs.trace`), so only *top-level* spans are totalled by
default — otherwise a batch of 10 explains would double-count as 10
children plus one parent.
"""

from __future__ import annotations

from .metrics import counter
from .trace import Span, get_tracer

__all__ = ["aggregate", "summary", "summary_dict", "internal_errors"]


def internal_errors() -> int:
    """Swallowed instrumentation failures so far (``obs.internal_errors``)."""
    return counter("obs.internal_errors").value


def _key(s: Span) -> tuple[str, str]:
    label = s.attrs.get("explainer") or s.attrs.get("section") or "-"
    return (s.name, str(label))


def aggregate(spans: list[Span] | None = None, top_level_only: bool = True
              ) -> dict[tuple[str, str], dict]:
    """Reduce spans to ``{(name, explainer): totals}``.

    With ``top_level_only`` (default), spans whose parent is also in the
    given list are folded into their parent (counters are cumulative) so
    costs are not double-counted.
    """
    if spans is None:
        spans = get_tracer().spans()
    if top_level_only:
        ids = {s.span_id for s in spans}
        spans = [s for s in spans if s.parent_id not in ids]
    out: dict[tuple[str, str], dict] = {}
    for s in spans:
        entry = out.setdefault(
            _key(s),
            {"count": 0, "wall_ms": 0.0, "model_evals": 0,
             "rows_evaluated": 0, "retries": 0, "errors": 0},
        )
        entry["count"] += 1
        entry["wall_ms"] += s.wall_ms or 0.0
        entry["model_evals"] += s.model_evals
        entry["rows_evaluated"] += s.rows_evaluated
        entry["retries"] += s.retries
        if s.status != "ok":
            entry["errors"] += 1
    return out


def summary_dict(spans: list[Span] | None = None) -> list[dict]:
    """JSON-safe aggregate rows, slowest first."""
    rows = []
    for (name, explainer), totals in aggregate(spans).items():
        rows.append({"span": name, "explainer": explainer, **totals})
    rows.sort(key=lambda r: -r["wall_ms"])
    return rows


def summary(spans: list[Span] | None = None) -> str:
    """Fixed-width table of per-explainer cost totals."""
    rows = summary_dict(spans)
    if not rows:
        return "(no spans recorded — is REPRO_OBS disabled?)"
    header = (
        f"{'span':<16} {'explainer':<24} {'count':>6} "
        f"{'wall_ms':>10} {'evals':>8} {'rows':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['span']:<16} {r['explainer']:<24} {r['count']:>6} "
            f"{r['wall_ms']:>10.1f} {r['model_evals']:>8} "
            f"{r['rows_evaluated']:>10}"
        )
    total_ms = sum(r["wall_ms"] for r in rows)
    total_evals = sum(r["model_evals"] for r in rows)
    total_rows = sum(r["rows_evaluated"] for r in rows)
    lines.append(
        f"{'total':<16} {'':<24} {sum(r['count'] for r in rows):>6} "
        f"{total_ms:>10.1f} {total_evals:>8} {total_rows:>10}"
    )
    swallowed = internal_errors()
    if swallowed:
        lines.append(
            f"WARNING: obs.internal_errors={swallowed} — instrumentation "
            "swallowed failures; the totals above may undercount"
        )
    return "\n".join(lines)
