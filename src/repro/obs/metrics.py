"""Counters, quantile histograms, gauges, and the model-eval meter.

The single most important metric in the library is the **model-eval
meter**: :func:`record_model_eval` is called by the wrapper that
:func:`repro.core.base.as_predict_fn` installs around every normalized
predict function, so each black-box query is counted twice over —

* ``calls``: how many times the predict function was invoked, and
* ``rows``: how many rows those invocations batched in total.

The distinction matters for the cost model: a KernelSHAP run with 130
coalitions against a 100-row background is *one or two calls* but
*13 000 rows* — batching is exactly the lever the ROADMAP's "fast as the
hardware allows" goal pulls, and calls/rows makes it visible.

Every eval is attributed to the innermost open span (so ``explain()``
spans carry their own cost) *and* to the process-global counters
``model.calls`` / ``model.rows``.

Telemetry v2 adds the ops vocabulary the future service layer needs:

* :class:`Histogram` is now a **fixed-boundary log-bucketed quantile
  histogram**: 8 geometric buckets per decade over 13 decades, so
  p50/p95/p99 read out with bounded relative error (one bucket width,
  ≤ ``10^0.125 − 1 ≈ 33%``) without storing samples. Bucket boundaries
  are identical in every process, which makes worker histograms
  mergeable by plain element-wise bucket addition — the process backend
  ships bucket-count deltas exactly like counter deltas
  (:func:`histogram_deltas` / :func:`merge_histogram_deltas`).
* :class:`Gauge` holds a last-value measurement (worker utilization,
  shard imbalance) for the ``/metrics`` exposition endpoint.
* :class:`observe_duration` is the blessed way to time a block into a
  histogram; ``scripts/check_metric_names.py`` bans ad-hoc
  ``time.perf_counter()`` timing outside ``repro.obs`` so every latency
  measurement flows through here (and therefore shows up in
  ``/metrics`` and the run ledger).

Metric names are dotted lowercase (``model.latency_ms``,
``exec.shard_ms``) — enforced by the same lint.

Amortized-batch counters (PR 7): ``coalition.plan.built`` /
``coalition.plan.reused`` count shared-coalition-plan construction vs
rows served from an existing plan (hit rate =
``reused / (built + reused)``), and ``coalition.plan.fallbacks`` counts
batches that fell back to the per-row loop after a fused-path failure.
The batch span carries a matching ``amortized`` attribute.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left

from . import trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "observe_duration",
    "record_model_eval",
    "meter_predict_fn",
    "snapshot",
    "reset_metrics",
    "histogram_states",
    "histogram_deltas",
    "merge_histogram_deltas",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value metric (utilization, imbalance, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


def _geometric_boundaries() -> tuple[float, ...]:
    """Upper bucket bounds: 8 per decade from 1e-6 up to 1e7.

    Computed as ``10^(k/8)`` so every process derives the *same* float
    values — bucket counts from forked workers merge element-wise.
    """
    return tuple(10.0 ** (k / 8.0) for k in range(-48, 57))


class Histogram:
    """Fixed-boundary log-bucketed summary of an observed distribution.

    Keeps count/sum/min/max plus per-bucket counts against the shared
    geometric boundary table (:func:`_geometric_boundaries`; bucket ``i``
    holds values in ``(b[i-1], b[i]]``, bucket 0 everything up to the
    first bound, the last bucket the overflow). Quantiles interpolate
    linearly inside the selected bucket and clamp to the observed
    min/max, so relative error is bounded by one bucket width
    (``10^0.125 ≈ 1.33``).
    """

    BOUNDARIES: tuple[float, ...] = _geometric_boundaries()
    N_BUCKETS = len(BOUNDARIES) + 1

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * self.N_BUCKETS

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[bisect_left(self.BOUNDARIES, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _bucket_bounds(self, index: int) -> tuple[float, float]:
        lo = 0.0 if index == 0 else self.BOUNDARIES[index - 1]
        hi = (
            self.max
            if index >= len(self.BOUNDARIES)
            else self.BOUNDARIES[index]
        )
        return lo, hi

    def quantile(self, q: float) -> float:
        """The q-quantile (0 ≤ q ≤ 1), interpolated within its bucket."""
        if self.count == 0:
            return 0.0
        if self.count == 1 or q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        cumulative = 0
        for index, in_bucket in enumerate(self.buckets):
            if in_bucket == 0:
                continue
            cumulative += in_bucket
            if cumulative >= target:
                lo, hi = self._bucket_bounds(index)
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                fraction = (target - (cumulative - in_bucket)) / in_bucket
                return lo + fraction * (hi - lo)
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    # -- worker-state marshalling --------------------------------------------

    def state(self) -> dict:
        """Raw mergeable state (shared boundaries make it additive)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's (delta) state into this one."""
        self.count += int(state["count"])
        self.sum += float(state["sum"])
        if state["min"] < self.min:
            self.min = float(state["min"])
        if state["max"] > self.max:
            self.max = float(state["max"])
        buckets = state["buckets"]
        for i, n in enumerate(buckets):
            if n:
                self.buckets[i] += n

    @classmethod
    def from_state(cls, name: str, state: dict) -> "Histogram":
        """A standalone histogram rebuilt from a (delta) state dict."""
        h = cls(name)
        h.merge_state(state)
        return h


_lock = threading.Lock()
_registry: dict[str, Counter | Gauge | Histogram] = {}


def _get_or_create(name: str, cls):
    with _lock:
        metric = _registry.get(name)
        if metric is None:
            metric = _registry[name] = cls(name)
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric


def counter(name: str) -> Counter:
    """Get-or-create the named counter."""
    return _get_or_create(name, Counter)


def gauge(name: str) -> Gauge:
    """Get-or-create the named gauge."""
    return _get_or_create(name, Gauge)


def histogram(name: str) -> Histogram:
    """Get-or-create the named histogram."""
    return _get_or_create(name, Histogram)


def snapshot() -> dict:
    """Plain-dict snapshot of every registered metric."""
    with _lock:
        return {name: m.to_dict() for name, m in sorted(_registry.items())}


def registry_items() -> list:
    """``(name, metric)`` pairs, sorted — the exposition endpoint's feed.

    The metric objects are the live registry entries (the registry only
    ever grows); callers must treat them as read-only.
    """
    with _lock:
        return sorted(_registry.items())


def reset_metrics() -> None:
    """Drop all registered metrics (tests and benchmark isolation)."""
    with _lock:
        _registry.clear()


def histogram_states() -> dict[str, dict]:
    """Mergeable state of every registered histogram, by name."""
    with _lock:
        return {
            name: m.state()
            for name, m in _registry.items()
            if isinstance(m, Histogram)
        }


def histogram_deltas(before: dict[str, dict]) -> dict[str, dict]:
    """Per-histogram state deltas since a :func:`histogram_states` call.

    Bucket counts and count/sum subtract exactly; min/max cannot be
    un-merged, so the delta carries the *current* min/max (a superset
    window — quantile clamping stays conservative). Histograms with no
    new observations are omitted.
    """
    out: dict[str, dict] = {}
    for name, after in histogram_states().items():
        base = before.get(name)
        if base is None:
            if after["count"]:
                out[name] = after
            continue
        count = after["count"] - base["count"]
        if count <= 0:
            continue
        out[name] = {
            "count": count,
            "sum": after["sum"] - base["sum"],
            "min": after["min"],
            "max": after["max"],
            "buckets": [
                a - b for a, b in zip(after["buckets"], base["buckets"])
            ],
        }
    return out


def merge_histogram_deltas(deltas: dict[str, dict]) -> None:
    """Re-observe worker histogram deltas into this process's registry."""
    for name, state in deltas.items():
        if state.get("count"):
            histogram(name).merge_state(state)


class observe_duration:
    """Time a block into a histogram: ``with observe_duration("x.ms"): …``.

    Records elapsed wall milliseconds on clean exit only (a failed model
    call's duration is an attempt, not a latency sample). No-op when
    observability is disabled — one attribute load and one branch, the
    same bar :class:`repro.obs.trace.span` clears. This is the blessed
    timing primitive: ``scripts/check_metric_names.py`` bans raw
    ``time.perf_counter()`` timing outside ``repro.obs``.
    """

    __slots__ = ("_name", "_t0")

    def __init__(self, name: str) -> None:
        self._name = name
        self._t0 = None

    def __enter__(self) -> "observe_duration":
        if trace.enabled():
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._t0 is not None and exc_type is None:
            histogram(self._name).observe(
                (time.perf_counter() - self._t0) * 1000.0
            )
        self._t0 = None
        return False


def record_model_eval(rows: int, calls: int = 1) -> None:
    """Attribute ``calls`` black-box evaluations batching ``rows`` rows.

    No-op when observability is disabled. Otherwise increments the
    global ``model.calls`` / ``model.rows`` counters and the innermost
    open span's cumulative counters.
    """
    if not trace.enabled():
        return
    with _lock:
        c = _registry.get("model.calls")
        if c is None:
            c = _registry["model.calls"] = Counter("model.calls")
        r = _registry.get("model.rows")
        if r is None:
            r = _registry["model.rows"] = Counter("model.rows")
        c.value += calls
        r.value += rows
    active = trace.current_span()
    if active is not None:
        active.add_model_evals(calls, rows)


def meter_predict_fn(fn):
    """Wrap a normalized predict function with the model-eval meter.

    The wrapped function is marked so double-wrapping (e.g. a predict
    function passed back through ``as_predict_fn``) never double-counts.
    """
    if getattr(fn, "__repro_metered__", False):
        return fn

    def metered(X):
        out = fn(X)
        record_model_eval(rows=int(getattr(out, "size", 0) or len(out)))
        return out

    metered.__repro_metered__ = True
    metered.__wrapped__ = fn
    return metered
