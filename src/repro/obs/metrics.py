"""Counters, histograms, and the model-eval meter.

The single most important metric in the library is the **model-eval
meter**: :func:`record_model_eval` is called by the wrapper that
:func:`repro.core.base.as_predict_fn` installs around every normalized
predict function, so each black-box query is counted twice over —

* ``calls``: how many times the predict function was invoked, and
* ``rows``: how many rows those invocations batched in total.

The distinction matters for the cost model: a KernelSHAP run with 130
coalitions against a 100-row background is *one or two calls* but
*13 000 rows* — batching is exactly the lever the ROADMAP's "fast as the
hardware allows" goal pulls, and calls/rows makes it visible.

Every eval is attributed to the innermost open span (so ``explain()``
spans carry their own cost) *and* to the process-global counters
``model.calls`` / ``model.rows``.
"""

from __future__ import annotations

import threading

from . import trace

__all__ = [
    "Counter",
    "Histogram",
    "counter",
    "histogram",
    "record_model_eval",
    "meter_predict_fn",
    "snapshot",
    "reset_metrics",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count/sum/min/max plus power-of-two bucket counts (bucket ``k``
    holds values in ``[2^(k-1), 2^k)``; bucket 0 holds values < 1), which
    is enough for the latency summaries the CLI prints without storing
    samples.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    N_BUCKETS = 32

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * self.N_BUCKETS

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = 0
        v = value
        while v >= 1.0 and bucket < self.N_BUCKETS - 1:
            v /= 2.0
            bucket += 1
        self.buckets[bucket] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }


_lock = threading.Lock()
_registry: dict[str, Counter | Histogram] = {}


def counter(name: str) -> Counter:
    """Get-or-create the named counter."""
    with _lock:
        metric = _registry.get(name)
        if metric is None:
            metric = _registry[name] = Counter(name)
        elif not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric


def histogram(name: str) -> Histogram:
    """Get-or-create the named histogram."""
    with _lock:
        metric = _registry.get(name)
        if metric is None:
            metric = _registry[name] = Histogram(name)
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
        return metric


def snapshot() -> dict:
    """Plain-dict snapshot of every registered metric."""
    with _lock:
        return {name: m.to_dict() for name, m in sorted(_registry.items())}


def reset_metrics() -> None:
    """Drop all registered metrics (tests and benchmark isolation)."""
    with _lock:
        _registry.clear()


def record_model_eval(rows: int, calls: int = 1) -> None:
    """Attribute ``calls`` black-box evaluations batching ``rows`` rows.

    No-op when observability is disabled. Otherwise increments the
    global ``model.calls`` / ``model.rows`` counters and the innermost
    open span's cumulative counters.
    """
    if not trace.enabled():
        return
    with _lock:
        c = _registry.get("model.calls")
        if c is None:
            c = _registry["model.calls"] = Counter("model.calls")
        r = _registry.get("model.rows")
        if r is None:
            r = _registry["model.rows"] = Counter("model.rows")
        c.value += calls
        r.value += rows
    active = trace.current_span()
    if active is not None:
        active.add_model_evals(calls, rows)


def meter_predict_fn(fn):
    """Wrap a normalized predict function with the model-eval meter.

    The wrapped function is marked so double-wrapping (e.g. a predict
    function passed back through ``as_predict_fn``) never double-counts.
    """
    if getattr(fn, "__repro_metered__", False):
        return fn

    def metered(X):
        out = fn(X)
        record_model_eval(rows=int(getattr(out, "size", 0) or len(out)))
        return out

    metered.__repro_metered__ = True
    metered.__wrapped__ = fn
    return metered
