"""Auto-instrumentation of explainer entry points.

:func:`instrument_explainer` wraps a class's own ``explain`` /
``explain_batch`` definitions in spans, so every explanation reports
``{explainer, n_features, wall_ms, model_evals, rows_evaluated}``
without any per-module code. It is applied two ways:

* automatically, from ``Explainer.__init_subclass__`` in
  :mod:`repro.core.base` — covers every explainer deriving from the
  common base (KernelSHAP, sampling SHAP, LIME, DiCE, GeCo, QII, …);
* explicitly, as a class decorator on the explainers that predate the
  base class (Anchors, TreeSHAP, the causal Shapley family, text LIME).

Only methods *defined on the class itself* are wrapped (inherited
wrapped methods are not re-wrapped), and each wrapper is marked so the
two application paths can never double-span one call.
"""

from __future__ import annotations

import functools

from .ledger import record_run
from .metrics import counter, histogram
from .trace import current_span, enabled, span

__all__ = ["instrument_explainer"]

_METHODS = ("explain", "explain_batch")

# Latency histograms auto-fed by the wrappers (dotted-lowercase names,
# see scripts/check_metric_names.py).
_WALL_HISTOGRAMS = {
    "explain": "explain.wall_ms",
    "explain_batch": "explain_batch.wall_ms",
}


def _instance_size(value) -> int | None:
    """Feature/row count of an explain argument, if it looks array-like."""
    shape = getattr(value, "shape", None)
    if shape is not None:
        try:
            return int(shape[0]) if len(shape) == 1 else int(shape[-1])
        except (TypeError, ValueError, IndexError):
            # Exotic shape objects must not break instrumentation, but the
            # swallow stays visible instead of silent.
            counter("obs.internal_errors").inc()
            return None
    if isinstance(value, (list, tuple)):
        return len(value)
    return None


def _wrap(method_name: str, fn):
    size_attr = "n_rows" if method_name == "explain_batch" else "n_features"

    @functools.wraps(fn)
    def traced(self, *args, **kwargs):
        if not enabled():
            return fn(self, *args, **kwargs)
        attrs = {"explainer": getattr(self, "method_name", type(self).__name__)}
        target = args[0] if args else kwargs.get("x", kwargs.get("X"))
        if method_name == "explain_batch" and target is not None:
            shape = getattr(target, "shape", None)
            if shape is not None:
                attrs["n_rows"] = int(shape[0]) if len(shape) > 1 else 1
            elif isinstance(target, (list, tuple)):
                attrs["n_rows"] = len(target)
        else:
            size = _instance_size(target)
            if size is not None:
                attrs[size_attr] = size
        # A per-row explain inside explain_batch is a sub-call, not a
        # run: only top-level entry points feed the latency histograms
        # and the run ledger (nesting under a user experiment span is
        # still a run).
        outer = current_span()
        is_run = outer is None or outer.name not in _METHODS
        sp = None
        try:
            with span(method_name, **attrs) as sp:
                result = fn(self, *args, **kwargs)
        except Exception as exc:
            if is_run and sp is not None:
                record_run(sp, explainer=self, error=exc)
            raise
        if is_run:
            wall_ms = getattr(sp, "wall_ms", None)
            if wall_ms is not None:
                histogram(_WALL_HISTOGRAMS[method_name]).observe(wall_ms)
            record_run(sp, explainer=self, result=result)
        return result

    traced.__repro_traced__ = True
    return traced


def instrument_explainer(cls):
    """Class decorator: span-wrap the class's own explain entry points."""
    for name in _METHODS:
        fn = cls.__dict__.get(name)
        if fn is None:
            continue
        if getattr(fn, "__repro_traced__", False):
            continue
        if getattr(fn, "__isabstractmethod__", False):
            continue
        if isinstance(fn, (staticmethod, classmethod)):
            continue
        setattr(cls, name, _wrap(name, fn))
    return cls
