"""Spans, the process-global tracer, and JSONL export.

The tutorial's cost axis for post-hoc XAI is *model-query complexity*:
KernelSHAP, LIME, Anchors and the counterfactual searches all trade
fidelity against black-box evaluations. This module is the floor that
makes that cost observable — a dependency-free span tracer in the spirit
of OpenTelemetry, small enough to sit inside every ``explain()`` call
without moving the numbers it measures.

Design constraints:

* **Zero third-party deps** — stdlib only (``contextvars``, ``time``,
  ``json``, ``threading``).
* **Near-zero cost when disabled** — ``REPRO_OBS=0`` turns ``span`` into
  a no-op context manager (one attribute load + one branch).
* **Thread-safe** — span parenthood rides on a :mod:`contextvars`
  variable, so concurrent explainers in different threads never splice
  into each other's traces; the tracer's record buffer is lock-guarded.

Span schema (one JSON object per line in the JSONL export)::

    {"span_id": 7, "parent_id": 3, "name": "explain",
     "t_start": 1754..., "wall_ms": 12.4,
     "model_evals": 130, "rows_evaluated": 13000,
     "attrs": {"explainer": "kernel_shap", "n_features": 8}}

``model_evals`` counts *calls* into the wrapped predict function;
``rows_evaluated`` counts the rows those calls batched. Both are
cumulative: when a span closes, its totals roll up into its parent, so
an ``explain_batch`` span reports the cost of all its per-row children.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "adopt_span_records",
    "enabled",
    "set_enabled",
    "trace_sample",
    "set_trace_sample",
]

_TRUTHY_OFF = ("0", "false", "off", "no")

_enabled = os.environ.get("REPRO_OBS", "1").strip().lower() not in _TRUTHY_OFF


def enabled() -> bool:
    """Whether the observability layer is recording (env ``REPRO_OBS``)."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Programmatically enable/disable recording (overrides the env var)."""
    global _enabled
    _enabled = bool(flag)


def _parse_sample(raw: str | None) -> int:
    """Sampling stride from a keep-rate string (1.0 → 1, 0.1 → 10)."""
    if not raw:
        return 1
    try:
        rate = float(raw)
    except ValueError:
        return 1
    if rate >= 1.0:
        return 1
    if rate <= 0.0:
        return 0
    return max(1, round(1.0 / rate))


# Trace sampling (env REPRO_TRACE_SAMPLE, a keep rate in [0, 1]) bounds
# the cost of always-on tracing: only every Nth *root* span tree is
# handed to the tracer / JSONL export. Sampling is deterministic
# (a stride counter, not a coin flip) and structural — children follow
# their root's fate, so sampled traces are always complete trees.
# Metrics (histograms, counters, the model-eval meter) are never
# sampled; they observe every event regardless.
_sample_stride = _parse_sample(os.environ.get("REPRO_TRACE_SAMPLE"))
_sample_counter = itertools.count()


def trace_sample() -> float:
    """The effective trace keep-rate (1.0 = keep every root span)."""
    return 0.0 if _sample_stride == 0 else 1.0 / _sample_stride


def set_trace_sample(rate: float | None) -> None:
    """Programmatically set the trace keep-rate (overrides the env var)."""
    global _sample_stride
    _sample_stride = _parse_sample(None if rate is None else str(rate))


def _sample_keep() -> bool:
    if _sample_stride == 1:
        return True
    if _sample_stride == 0:
        return False
    return next(_sample_counter) % _sample_stride == 0


_span_ids = itertools.count(1)
_ROLLUP_LOCK = threading.Lock()
_current: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def _internal_error() -> None:
    """Count a swallowed instrumentation failure so it stays visible."""
    from . import metrics  # local: metrics imports this module at top level

    metrics.counter("obs.internal_errors").inc()


def _jsonable(value):
    """Best-effort conversion of attr values to JSON-safe scalars."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        try:
            return value.item()
        except (TypeError, ValueError):
            _internal_error()
    return str(value)


class Span:
    """One timed, attributed unit of work. Created via :class:`span`."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "t_start",
        "_t0",
        "_c0",
        "wall_ms",
        "cpu_ms",
        "model_evals",
        "rows_evaluated",
        "retries",
        "status",
        "sampled",
    )

    def __init__(self, name: str, attrs: dict, parent_id: int | None) -> None:
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.t_start = time.time()
        self._t0 = time.perf_counter()
        self._c0 = time.thread_time()
        self.wall_ms: float | None = None
        self.cpu_ms: float | None = None
        self.model_evals = 0
        self.rows_evaluated = 0
        self.retries = 0
        self.status = "ok"
        self.sampled = True

    def add_model_evals(self, calls: int, rows: int) -> None:
        """Attribute ``calls`` predict-fn calls batching ``rows`` rows.

        Guarded by a shared lock: a parallel ``explain_batch`` closes its
        per-instance child spans from worker threads, and each close rolls
        counters up into the same parent span.
        """
        with _ROLLUP_LOCK:
            self.model_evals += calls
            self.rows_evaluated += rows

    def add_retries(self, n: int = 1) -> None:
        """Attribute ``n`` guarded-model retries (rolls up like evals)."""
        with _ROLLUP_LOCK:
            self.retries += n

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "wall_ms": self.wall_ms,
            "cpu_ms": self.cpu_ms,
            "model_evals": self.model_evals,
            "rows_evaluated": self.rows_evaluated,
            "retries": self.retries,
            "status": self.status,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"wall_ms={self.wall_ms}, evals={self.model_evals})"
        )


class _NullSpan:
    """Returned by ``span(...)`` when observability is disabled."""

    __slots__ = ()

    def add_model_evals(self, calls: int, rows: int) -> None:
        pass

    def add_retries(self, n: int = 1) -> None:
        pass

    def set_attr(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Process-global sink for finished spans, with optional JSONL export.

    Finished spans are kept in an in-memory ring (bounded by
    ``max_spans``; overflow increments ``dropped``) and, when an export
    is active, appended to a JSONL file as they close.
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._max_spans = max_spans
        self.dropped = 0
        self._export_path: str | None = None
        self._export_file = None

    # -- recording ----------------------------------------------------------

    def record(self, finished: Span) -> None:
        with self._lock:
            if len(self._spans) < self._max_spans:
                self._spans.append(finished)
            else:
                self.dropped += 1
            if self._export_file is not None:
                json.dump(finished.to_dict(), self._export_file)
                self._export_file.write("\n")
                self._export_file.flush()

    def spans(self) -> list[Span]:
        """Snapshot of all recorded spans (closed spans only)."""
        with self._lock:
            return list(self._spans)

    def mark(self) -> int:
        """Bookmark the current span count; pair with :meth:`spans_since`."""
        with self._lock:
            return len(self._spans)

    def spans_since(self, mark: int) -> list[Span]:
        with self._lock:
            return list(self._spans[mark:])

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    # -- export -------------------------------------------------------------

    def start_export(self, path: str) -> None:
        """Stream every subsequently closed span to ``path`` as JSONL."""
        with self._lock:
            if self._export_file is not None:
                self._export_file.close()
            self._export_path = path
            self._export_file = open(path, "w", encoding="utf-8")

    def stop_export(self) -> str | None:
        """Close the JSONL stream; returns the path that was written."""
        with self._lock:
            path, self._export_path = self._export_path, None
            if self._export_file is not None:
                self._export_file.close()
                self._export_file = None
            return path

    def export(self, path: str) -> int:
        """Dump every recorded span to ``path`` (JSONL); returns the count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as f:
            for s in spans:
                json.dump(s.to_dict(), f)
                f.write("\n")
        return len(spans)


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _tracer


def current_span() -> Span | None:
    """The innermost open span on this thread, or ``None``."""
    return _current.get()


def adopt_span_records(records: list[dict]) -> None:
    """Graft span records from a worker process into this trace.

    The exec backend ships each worker's closed spans back as
    ``Span.to_dict()`` payloads. Adoption re-keys them with fresh local
    span ids (worker id counters collide across forks), preserves the
    parent links *internal* to the shipped batch, and re-parents the
    batch's roots under the caller's currently open span — so a
    ``coalition_eval`` recorded inside a worker renders as a child of
    the parent's ``explain`` span, exactly where its serial twin would
    sit. The roots' eval/retry totals also roll up into the open span
    (children's totals are already folded into their roots, worker-side,
    by the normal close-time rollup). Metric counters are *not* touched
    here — the counter-delta merge owns those.
    """
    if not _enabled or not records:
        return
    # Pass 1: allocate fresh ids. Workers close children before parents,
    # so a record's parent (if shipped at all) appears later in the list
    # — the id map must be complete before links are rewritten.
    id_map: dict[int, int] = {}
    for rec in records:
        id_map[rec["span_id"]] = next(_span_ids)
    ambient = _current.get()
    ambient_id = ambient.span_id if ambient is not None else None
    for rec in records:
        s = Span.__new__(Span)
        s.span_id = id_map[rec["span_id"]]
        old_parent = rec.get("parent_id")
        is_root = old_parent not in id_map
        s.parent_id = id_map.get(old_parent, ambient_id)
        s.name = rec.get("name", "")
        s.attrs = dict(rec.get("attrs") or {})
        s.t_start = rec.get("t_start", 0.0)
        s._t0 = 0.0
        s._c0 = 0.0
        s.sampled = True
        s.wall_ms = rec.get("wall_ms")
        s.cpu_ms = rec.get("cpu_ms")
        s.model_evals = int(rec.get("model_evals") or 0)
        s.rows_evaluated = int(rec.get("rows_evaluated") or 0)
        s.retries = int(rec.get("retries") or 0)
        s.status = rec.get("status", "ok")
        if is_root and ambient is not None:
            ambient.add_model_evals(s.model_evals, s.rows_evaluated)
            if s.retries:
                ambient.add_retries(s.retries)
        _tracer.record(s)


class span:
    """Context manager opening a span: ``with span("explain", k=v): ...``.

    Cheap when disabled (returns a shared no-op object); when enabled it
    links into the ambient trace via a contextvar, measures monotonic
    wall time, and on close rolls its eval counters up into its parent
    before handing itself to the global tracer.
    """

    __slots__ = ("_name", "_attrs", "_span", "_token")

    def __init__(self, name: str, **attrs) -> None:
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None
        self._token = None

    def __enter__(self):
        if not _enabled:
            return _NULL_SPAN
        parent = _current.get()
        self._span = Span(
            self._name,
            dict(self._attrs),
            parent.span_id if parent is not None else None,
        )
        # Children follow their root's sampling fate so recorded traces
        # are always complete trees; the span object itself still exists
        # either way (rollups, the eval meter and the wall-time
        # histograms see every event — sampling only gates the tracer).
        self._span.sampled = (
            parent.sampled if parent is not None else _sample_keep()
        )
        self._token = _current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is None:
            return False
        s = self._span
        s.wall_ms = (time.perf_counter() - s._t0) * 1000.0
        s.cpu_ms = (time.thread_time() - s._c0) * 1000.0
        if exc_type is not None:
            s.status = f"error:{exc_type.__name__}"
        _current.reset(self._token)
        parent = _current.get()
        if parent is not None:
            parent.add_model_evals(s.model_evals, s.rows_evaluated)
            if s.retries:
                parent.add_retries(s.retries)
        if s.sampled:
            _tracer.record(s)
        self._span = None
        return False
