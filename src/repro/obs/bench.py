"""Machine-readable benchmark telemetry writers.

The experiment suite (``benchmarks/bench_e*.py``) historically emitted
ad-hoc text tables; the perf-trajectory file ``BENCH_summary.json``
stayed empty because nothing structured was ever written. This module
gives ``benchmarks/conftest.emit`` its persistence layer:

* :func:`write_benchmark_result` — one ``<experiment>.txt`` (human
  table, now with an id + ISO-timestamp header) and one
  ``<experiment>.json`` per experiment, both written atomically
  (temp file + ``os.replace``) so a crashed or interrupted run never
  leaves a torn result behind;
* :func:`update_bench_summary` — read-merge-replace of the top-level
  ``BENCH_summary.json`` mapping experiment ids to their latest entry.

Everything is UTF-8 with explicit encodings; non-UTF8 environments can
no longer silently corrupt result files.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import tempfile

__all__ = [
    "SCHEMA_VERSION",
    "git_sha",
    "utc_timestamp",
    "atomic_write_text",
    "write_benchmark_result",
    "update_bench_summary",
]

# Bump when the result/summary payload shape changes. v1: the implicit
# PR 1 shape (no version field). v2: git_sha + schema_version headers,
# latency quantiles in entries.
SCHEMA_VERSION = 2

_GIT_SHA: str | None | bool = False  # False = not resolved yet


def git_sha() -> str | None:
    """The repo's short HEAD sha, or ``None`` outside a git checkout.

    Resolved once per process: benchmark writers stamp every result
    with it so the perf trajectory is attributable to commits.
    """
    global _GIT_SHA
    if _GIT_SHA is False:
        try:
            _GIT_SHA = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = None
    return _GIT_SHA


def utc_timestamp() -> str:
    """ISO-8601 UTC timestamp with second precision."""
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
    )


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp file)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp_", suffix=".part")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_benchmark_result(
    results_dir: str,
    experiment: str,
    lines: list[str],
    data=None,
    wall_s: float | None = None,
    counters: dict | None = None,
    spans: list[dict] | None = None,
    timestamp: str | None = None,
) -> str:
    """Persist one experiment's result table + telemetry.

    Writes ``<experiment>.txt`` (banner + header + table) and
    ``<experiment>.json`` (the same lines plus optional structured
    ``data`` rows, wall time, model-eval ``counters`` and span
    ``spans`` aggregates). Returns the JSON path.
    """
    timestamp = timestamp or utc_timestamp()
    banner = f"==== {experiment} ===="
    header = f"# experiment: {experiment} | generated: {timestamp}"
    atomic_write_text(
        os.path.join(results_dir, f"{experiment}.txt"),
        "\n".join([banner, header, *lines]) + "\n",
    )
    payload = {
        "experiment": experiment,
        "schema_version": SCHEMA_VERSION,
        "git_sha": git_sha(),
        "timestamp": timestamp,
        "wall_s": None if wall_s is None else round(float(wall_s), 6),
        "lines": list(lines),
        "data": data,
        "counters": counters or {},
        "spans": spans or [],
    }
    json_path = os.path.join(results_dir, f"{experiment}.json")
    atomic_write_text(json_path, json.dumps(payload, indent=2) + "\n")
    return json_path


def update_bench_summary(summary_path: str, experiment: str, entry: dict
                         ) -> dict:
    """Merge one experiment entry into the summary file, atomically.

    The summary maps experiment id → latest entry; unknown or corrupt
    existing content is replaced rather than crashing the benchmark run.
    Returns the merged mapping.
    """
    merged: dict = {}
    try:
        with open(summary_path, encoding="utf-8") as f:
            existing = json.load(f)
        if isinstance(existing, dict):
            merged = existing
    except (OSError, ValueError):
        pass
    experiments = merged.setdefault("experiments", {})
    if not isinstance(experiments, dict):
        experiments = merged["experiments"] = {}
    experiments[experiment] = entry
    merged["updated"] = entry.get("timestamp") or utc_timestamp()
    merged["n_experiments"] = len(experiments)
    merged["schema_version"] = SCHEMA_VERSION
    merged["git_sha"] = git_sha()
    atomic_write_text(summary_path, json.dumps(merged, indent=2,
                                               sort_keys=True) + "\n")
    return merged
