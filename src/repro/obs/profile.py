"""Phase-level profiles and folded-stack exports from span trees.

The span tracer records *what happened*; this module answers *where the
time went*. Two views, both derived purely from closed span records
(live :class:`~repro.obs.trace.Span` objects or their ``to_dict()`` /
JSONL rows — the two are interchangeable everywhere here):

* :func:`phase_profile` — per-phase (span name) totals of wall and CPU
  milliseconds, split into *total* (the span's own clock) and *self*
  (total minus the time attributed to child spans), plus call counts
  and model-eval rollups. ``self`` is the number that tells you which
  layer to optimize: an ``explain`` phase with almost no self-time is
  pure orchestration, a fat ``coalition_eval`` self-time is the model.
* :func:`folded_stacks` / :func:`render_folded` /
  :func:`folded_from_jsonl` — the Brendan Gregg collapsed-stack text
  format (``root;child;leaf <weight>``, one line per unique stack),
  which every flamegraph renderer accepts. Weights are integer
  microseconds of *self* time, so the flame widths add up exactly to
  the profile totals.

Wall and CPU diverge exactly where they should: a span that sleeps (a
throttled model, backoff retries) is wide in wall and thin in CPU; a
span whose children ran in forked workers carries the workers' wall
time via span adoption while the parent's CPU stays flat.
"""

from __future__ import annotations

import json

from . import trace

__all__ = [
    "phase_profile",
    "phase_table",
    "folded_stacks",
    "render_folded",
    "folded_from_jsonl",
]

_WEIGHTS = ("wall_ms", "cpu_ms")


def _records(spans=None) -> list[dict]:
    """Normalize input to span-record dicts (default: the global tracer)."""
    if spans is None:
        spans = trace.get_tracer().spans()
    return [s if isinstance(s, dict) else s.to_dict() for s in spans]


def _tree(records: list[dict]):
    """``(roots, children_by_id)`` — records whose parent wasn't shipped
    (or who have none) are roots."""
    by_id = {r["span_id"]: r for r in records}
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for r in records:
        pid = r.get("parent_id")
        if pid in by_id:
            children.setdefault(pid, []).append(r)
        else:
            roots.append(r)
    return roots, children


def _self_ms(rec: dict, children: dict, key: str) -> float:
    """The record's ``key`` time minus its children's (floored at 0 —
    adopted worker spans can legitimately out-wall their parent)."""
    total = rec.get(key) or 0.0
    spent = sum(c.get(key) or 0.0 for c in children.get(rec["span_id"], ()))
    return max(0.0, total - spent)


def phase_profile(spans=None) -> list[dict]:
    """Per-phase wall/CPU attribution, heaviest self-wall first.

    Each row: ``{phase, count, wall_ms, self_wall_ms, cpu_ms,
    self_cpu_ms, model_evals, rows_evaluated}``. Totals sum the spans'
    own clocks (so nested phases overlap by design); self columns are
    disjoint and sum to the roots' totals.
    """
    records = _records(spans)
    __, children = _tree(records)
    phases: dict[str, dict] = {}
    for r in records:
        row = phases.setdefault(
            r["name"],
            {
                "phase": r["name"],
                "count": 0,
                "wall_ms": 0.0,
                "self_wall_ms": 0.0,
                "cpu_ms": 0.0,
                "self_cpu_ms": 0.0,
                "model_evals": 0,
                "rows_evaluated": 0,
            },
        )
        row["count"] += 1
        row["wall_ms"] += r.get("wall_ms") or 0.0
        row["cpu_ms"] += r.get("cpu_ms") or 0.0
        row["self_wall_ms"] += _self_ms(r, children, "wall_ms")
        row["self_cpu_ms"] += _self_ms(r, children, "cpu_ms")
        row["model_evals"] += int(r.get("model_evals") or 0)
        row["rows_evaluated"] += int(r.get("rows_evaluated") or 0)
    return sorted(
        phases.values(), key=lambda row: row["self_wall_ms"], reverse=True
    )


def phase_table(spans=None) -> str:
    """The phase profile as an aligned text table (CLI rendering)."""
    rows = phase_profile(spans)
    if not rows:
        return "(no spans recorded)"
    header = (
        "phase", "count", "wall_ms", "self_ms", "cpu_ms", "self_cpu", "evals"
    )
    cells = [header] + [
        (
            row["phase"],
            str(row["count"]),
            f"{row['wall_ms']:.1f}",
            f"{row['self_wall_ms']:.1f}",
            f"{row['cpu_ms']:.1f}",
            f"{row['self_cpu_ms']:.1f}",
            str(row["model_evals"]),
        )
        for row in rows
    ]
    widths = [max(len(line[i]) for line in cells) for i in range(len(header))]
    lines = []
    for k, line in enumerate(cells):
        lines.append(
            "  ".join(
                c.ljust(widths[i]) if i == 0 else c.rjust(widths[i])
                for i, c in enumerate(line)
            )
        )
        if k == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def folded_stacks(spans=None, weight: str = "wall_ms") -> dict[str, float]:
    """Self-time (ms) per unique root-to-node stack path.

    Keys are ``;``-joined span names from a root down; values are the
    milliseconds spent in that node *itself* (children excluded), summed
    over every occurrence of the path. ``weight`` selects the clock
    (``wall_ms`` or ``cpu_ms``).
    """
    if weight not in _WEIGHTS:
        raise ValueError(f"weight must be one of {_WEIGHTS}, got {weight!r}")
    records = _records(spans)
    roots, children = _tree(records)
    folded: dict[str, float] = {}
    stack = [(root, "") for root in roots]
    while stack:
        rec, prefix = stack.pop()
        path = f"{prefix};{rec['name']}" if prefix else rec["name"]
        folded[path] = folded.get(path, 0.0) + _self_ms(rec, children, weight)
        for child in children.get(rec["span_id"], ()):
            stack.append((child, path))
    return folded


def render_folded(folded: dict[str, float]) -> str:
    """Collapsed-stack text: ``stack <integer microseconds>`` per line.

    The format flamegraph renderers consume; zero-weight pure-frame
    stacks are kept (width 0) so the hierarchy stays visible to tools
    that reconstruct it.
    """
    return "\n".join(
        f"{path} {max(0, round(ms * 1000.0))}"
        for path, ms in sorted(folded.items())
    )


def folded_from_jsonl(path: str, weight: str = "wall_ms") -> str:
    """Folded-stack text from a trace JSONL file (``repro trace`` output,
    :meth:`Tracer.export`, or a streamed export)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return render_folded(folded_stacks(records, weight=weight))
