"""Linear model trees: contextual surrogate explanations
[Lahiri & Edakunni 2020; bLIMEy-style modular surrogates] (§2.1.1).

A linear model tree (LMT) partitions the input space with a shallow CART
tree and fits a ridge model *within each leaf*. As a global surrogate it
dominates a single linear fit on non-linear black boxes; as a local
explainer it returns the leaf's linear coefficients for the queried
instance — an explanation whose scope (the leaf's region) is explicit,
addressing LIME's silent-locality problem: you can see exactly where the
explanation applies and how well it fits there.
"""

from __future__ import annotations

import numpy as np

from ..core.base import Explainer
from ..core.explanation import FeatureAttribution, Predicate, RuleExplanation
from ..models.linear import RidgeRegression
from ..models.tree import DecisionTreeRegressor

__all__ = ["LinearModelTree"]


class LinearModelTree(Explainer):
    """Tree-of-linear-models surrogate for a black box.

    Parameters
    ----------
    max_depth:
        Depth of the partitioning tree (number of contexts ≤ 2^depth).
    alpha:
        Ridge penalty of the per-leaf linear models.
    """

    method_name = "linear_model_tree"

    def __init__(
        self,
        model,
        max_depth: int = 2,
        min_samples_leaf: int = 20,
        alpha: float = 1.0,
        output: str = "auto",
    ) -> None:
        super().__init__(model, output)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.alpha = alpha

    def fit(self, X: np.ndarray) -> "LinearModelTree":
        """Fit the partition and per-leaf models to the black box on X."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        scores = self.predict_fn(X)
        self._partition = DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=max(self.min_samples_leaf, 2),
        ).fit(X, scores)
        leaves = self._partition.tree_.apply(X)
        self._leaf_models: dict[int, RidgeRegression] = {}
        for leaf in np.unique(leaves):
            members = leaves == leaf
            member_scores = scores[members]
            leaf_model = RidgeRegression(alpha=self.alpha)
            if members.sum() >= 2 and np.ptp(member_scores) > 1e-12:
                leaf_model.fit(X[members], member_scores)
            else:
                # Degenerate leaf: constant model.
                leaf_model.coef_ = np.zeros(X.shape[1])
                leaf_model.intercept_ = float(member_scores.mean())
                leaf_model._n_features = X.shape[1]
            self._leaf_models[int(leaf)] = leaf_model
        self._n_features = X.shape[1]
        return self

    @property
    def n_contexts(self) -> int:
        """Number of linear regimes the surrogate distinguishes."""
        self._require_fit()
        return len(self._leaf_models)

    def _require_fit(self) -> None:
        if not hasattr(self, "_leaf_models"):
            raise RuntimeError("call fit() first")

    def surrogate_predict(self, X: np.ndarray) -> np.ndarray:
        """The surrogate's own predictions (leaf-wise linear)."""
        self._require_fit()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        leaves = self._partition.tree_.apply(X)
        out = np.zeros(X.shape[0])
        for leaf in np.unique(leaves):
            members = leaves == leaf
            out[members] = self._leaf_models[int(leaf)].predict(X[members])
        return out

    def fidelity(self, X: np.ndarray) -> float:
        """R² of the surrogate against the black box on X."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        scores = self.predict_fn(X)
        predictions = self.surrogate_predict(X)
        ss_res = float(np.sum((scores - predictions) ** 2))
        ss_tot = float(np.sum((scores - scores.mean()) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0

    def context_of(self, x: np.ndarray,
                   feature_names: list[str] | None = None) -> RuleExplanation:
        """The region (root-to-leaf rule) the explanation of x applies to."""
        self._require_fit()
        x = np.asarray(x, dtype=float).ravel()
        predicates = []
        for __, feature, threshold, went_left in (
            self._partition.tree_.decision_path(x)
        ):
            name = feature_names[feature] if feature_names else f"x{feature}"
            op = "<=" if went_left else ">"
            predicates.append(Predicate(feature, op, float(threshold), name))
        return RuleExplanation(
            predicates=predicates, outcome=float("nan"),
            precision=1.0, coverage=0.0, method=self.method_name,
        )

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        """Local explanation: the active leaf's linear coefficients."""
        self._require_fit()
        x = np.asarray(x, dtype=float).ravel()
        leaf = int(self._partition.tree_.apply(x[None, :])[0])
        leaf_model = self._leaf_models[leaf]
        names = feature_names or [f"x{i}" for i in range(self._n_features)]
        return FeatureAttribution(
            values=leaf_model.coef_.copy(),
            feature_names=names,
            base_value=leaf_model.intercept_,
            prediction=float(self.predict_fn(x[None, :])[0]),
            method=self.method_name,
            meta={"leaf": leaf, "n_contexts": self.n_contexts},
        )
