"""LIME: Local Interpretable Model-agnostic Explanations [Ribeiro+ 2016].

Explains one prediction of any black box by (1) sampling perturbed
variants of the instance, (2) weighting them by proximity with an
exponential kernel, and (3) fitting a sparse weighted linear surrogate on
a binary "feature kept / feature perturbed" representation. The surrogate
coefficients are the explanation.

Feature selection uses forward selection on weighted R² (the reference
implementation's ``forward_selection`` option). The fidelity of the
surrogate — its weighted R² on the perturbed neighborhood — is reported in
``meta`` because the tutorial's critique of LIME (§2.1.1) centers on when
that local fit silently fails.
"""

from __future__ import annotations

import numpy as np

from ..core.base import AttributionExplainer
from ..core.coalition_engine import batched_predict
from ..core.dataset import TabularDataset
from ..core.explanation import FeatureAttribution
from ..core.sampling import GaussianPerturber
from ..robust.guard import check_instance

__all__ = ["LimeTabularExplainer", "weighted_ridge", "forward_select"]


def weighted_ridge(
    Z: np.ndarray, y: np.ndarray, weights: np.ndarray, alpha: float = 1.0
) -> tuple[np.ndarray, float]:
    """Weighted ridge regression; returns ``(coef, intercept)``."""
    Z = np.atleast_2d(Z)
    n, d = Z.shape
    Zb = np.hstack([Z, np.ones((n, 1))])
    reg = alpha * np.eye(d + 1)
    reg[d, d] = 0.0
    A = Zb.T @ (weights[:, None] * Zb) + reg
    b = Zb.T @ (weights * y)
    theta = np.linalg.solve(A, b)
    return theta[:d], float(theta[d])


def _weighted_r2(
    Z: np.ndarray, y: np.ndarray, weights: np.ndarray,
    coef: np.ndarray, intercept: float,
) -> float:
    pred = Z @ coef + intercept
    w_mean = float(np.average(y, weights=weights))
    ss_res = float(np.average((y - pred) ** 2, weights=weights))
    ss_tot = float(np.average((y - w_mean) ** 2, weights=weights))
    if ss_tot == 0.0:
        return 0.0
    return 1.0 - ss_res / ss_tot


def forward_select(
    Z: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
    n_select: int,
    alpha: float = 1.0,
) -> list[int]:
    """Greedy forward selection maximizing weighted R² of the surrogate."""
    d = Z.shape[1]
    selected: list[int] = []
    remaining = set(range(d))
    while len(selected) < min(n_select, d):
        best_feature, best_score = -1, -np.inf
        for j in remaining:
            cols = selected + [j]
            coef, intercept = weighted_ridge(Z[:, cols], y, weights, alpha)
            score = _weighted_r2(Z[:, cols], y, weights, coef, intercept)
            if score > best_score:
                best_score, best_feature = score, j
        selected.append(best_feature)
        remaining.discard(best_feature)
    return selected


class LimeTabularExplainer(AttributionExplainer):
    """LIME for tabular data.

    Parameters
    ----------
    data:
        Training data providing perturbation statistics.
    n_samples:
        Size of the sampled neighborhood.
    kernel_width:
        Width of the exponential proximity kernel; defaults to the
        reference heuristic ``0.75·√d``.
    n_select:
        Number of features retained in the sparse surrogate (``None``
        keeps all).
    max_batch_rows:
        Memory bound on perturbed rows per model call (``None`` → env
        ``REPRO_MAX_BATCH_ROWS``); large neighborhoods are evaluated in
        chunks instead of one giant batch.
    """

    method_name = "lime"

    def __init__(
        self,
        model,
        data: TabularDataset,
        n_samples: int = 1000,
        kernel_width: float | None = None,
        n_select: int | None = None,
        alpha: float = 1.0,
        output: str = "auto",
        seed: int = 0,
        max_batch_rows: int | None = None,
        guard=None,
    ) -> None:
        super().__init__(model, output, guard=guard)
        self.data = data
        self.n_samples = n_samples
        self.max_batch_rows = max_batch_rows
        self.kernel_width = kernel_width or 0.75 * np.sqrt(data.n_features)
        self.n_select = n_select
        self.alpha = alpha
        self.seed = seed
        self._perturber = GaussianPerturber(data)
        stats = data.column_stats()
        self._mean, self._std = stats["mean"], stats["std"]

    def _proximity(self, Z: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Exponential kernel on standardized Euclidean distance."""
        scaled = (Z - x) / self._std
        distances = np.sqrt((scaled ** 2).sum(axis=1))
        return np.exp(-(distances ** 2) / self.kernel_width ** 2)

    def explain(self, x: np.ndarray, seed: int | None = None) -> FeatureAttribution:
        x = check_instance(x, self.data.n_features)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        Z, B = self._perturber.sample(x, self.n_samples, rng)
        y = batched_predict(self.predict_fn, Z, self.max_batch_rows)
        weights = self._proximity(Z, x)
        if self.n_select is not None and self.n_select < self.data.n_features:
            active = forward_select(B, y, weights, self.n_select, self.alpha)
        else:
            active = list(range(self.data.n_features))
        coef_active, intercept = weighted_ridge(
            B[:, active], y, weights, self.alpha
        )
        coef = np.zeros(self.data.n_features)
        coef[active] = coef_active
        fidelity = _weighted_r2(B[:, active], y, weights, coef_active, intercept)
        return FeatureAttribution(
            values=coef,
            feature_names=self.data.feature_names,
            base_value=intercept,
            prediction=float(self.predict_fn(x[None, :])[0]),
            method=self.method_name,
            meta={
                "fidelity_r2": fidelity,
                "selected": active,
                "n_samples": self.n_samples,
                "kernel_width": self.kernel_width,
            },
        )
