"""Global surrogate distillation (§2.1.1).

Where LIME fits a local surrogate around one instance, distillation fits
one *globally* interpretable model — here a shallow CART tree — to the
black box's own predictions over the data distribution. The distilled
tree's fidelity (agreement with the black box on held-out data) quantifies
how much of the model's behaviour a human-sized tree can capture, the
trade-off the tutorial highlights for surrogate methods.
"""

from __future__ import annotations

import numpy as np

from ..core.base import Explainer, as_predict_fn
from ..models.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["TreeDistiller"]


class TreeDistiller(Explainer):
    """Distill a black box into a shallow decision tree.

    Parameters
    ----------
    max_depth:
        Interpretability budget of the surrogate.
    task:
        ``"classification"`` thresholds black-box scores at 0.5 and fits a
        classification tree; ``"regression"`` fits the raw scores.
    augment:
        Extra perturbed samples drawn around the data (Gaussian, per-column
        std) to densify the distillation set; 0 uses the data alone.
    """

    def __init__(
        self,
        model,
        max_depth: int = 3,
        task: str = "classification",
        augment: int = 0,
        output: str = "auto",
        seed: int = 0,
    ) -> None:
        super().__init__(model, output)
        if task not in ("classification", "regression"):
            raise ValueError(f"unknown task {task!r}")
        self.max_depth = max_depth
        self.task = task
        self.augment = augment
        self.seed = seed

    def fit(self, X: np.ndarray) -> "TreeDistiller":
        """Fit the surrogate tree to the black box's outputs on ``X``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self.augment > 0:
            rng = np.random.default_rng(self.seed)
            std = np.maximum(X.std(axis=0), 1e-12)
            extra = (
                X[rng.integers(0, X.shape[0], self.augment)]
                + rng.normal(0, 1, (self.augment, X.shape[1])) * std * 0.5
            )
            X = np.vstack([X, extra])
        scores = self.predict_fn(X)
        if self.task == "classification":
            targets = (scores >= 0.5).astype(int)
            self.surrogate_ = DecisionTreeClassifier(max_depth=self.max_depth)
        else:
            targets = scores
            self.surrogate_ = DecisionTreeRegressor(max_depth=self.max_depth)
        self.surrogate_.fit(X, targets)
        return self

    def fidelity(self, X: np.ndarray) -> float:
        """Agreement between surrogate and black box on ``X``.

        Classification: fraction of matching hard labels. Regression: R²
        of the surrogate against the black-box scores.
        """
        if not hasattr(self, "surrogate_"):
            raise RuntimeError("call fit() before fidelity()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        scores = self.predict_fn(X)
        if self.task == "classification":
            return float(
                np.mean(self.surrogate_.predict(X) == (scores >= 0.5).astype(int))
            )
        pred = self.surrogate_.predict(X)
        ss_res = float(np.sum((scores - pred) ** 2))
        ss_tot = float(np.sum((scores - scores.mean()) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0

    @property
    def n_leaves(self) -> int:
        """Size of the explanation a human must read."""
        return self.surrogate_.tree_.n_leaves
