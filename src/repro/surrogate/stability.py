"""Statistical stability indices for LIME [Visani et al. 2020].

The tutorial's central criticism of surrogate explainability (§2.1.1) is
that LIME's neighborhood sampling is unreliable: re-running the explainer
on the same instance can return different explanations. Visani et al.
quantify this with two indices computed over repeated LIME runs:

* **VSI** (Variables Stability Index): how consistently the same feature
  set is selected across runs — mean Jaccard similarity over run pairs.
* **CSI** (Coefficients Stability Index): how consistent the coefficient
  values are for features that do recur — the fraction of features whose
  across-run coefficient confidence intervals overlap pairwise.

Both lie in [0, 1]; 1 is perfectly stable. E4 sweeps the LIME sampling
budget and shows both indices rising toward 1, reproducing the paper's
"more samples → more reliable" curve.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..core.explanation import FeatureAttribution

__all__ = ["vsi", "csi", "stability_report"]


def _selected_sets(runs: list[FeatureAttribution], top_k: int) -> list[frozenset[int]]:
    return [frozenset(run.ranking()[:top_k]) for run in runs]


def vsi(runs: list[FeatureAttribution], top_k: int = 5) -> float:
    """Variables Stability Index: mean pairwise Jaccard of top-k sets."""
    if len(runs) < 2:
        raise ValueError("stability needs at least two LIME runs")
    sets = _selected_sets(runs, top_k)
    scores = [
        len(a & b) / len(a | b) if a | b else 1.0
        for a, b in combinations(sets, 2)
    ]
    return float(np.mean(scores))


def csi(runs: list[FeatureAttribution], top_k: int = 5,
        z: float = 1.96) -> float:
    """Coefficients Stability Index.

    For each feature appearing in any run's top-k, build the normal
    confidence interval of its coefficient across runs and check, for
    every pair of runs, whether both coefficients fall within ``z``
    standard deviations of the across-run mean. CSI is the mean agreement
    rate over features.
    """
    if len(runs) < 2:
        raise ValueError("stability needs at least two LIME runs")
    considered = sorted(set().union(*_selected_sets(runs, top_k)))
    if not considered:
        return 1.0
    agreements = []
    for j in considered:
        coefs = np.array([run.values[j] for run in runs])
        center, spread = coefs.mean(), coefs.std(ddof=1)
        if spread == 0.0:
            agreements.append(1.0)
            continue
        inside = np.abs(coefs - center) <= z * spread
        pair_scores = [
            1.0 if inside[a] and inside[b] else 0.0
            for a, b in combinations(range(len(runs)), 2)
        ]
        agreements.append(float(np.mean(pair_scores)))
    return float(np.mean(agreements))


def stability_report(
    explainer, x: np.ndarray, n_runs: int = 10, top_k: int = 5, seed: int = 0
) -> dict[str, float]:
    """Run an explainer ``n_runs`` times with different seeds and score it.

    Works with any explainer whose ``explain`` accepts a ``seed`` keyword
    (both LIME variants do). Returns VSI, CSI and the mean surrogate
    fidelity when the explainer reports one.
    """
    # Deliberately varied seeds — a shared plan would defeat the point.
    runs = [explainer.explain(x, seed=seed + r) for r in range(n_runs)]  # batch: allow
    fidelities = [
        run.meta["fidelity_r2"] for run in runs if "fidelity_r2" in run.meta
    ]
    report = {
        "vsi": vsi(runs, top_k=top_k),
        "csi": csi(runs, top_k=top_k),
    }
    if fidelities:
        report["mean_fidelity"] = float(np.mean(fidelities))
    return report
