"""LIME for text classifiers (§2.4): word-level attributions.

Text LIME perturbs a document by *removing* random subsets of its words,
queries the classifier on each perturbed document, and fits the same
weighted sparse linear surrogate as tabular LIME on the word-presence
indicators. The classifier is any callable mapping a list of strings to
scores, so it composes with :mod:`repro.unstructured.text`'s bag-of-words
pipeline or any user model.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import FeatureAttribution
from ..obs import instrument_explainer, record_model_eval
from .lime import forward_select, weighted_ridge

__all__ = ["LimeTextExplainer"]


@instrument_explainer
class LimeTextExplainer:
    """Word-attribution LIME.

    Parameters
    ----------
    predict_fn:
        Callable mapping a list of document strings to a 1-D score array.
    n_samples:
        Number of perturbed documents.
    kernel_width:
        Proximity kernel width on cosine-like distance (fraction of words
        removed).
    n_select:
        Words kept in the sparse surrogate (``None`` keeps all).
    """

    method_name = "lime_text"

    def __init__(
        self,
        predict_fn,
        n_samples: int = 500,
        kernel_width: float = 0.25,
        n_select: int | None = 10,
        alpha: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.predict_fn = predict_fn
        self.n_samples = n_samples
        self.kernel_width = kernel_width
        self.n_select = n_select
        self.alpha = alpha
        self.seed = seed

    def explain(self, document: str, seed: int | None = None) -> FeatureAttribution:
        words = document.split()
        if not words:
            raise ValueError("cannot explain an empty document")
        # Attribute at the level of *distinct* words; removing a word
        # removes all its occurrences, matching the reference explainer.
        vocabulary = sorted(set(words))
        d = len(vocabulary)
        index = {w: i for i, w in enumerate(vocabulary)}
        rng = np.random.default_rng(self.seed if seed is None else seed)
        B = (rng.random((self.n_samples, d)) < 0.5).astype(float)
        B[0, :] = 1.0  # the original document
        docs = []
        for row in B:
            kept = {vocabulary[i] for i in range(d) if row[i] == 1.0}
            docs.append(" ".join(w for w in words if w in kept))
        y = np.asarray(self.predict_fn(docs), dtype=float).ravel()
        # Text models bypass as_predict_fn (they consume document lists,
        # not feature rows), so the eval meter is applied at the call site.
        record_model_eval(rows=len(docs))
        removed_fraction = 1.0 - B.mean(axis=1)
        weights = np.exp(-(removed_fraction ** 2) / self.kernel_width ** 2)
        if self.n_select is not None and self.n_select < d:
            active = forward_select(B, y, weights, self.n_select, self.alpha)
        else:
            active = list(range(d))
        coef_active, intercept = weighted_ridge(B[:, active], y, weights, self.alpha)
        coef = np.zeros(d)
        coef[active] = coef_active
        return FeatureAttribution(
            values=coef,
            feature_names=vocabulary,
            base_value=intercept,
            prediction=float(y[0]),
            method=self.method_name,
            meta={"n_samples": self.n_samples, "word_index": index},
        )
