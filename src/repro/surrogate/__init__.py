"""Surrogate-model explainability (§2.1.1): LIME and stability analysis."""

from .distill import TreeDistiller
from .lime import LimeTabularExplainer, forward_select, weighted_ridge
from .lime_text import LimeTextExplainer
from .lmt import LinearModelTree
from .stability import csi, stability_report, vsi

__all__ = [
    "LimeTabularExplainer",
    "LimeTextExplainer",
    "TreeDistiller",
    "LinearModelTree",
    "weighted_ridge",
    "forward_select",
    "vsi",
    "csi",
    "stability_report",
]
