"""Actionable recourse in linear classification [Ustun, Spangher & Liu 2019].

Given a linear classifier and a person who received an unfavorable
decision, recourse asks for the *minimum-cost set of actions* — feature
changes restricted to actionable features and allowed directions — that
flips the decision. Following the paper, each feature's actions are
discretized onto a grid of values observed in the data, costs are
percentile shifts (moving from your percentile to a higher one costs the
percentile gap), and the optimizer searches over action combinations.

The search is exact over action sets of bounded cardinality (the paper's
IP is exact; with ≤3 changed features and grid actions, exhaustive
enumeration is exact and fast at our scale), and a recourse *audit* runs
it over a population to report feasibility and cost distributions —
the fairness diagnostic the paper introduces and E12 reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..core.dataset import TabularDataset

__all__ = ["Action", "RecourseResult", "LinearRecourse", "recourse_audit"]


@dataclass(frozen=True)
class Action:
    """One feature change: set ``feature`` to ``new_value`` at ``cost``."""

    feature: int
    feature_name: str
    old_value: float
    new_value: float
    cost: float


@dataclass
class RecourseResult:
    """Outcome of a recourse search for one individual."""

    feasible: bool
    actions: list[Action]
    total_cost: float
    new_score: float

    def flipset(self) -> dict[str, tuple[float, float]]:
        """Changes as ``{feature: (from, to)}`` — the paper's flipset rows."""
        return {a.feature_name: (a.old_value, a.new_value) for a in self.actions}


class LinearRecourse:
    """Minimum-cost recourse for a linear score ``w·x + b``.

    Parameters
    ----------
    coef, intercept:
        The linear decision function; a decision is favorable when the
        score is ≥ 0 (callers using probabilities pass the logit).
    data:
        Supplies action grids (empirical percentiles) and actionability
        constraints.
    grid_size:
        Number of grid points per feature.
    max_actions:
        Maximum number of features an action set may change.
    """

    def __init__(
        self,
        coef: np.ndarray,
        intercept: float,
        data: TabularDataset,
        grid_size: int = 10,
        max_actions: int = 3,
    ) -> None:
        self.coef = np.asarray(coef, dtype=float).ravel()
        self.intercept = float(intercept)
        self.data = data
        self.grid_size = grid_size
        self.max_actions = max_actions
        if self.coef.shape[0] != data.n_features:
            raise ValueError("coefficient vector does not match data width")
        self._grids = self._build_grids()

    def _build_grids(self) -> list[np.ndarray]:
        """Percentile grids per feature (category codes for categoricals)."""
        grids: list[np.ndarray] = []
        for j, spec in enumerate(self.data.features):
            if spec.is_categorical:
                grids.append(np.arange(len(spec.categories), dtype=float))
            else:
                qs = np.linspace(0.02, 0.98, self.grid_size)
                grids.append(np.unique(np.quantile(self.data.X[:, j], qs)))
        return grids

    def _percentile(self, j: int, value: float) -> float:
        col = self.data.X[:, j]
        return float(np.mean(col <= value))

    def _candidate_actions(self, x: np.ndarray) -> list[list[Action]]:
        """Per-feature lists of allowed actions with their costs."""
        per_feature: list[list[Action]] = []
        for j, spec in enumerate(self.data.features):
            actions: list[Action] = []
            if spec.actionable:
                base_pct = self._percentile(j, x[j])
                for value in self._grids[j]:
                    if np.isclose(value, x[j]):
                        continue
                    if spec.monotone == +1 and value < x[j]:
                        continue
                    if spec.monotone == -1 and value > x[j]:
                        continue
                    if spec.is_categorical:
                        cost = 1.0  # unit cost per categorical switch
                    else:
                        cost = abs(self._percentile(j, value) - base_pct)
                    actions.append(
                        Action(j, spec.name, float(x[j]), float(value), cost)
                    )
            per_feature.append(actions)
        return per_feature

    def score(self, x: np.ndarray) -> float:
        return float(self.coef @ np.asarray(x, dtype=float).ravel() + self.intercept)

    def find(self, x: np.ndarray) -> RecourseResult:
        """Minimum-cost action set flipping ``x`` to a non-negative score.

        Exhaustive over action sets changing at most ``max_actions``
        features; within a chosen feature set, each feature greedily takes
        the cheapest value that maximizes score gain per cost — then the
        cheapest *feasible* combination is selected exactly by enumerating
        the per-feature grids of that set.
        """
        x = np.asarray(x, dtype=float).ravel()
        if self.score(x) >= 0:
            return RecourseResult(True, [], 0.0, self.score(x))
        per_feature = self._candidate_actions(x)
        usable = [j for j, actions in enumerate(per_feature) if actions]
        best: RecourseResult | None = None
        for size in range(1, self.max_actions + 1):
            for subset in combinations(usable, size):
                result = self._best_for_subset(x, subset, per_feature)
                if result is not None and (
                    best is None or result.total_cost < best.total_cost
                ):
                    best = result
            if best is not None:
                break  # smallest cardinality wins; costs compared within it
        if best is None:
            return RecourseResult(False, [], float("inf"), self.score(x))
        return best

    def _best_for_subset(
        self,
        x: np.ndarray,
        subset: tuple[int, ...],
        per_feature: list[list[Action]],
    ) -> RecourseResult | None:
        """Cheapest feasible assignment over the product grid of ``subset``."""
        best_cost = float("inf")
        best_actions: list[Action] | None = None

        def recurse(pos: int, current: list[Action], cost: float) -> None:
            nonlocal best_cost, best_actions
            if cost >= best_cost:
                return
            if pos == len(subset):
                trial = x.copy()
                for a in current:
                    trial[a.feature] = a.new_value
                if self.score(trial) >= 0:
                    best_cost = cost
                    best_actions = list(current)
                return
            for action in per_feature[subset[pos]]:
                current.append(action)
                recurse(pos + 1, current, cost + action.cost)
                current.pop()

        recurse(0, [], 0.0)
        if best_actions is None:
            return None
        trial = x.copy()
        for a in best_actions:
            trial[a.feature] = a.new_value
        return RecourseResult(True, best_actions, best_cost, self.score(trial))


def recourse_audit(
    recourse: LinearRecourse,
    X: np.ndarray,
    groups: np.ndarray | None = None,
) -> dict:
    """Population-level recourse audit (Ustun et al.'s headline tool).

    Runs the search on every *denied* row of ``X`` and reports feasibility
    rates and cost statistics, optionally broken down by a group label —
    exposing disparities in the burden of recourse.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    denied = [i for i in range(X.shape[0]) if recourse.score(X[i]) < 0]
    results = {i: recourse.find(X[i]) for i in denied}

    def summarize(indices: list[int]) -> dict[str, float]:
        if not indices:
            return {"n_denied": 0, "feasible_rate": 1.0, "mean_cost": 0.0}
        feasible = [i for i in indices if results[i].feasible]
        costs = [results[i].total_cost for i in feasible]
        return {
            "n_denied": len(indices),
            "feasible_rate": len(feasible) / len(indices),
            "mean_cost": float(np.mean(costs)) if costs else float("inf"),
        }

    audit = {"overall": summarize(denied)}
    if groups is not None:
        groups = np.asarray(groups).ravel()
        for g in np.unique(groups):
            audit[f"group_{g}"] = summarize([i for i in denied if groups[i] == g])
    return audit
