"""Counterfactual explanations and algorithmic recourse (§2.1.4)."""

from .causal_projection import (
    causal_inconsistency,
    mechanism_residuals,
    project_counterfactual,
)
from .dice import DiceExplainer
from .geco import GecoExplainer
from .metrics import (
    diversity,
    evaluate_counterfactuals,
    mad_scale,
    plausibility,
    proximity,
    sparsity,
    validity,
)
from .recourse import Action, LinearRecourse, RecourseResult, recourse_audit

__all__ = [
    "DiceExplainer",
    "GecoExplainer",
    "project_counterfactual",
    "causal_inconsistency",
    "mechanism_residuals",
    "LinearRecourse",
    "RecourseResult",
    "Action",
    "recourse_audit",
    "mad_scale",
    "proximity",
    "sparsity",
    "diversity",
    "validity",
    "plausibility",
    "evaluate_counterfactuals",
]
