"""DiCE-style diverse counterfactual explanations [Mothilal+ 2020].

Generates a *set* of counterfactuals jointly optimizing the DiCE
objective: each counterfactual must flip the model (hinge validity loss),
stay close to the factual (MAD-weighted L1 proximity) and the set must be
mutually diverse (a repulsion term standing in for DiCE's determinantal
point process). Because the library is model-agnostic, optimization is
gradient-free: random restarts seeded from training rows on the target
side, followed by greedy coordinate descent on the joint loss.

Feature actionability and monotonicity constraints from
:class:`FeatureSpec` are enforced by projection, and categorical features
move only between observed category codes.
"""

from __future__ import annotations

import numpy as np

from ..core.base import Explainer
from ..core.dataset import TabularDataset
from ..core.explanation import CounterfactualExplanation
from .metrics import mad_scale

__all__ = ["DiceExplainer"]


class DiceExplainer(Explainer):
    """Diverse counterfactual generator.

    Parameters
    ----------
    data:
        Training data (feature ranges, MAD scale, categorical domains,
        actionability constraints).
    total_cfs:
        Number of counterfactuals per query.
    proximity_weight, diversity_weight:
        Trade-off weights of the DiCE objective.
    n_iterations:
        Coordinate-descent refinement sweeps.
    """

    method_name = "dice"

    def __init__(
        self,
        model,
        data: TabularDataset,
        total_cfs: int = 4,
        proximity_weight: float = 0.5,
        diversity_weight: float = 1.0,
        n_iterations: int = 30,
        threshold: float = 0.5,
        output: str = "auto",
        seed: int = 0,
    ) -> None:
        super().__init__(model, output)
        self.data = data
        self.total_cfs = total_cfs
        self.proximity_weight = proximity_weight
        self.diversity_weight = diversity_weight
        self.n_iterations = n_iterations
        self.threshold = threshold
        self.seed = seed
        self._scale = mad_scale(data.X)
        self._lo = data.X.min(axis=0)
        self._hi = data.X.max(axis=0)

    # -- constraint projection ---------------------------------------------------

    def _project(self, candidate: np.ndarray, factual: np.ndarray) -> np.ndarray:
        out = candidate.copy()
        for j, spec in enumerate(self.data.features):
            if not spec.actionable:
                out[j] = factual[j]
            elif spec.is_categorical:
                out[j] = float(np.clip(round(out[j]), 0, len(spec.categories) - 1))
            else:
                out[j] = float(np.clip(out[j], self._lo[j], self._hi[j]))
                if spec.monotone == +1:
                    out[j] = max(out[j], factual[j])
                elif spec.monotone == -1:
                    out[j] = min(out[j], factual[j])
        return out

    # -- the DiCE loss -------------------------------------------------------------

    def _validity_loss(self, scores: np.ndarray, target_high: bool) -> np.ndarray:
        # Hinge on the margin to the decision threshold.
        if target_high:
            return np.maximum(0.0, self.threshold + 0.05 - scores)
        return np.maximum(0.0, scores - self.threshold + 0.05)

    def _loss(self, cfs: np.ndarray, factual: np.ndarray, target_high: bool
              ) -> float:
        scores = self.predict_fn(cfs)
        validity = self._validity_loss(scores, target_high).sum()
        prox = (np.abs(cfs - factual) / self._scale).sum(axis=1).mean()
        div = 0.0
        k = cfs.shape[0]
        if k > 1:
            for i in range(k):
                for j in range(i + 1, k):
                    dist = (np.abs(cfs[i] - cfs[j]) / self._scale).sum()
                    div += 1.0 / (1.0 + dist)
            div /= k * (k - 1) / 2.0
        return (
            10.0 * float(validity)
            + self.proximity_weight * float(prox)
            + self.diversity_weight * float(div)
        )

    # -- generation -------------------------------------------------------------------

    def _initial_candidates(
        self, factual: np.ndarray, target_high: bool, rng: np.random.Generator
    ) -> np.ndarray:
        """Seed from training rows already on the target side (on-manifold)."""
        scores = self.predict_fn(self.data.X)
        on_target = (
            np.where(scores >= self.threshold)[0]
            if target_high
            else np.where(scores < self.threshold)[0]
        )
        cfs = np.zeros((self.total_cfs, factual.shape[0]))
        for k in range(self.total_cfs):
            if on_target.size > 0:
                donor = self.data.X[on_target[rng.integers(0, on_target.size)]]
                # Blend toward the factual to start near it.
                blend = rng.uniform(0.3, 0.8)
                candidate = blend * factual + (1 - blend) * donor
            else:
                candidate = factual + rng.normal(0, 1, factual.shape) * self._scale
            cfs[k] = self._project(candidate, factual)
        return cfs

    def explain(self, x: np.ndarray, seed: int | None = None
                ) -> CounterfactualExplanation:
        factual = np.asarray(x, dtype=float).ravel()
        rng = np.random.default_rng(self.seed if seed is None else seed)
        factual_score = float(self.predict_fn(factual[None, :])[0])
        target_high = factual_score < self.threshold
        cfs = self._initial_candidates(factual, target_high, rng)
        actionable = [
            j for j, spec in enumerate(self.data.features) if spec.actionable
        ]
        current_loss = self._loss(cfs, factual, target_high)
        for __ in range(self.n_iterations):
            improved = False
            for k in range(self.total_cfs):
                j = actionable[rng.integers(0, len(actionable))]
                spec = self.data.features[j]
                trial = cfs.copy()
                if spec.is_categorical:
                    trial[k, j] = float(rng.integers(0, len(spec.categories)))
                else:
                    step = rng.normal(0, 1) * self._scale[j]
                    trial[k, j] = cfs[k, j] + step
                trial[k] = self._project(trial[k], factual)
                trial_loss = self._loss(trial, factual, target_high)
                if trial_loss < current_loss:
                    cfs, current_loss = trial, trial_loss
                    improved = True
            if not improved and rng.random() < 0.1:
                # Occasional restart of the worst member escapes plateaus.
                worst = int(rng.integers(0, self.total_cfs))
                cfs[worst] = self._initial_candidates(factual, target_high, rng)[0]
                current_loss = self._loss(cfs, factual, target_high)
        return CounterfactualExplanation(
            factual=factual,
            counterfactuals=cfs,
            factual_outcome=factual_score,
            target_outcome=1.0 if target_high else 0.0,
            feature_names=self.data.feature_names,
            method=self.method_name,
            meta={"loss": current_loss},
        )
