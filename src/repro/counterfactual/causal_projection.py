"""Causally consistent counterfactuals [Mahajan, Tan & Sharma 2019] (§2.1.4).

The tutorial notes that feature-vector counterfactuals "sometimes provide
unrealistic and impossible instances" and that "combining counterfactual
explanations with causality can help overcome some of these issues".
This module implements that combination: a counterfactual's feature edits
are re-interpreted as *interventions* on a structural causal model, and
every downstream variable is recomputed through its mechanism (with the
individual's own abducted noise). The result is the instance the world
would actually produce if the person made those changes — e.g. raising
education also raises income through the income mechanism.

``causal_inconsistency`` quantifies how far a plain feature-vector
counterfactual sits from its causally projected twin — the feasibility
gap E27 measures across generators.
"""

from __future__ import annotations

import numpy as np

from ..causal.scm import StructuralCausalModel
from ..core.explanation import CounterfactualExplanation

__all__ = ["project_counterfactual", "causal_inconsistency"]


def _abduct_noise(
    scm: StructuralCausalModel, values: dict[str, float]
) -> dict[str, np.ndarray]:
    """Additive-noise abduction u_v = x_v − f_v(x_parents, 0) per variable."""
    noise = {}
    for name in scm.variables:
        if name not in values:
            noise[name] = np.zeros(1)
            continue
        parents = {
            p: np.asarray([values[p]]) for p in scm.parents(name)
            if p in values
        }
        mechanism_value = float(
            scm._mechanisms[name](parents, np.zeros(1))[0]
        )
        noise[name] = np.asarray([values[name] - mechanism_value])
    return noise


def project_counterfactual(
    scm: StructuralCausalModel,
    feature_order: list[str],
    factual: np.ndarray,
    counterfactual: np.ndarray,
    atol: float = 1e-9,
) -> np.ndarray:
    """Re-derive a counterfactual as interventions on the SCM.

    The changed coordinates of ``counterfactual`` (vs ``factual``) become
    ``do()`` interventions; unchanged *descendants* of intervened
    variables are recomputed through their mechanisms using the
    individual's abducted noise, so the projection answers "what would
    this person's full record look like after actually making these
    changes?".
    """
    import networkx as nx

    factual = np.asarray(factual, dtype=float).ravel()
    counterfactual = np.asarray(counterfactual, dtype=float).ravel()
    values = {name: float(factual[j]) for j, name in enumerate(feature_order)}
    noise = _abduct_noise(scm, values)
    interventions = {
        name: float(counterfactual[j])
        for j, name in enumerate(feature_order)
        if not np.isclose(factual[j], counterfactual[j], atol=atol)
    }
    # Only causal descendants of an intervened variable can change; every
    # other variable keeps its factual value exactly. (This also sidesteps
    # abduction error on non-additive mechanisms for untouched variables —
    # the additive assumption is only exercised along affected paths.)
    affected: set[str] = set()
    for name in interventions:
        affected |= nx.descendants(scm.graph, name)
    out = {}
    for j, name in enumerate(feature_order):
        if name in interventions:
            out[name] = interventions[name]
        elif name not in affected:
            out[name] = float(factual[j])
    # Recompute affected, un-intervened variables in topological order.
    for name in scm.variables:
        if name in out or name not in values:
            continue
        parents = {
            p: np.asarray([out.get(p, values.get(p, 0.0))])
            for p in scm.parents(name)
        }
        out[name] = float(
            scm._mechanisms[name](parents, noise[name])[0]
        )
    return np.asarray([out[name] for name in feature_order], dtype=float)


def mechanism_residuals(
    scm: StructuralCausalModel,
    feature_order: list[str],
    factual: np.ndarray,
    row: np.ndarray,
    scale: np.ndarray,
    exempt: set[str] | None = None,
) -> dict[str, float]:
    """Per-variable violations of the SCM mechanisms by a counterfactual.

    For each non-exempt variable v with parents, the residual is
    |row_v − f_v(row_parents, u_v)| / scale_v with u_v abducted from the
    *factual* (the individual's own noise). Zero residuals everywhere
    mean the instance is causally feasible given the exempt actions —
    Mahajan et al.'s feasibility criterion.
    """
    exempt = exempt or set()
    factual = np.asarray(factual, dtype=float).ravel()
    row = np.asarray(row, dtype=float).ravel()
    scale = np.asarray(scale, dtype=float).ravel()
    index = {name: j for j, name in enumerate(feature_order)}
    noise = _abduct_noise(
        scm, {name: float(factual[j]) for j, name in enumerate(feature_order)}
    )
    residuals: dict[str, float] = {}
    for name in feature_order:
        if name in exempt:
            continue
        parents = [p for p in scm.parents(name) if p in index]
        if not parents:
            continue  # sources have no mechanism to violate
        parent_values = {
            p: np.asarray([row[index[p]]]) for p in parents
        }
        implied = float(scm._mechanisms[name](parent_values, noise[name])[0])
        residuals[name] = abs(row[index[name]] - implied) / scale[index[name]]
    return residuals


def causal_inconsistency(
    scm: StructuralCausalModel,
    feature_order: list[str],
    cf: CounterfactualExplanation,
    scale: np.ndarray,
    exempt: set[str] | None = None,
) -> float:
    """Mean total mechanism residual over a counterfactual set.

    Zero means every counterfactual is causally feasible given the
    ``exempt`` action variables; large values flag "impossible" instances
    (e.g. a credit score moved without any movement in its causes).
    """
    gaps = []
    for row in cf.counterfactuals:
        residuals = mechanism_residuals(
            scm, feature_order, cf.factual, row, scale, exempt
        )
        gaps.append(float(sum(residuals.values())))
    return float(np.mean(gaps))
