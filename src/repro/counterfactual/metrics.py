"""Quality metrics for counterfactual explanations.

The tutorial (§2.1.4) lists the desiderata a counterfactual generator must
balance — validity, proximity, sparsity, diversity, plausibility — and
notes that ignoring the data manifold yields "unrealistic and impossible"
counterfactuals. These metrics make each desideratum measurable so E11 can
compare generators on a common scale.

Distances are measured in MAD units (per-feature median absolute
deviation, as in Wachter et al. and DiCE) so that features with large raw
scales do not dominate.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import CounterfactualExplanation

__all__ = [
    "mad_scale",
    "proximity",
    "sparsity",
    "diversity",
    "validity",
    "plausibility",
    "evaluate_counterfactuals",
]


def mad_scale(X: np.ndarray) -> np.ndarray:
    """Per-feature median absolute deviation, floored to avoid zeros."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    med = np.median(X, axis=0)
    mad = np.median(np.abs(X - med), axis=0)
    fallback = np.maximum(X.std(axis=0), 1e-9)
    return np.where(mad > 1e-12, mad, fallback)


def proximity(cf: CounterfactualExplanation, scale: np.ndarray) -> float:
    """Mean MAD-normalized L1 distance from factual to counterfactuals."""
    diffs = np.abs(cf.counterfactuals - cf.factual) / scale
    return float(diffs.sum(axis=1).mean())


def sparsity(cf: CounterfactualExplanation) -> float:
    """Mean number of features changed per counterfactual."""
    changed = ~np.isclose(cf.counterfactuals, cf.factual)
    return float(changed.sum(axis=1).mean())


def diversity(cf: CounterfactualExplanation, scale: np.ndarray) -> float:
    """Mean pairwise MAD-normalized L1 distance among counterfactuals."""
    k = cf.n_counterfactuals
    if k < 2:
        return 0.0
    total, pairs = 0.0, 0
    for i in range(k):
        for j in range(i + 1, k):
            total += float(
                (np.abs(cf.counterfactuals[i] - cf.counterfactuals[j]) / scale).sum()
            )
            pairs += 1
    return total / pairs


def validity(cf: CounterfactualExplanation, predict_fn,
             threshold: float = 0.5) -> float:
    """Fraction of counterfactuals that actually achieve the target side.

    ``target_outcome >= threshold`` means the counterfactual must score at
    or above the threshold, else at or below.
    """
    scores = np.asarray(predict_fn(cf.counterfactuals), dtype=float).ravel()
    if cf.target_outcome >= threshold:
        return float(np.mean(scores >= threshold))
    return float(np.mean(scores < threshold))


def plausibility(
    cf: CounterfactualExplanation,
    reference: np.ndarray,
    scale: np.ndarray,
    k: int = 5,
) -> float:
    """On-manifold score: mean distance to the k nearest reference rows.

    Lower is more plausible (closer to observed data). Distances are
    MAD-normalized L1, averaged over the counterfactual set.
    """
    reference = np.atleast_2d(np.asarray(reference, dtype=float))
    out = []
    for row in cf.counterfactuals:
        d = (np.abs(reference - row) / scale).sum(axis=1)
        out.append(float(np.sort(d)[:k].mean()))
    return float(np.mean(out))


def evaluate_counterfactuals(
    cf: CounterfactualExplanation,
    predict_fn,
    reference: np.ndarray,
    threshold: float = 0.5,
) -> dict[str, float]:
    """All metrics at once, using ``reference`` for MAD scale and manifold."""
    scale = mad_scale(reference)
    return {
        "validity": validity(cf, predict_fn, threshold),
        "proximity": proximity(cf, scale),
        "sparsity": sparsity(cf),
        "diversity": diversity(cf, scale),
        "plausibility": plausibility(cf, reference, scale),
        "n_counterfactuals": float(cf.n_counterfactuals),
    }
