"""GeCo-style genetic counterfactual search [Schleich+ 2021].

GeCo's design, reproduced here: a genetic algorithm over *feasible*
candidate counterfactuals, where feasibility is declared via PLAF-style
constraints (actionability, monotone directions, user predicates) and
plausibility comes from mutating with values observed in the data (the
"grounding" that keeps candidates on-manifold). Selection prefers valid
candidates with few, small changes, so the returned explanation is the
closest feasible flip found under an explicit generation budget — GeCo's
"quality counterfactuals in real time" claim is about exactly this budget
knob, which E11 sweeps.

Constraints beyond the schema can be added as callables
``constraint(candidate, factual) -> bool``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.base import Explainer
from ..core.dataset import TabularDataset
from ..core.explanation import CounterfactualExplanation
from .metrics import mad_scale

__all__ = ["GecoExplainer"]

Constraint = Callable[[np.ndarray, np.ndarray], bool]


class GecoExplainer(Explainer):
    """Genetic counterfactual search with feasibility constraints.

    Parameters
    ----------
    data:
        Training data; mutations draw replacement values from its columns.
    population, generations:
        Genetic-search budget.
    max_changes:
        Hard cap on how many features a counterfactual may alter
        (GeCo grows the change-set gradually; this is the ceiling).
    constraints:
        Extra feasibility predicates applied to every candidate.
    """

    method_name = "geco"

    def __init__(
        self,
        model,
        data: TabularDataset,
        population: int = 100,
        generations: int = 15,
        max_changes: int = 3,
        n_returned: int = 3,
        constraints: list[Constraint] | None = None,
        threshold: float = 0.5,
        output: str = "auto",
        seed: int = 0,
    ) -> None:
        super().__init__(model, output)
        self.data = data
        self.population = population
        self.generations = generations
        self.max_changes = max_changes
        self.n_returned = n_returned
        self.constraints = constraints or []
        self.threshold = threshold
        self.seed = seed
        self._scale = mad_scale(data.X)

    def _actionable(self) -> list[int]:
        return [j for j, f in enumerate(self.data.features) if f.actionable]

    def _feasible(self, candidate: np.ndarray, factual: np.ndarray) -> bool:
        for j, spec in enumerate(self.data.features):
            if not spec.actionable and not np.isclose(candidate[j], factual[j]):
                return False
            if spec.monotone == +1 and candidate[j] < factual[j] - 1e-12:
                return False
            if spec.monotone == -1 and candidate[j] > factual[j] + 1e-12:
                return False
        return all(c(candidate, factual) for c in self.constraints)

    def _mutate(
        self, candidate: np.ndarray, factual: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Replace one feature with a value sampled from the data column."""
        out = candidate.copy()
        actionable = self._actionable()
        changed = [j for j in actionable if not np.isclose(out[j], factual[j])]
        if len(changed) >= self.max_changes:
            j = changed[rng.integers(0, len(changed))]
        else:
            j = actionable[rng.integers(0, len(actionable))]
        donor = self.data.X[rng.integers(0, self.data.n_samples), j]
        spec = self.data.features[j]
        if spec.monotone == +1:
            donor = max(donor, factual[j])
        elif spec.monotone == -1:
            donor = min(donor, factual[j])
        out[j] = donor
        return out

    def _crossover(
        self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        mask = rng.random(a.shape[0]) < 0.5
        return np.where(mask, a, b)

    def _fitness(
        self, candidates: np.ndarray, factual: np.ndarray, target_high: bool
    ) -> np.ndarray:
        """Lower is better: invalid candidates pay a large penalty."""
        scores = self.predict_fn(candidates)
        if target_high:
            invalid = np.maximum(0.0, self.threshold - scores)
        else:
            invalid = np.maximum(0.0, scores - self.threshold)
        distance = (np.abs(candidates - factual) / self._scale).sum(axis=1)
        n_changed = (~np.isclose(candidates, factual)).sum(axis=1)
        return 100.0 * invalid + distance + 0.5 * n_changed

    def explain(self, x: np.ndarray, seed: int | None = None
                ) -> CounterfactualExplanation:
        factual = np.asarray(x, dtype=float).ravel()
        rng = np.random.default_rng(self.seed if seed is None else seed)
        factual_score = float(self.predict_fn(factual[None, :])[0])
        target_high = factual_score < self.threshold
        # Generation 0: single-feature edits of the factual (GeCo starts
        # from small change-sets and grows them).
        pop = np.tile(factual, (self.population, 1))
        for i in range(self.population):
            pop[i] = self._mutate(pop[i], factual, rng)
        evaluations = self.population
        for __ in range(self.generations):
            fitness = self._fitness(pop, factual, target_high)
            order = np.argsort(fitness)
            elite = pop[order[: self.population // 4]]
            children = []
            while len(children) < self.population - elite.shape[0]:
                a = elite[rng.integers(0, elite.shape[0])]
                b = elite[rng.integers(0, elite.shape[0])]
                child = self._crossover(a, b, rng)
                if rng.random() < 0.8:
                    child = self._mutate(child, factual, rng)
                if self._feasible(child, factual):
                    children.append(child)
            pop = np.vstack([elite, np.array(children)])
            evaluations += pop.shape[0]
        fitness = self._fitness(pop, factual, target_high)
        scores = self.predict_fn(pop)
        valid = scores >= self.threshold if target_high else scores < self.threshold
        chosen = pop[valid] if valid.any() else pop
        chosen_fitness = fitness[valid] if valid.any() else fitness
        # Deduplicate, then keep the best few.
        __, unique_idx = np.unique(chosen.round(9), axis=0, return_index=True)
        chosen = chosen[unique_idx]
        chosen_fitness = chosen_fitness[unique_idx]
        order = np.argsort(chosen_fitness)[: self.n_returned]
        return CounterfactualExplanation(
            factual=factual,
            counterfactuals=chosen[order],
            factual_outcome=factual_score,
            target_outcome=1.0 if target_high else 0.0,
            feature_names=self.data.feature_names,
            method=self.method_name,
            meta={"found_valid": bool(valid.any()), "evaluations": evaluations},
        )
