"""One-call multi-method decision reports.

The regulatory motivation the tutorial opens with (GDPR [1], CCPA [16])
asks businesses to *explain individual automated decisions*. No single
method suffices: attributions say which features mattered, rules say
when the decision holds, counterfactuals say what would change it, and a
faithfulness check says whether any of it can be trusted. This module
assembles all of them into one markdown report for one decision — the
artifact a compliance workflow would actually file.
"""

from __future__ import annotations

import numpy as np

from . import obs
from .core.base import as_predict_fn
from .core.dataset import TabularDataset
from .counterfactual import GecoExplainer
from .evaluation import comprehensiveness, monotonicity
from .render import render_attribution, render_counterfactual, render_rule
from .rules import AnchorExplainer
from .shapley import ExactShapleyExplainer, KernelShapExplainer
from .surrogate import LimeTabularExplainer, stability_report

__all__ = ["decision_report"]


def decision_report(
    model,
    data: TabularDataset,
    x: np.ndarray,
    threshold: float = 0.5,
    max_shap_features: int = 12,
    seed: int = 0,
) -> str:
    """Build a markdown explanation report for one model decision.

    Sections: the decision itself, Shapley attribution (exact when the
    width allows, Kernel SHAP otherwise), a LIME cross-check with
    stability indices, an anchor rule, a constrained counterfactual, and
    a faithfulness spot-check of the attribution — plus a cost footer
    totalling the black-box queries each method spent (the tutorial's
    model-query-complexity axis, measured instead of assumed).
    """
    tracer = obs.get_tracer()
    mark = tracer.mark()
    x = np.asarray(x, dtype=float).ravel()
    predict = as_predict_fn(model)
    score = float(predict(x[None, :])[0])
    decision = "POSITIVE" if score >= threshold else "NEGATIVE"
    background = data.X[: min(60, data.n_samples)]

    lines = [
        "# Decision report",
        "",
        f"**Decision:** {decision} (score {score:.3f}, "
        f"threshold {threshold:g})",
        "",
        "**Input:**",
        "",
    ]
    for name, value in data.render_row(x).items():
        lines.append(f"- {name}: {value}")

    # --- attribution -------------------------------------------------------
    if data.n_features <= max_shap_features:
        shap = ExactShapleyExplainer(model, background)
        method_note = "exact Shapley values (interventional game)"
    else:
        shap = KernelShapExplainer(model, background, n_samples=1024,
                                   seed=seed)
        method_note = "Kernel SHAP (sampled)"
    with obs.span("report.section", section="attribution"):
        attribution = shap.explain(x, feature_names=data.feature_names)
    lines += [
        "",
        f"## Why — feature attribution ({method_note})",
        "",
        "```",
        render_attribution(attribution, top=min(8, data.n_features)),
        "```",
        f"additivity check: base + contributions − prediction = "
        f"{attribution.additivity_gap():.2e}",
    ]

    # --- LIME cross-check -----------------------------------------------------
    lime = LimeTabularExplainer(model, data, n_samples=1000, seed=seed)
    with obs.span("report.section", section="lime"):
        stability = stability_report(lime, x, n_runs=4, top_k=3, seed=seed)
        lime_att = lime.explain(x)
    agreement = int(lime_att.ranking()[0] == attribution.ranking()[0])
    lines += [
        "",
        "## Cross-check — local surrogate (LIME)",
        "",
        f"- top feature agreement with SHAP: {'yes' if agreement else 'NO'}",
        f"- surrogate fidelity R²: {lime_att.meta['fidelity_r2']:.3f}",
        f"- stability over reruns: VSI {stability['vsi']:.2f}, "
        f"CSI {stability['csi']:.2f}",
    ]

    # --- rule -----------------------------------------------------------------
    with obs.span("report.section", section="anchor"):
        anchor = AnchorExplainer(model, data, precision_target=0.9,
                                 seed=seed).explain(x)
    lines += [
        "",
        "## When — anchor rule",
        "",
        "```",
        render_rule(anchor),
        "```",
    ]

    # --- counterfactual ---------------------------------------------------------
    with obs.span("report.section", section="counterfactual"):
        cf = GecoExplainer(model, data, seed=seed).explain(x)
    lines += [
        "",
        "## What would change it — counterfactual "
        "(respects immutable/monotone attributes)",
        "",
        "```",
        render_counterfactual(cf, max_options=2),
        "```",
    ]

    # --- faithfulness spot-check ---------------------------------------------------
    baseline = data.X.mean(axis=0)
    with obs.span("report.section", section="faithfulness"):
        comp = comprehensiveness(predict, x, attribution, baseline, k=2)
        mono = monotonicity(predict, x, attribution, baseline)
    lines += [
        "",
        "## Trust — faithfulness spot-check",
        "",
        f"- comprehensiveness@2 (directed score movement from deleting "
        f"the top-2 features): {comp:+.3f}",
        f"- monotonicity of the attribution order: {mono:+.2f}",
    ]

    # --- cost accounting ---------------------------------------------------
    if obs.enabled():
        lines += [
            "",
            "## Cost — model-query telemetry",
            "",
            "Black-box evaluations each method spent on this report "
            "(`evals` = predict-fn calls, `rows` = rows batched):",
            "",
            "```",
            obs.summary(tracer.spans_since(mark)),
            "```",
        ]
    lines += [
        "",
        "*Generated by `repro.report.decision_report`; see EXPERIMENTS.md "
        "for what each method guarantees and where it fails.*",
    ]
    return "\n".join(lines)
