"""Quantitative faithfulness metrics for feature attributions.

Section 3's "User study and evaluation" discussion notes that evaluating
explanations is itself an open problem and that recent work exposed
vulnerabilities in common strategies [Jacovi & Goldberg 2020]. The
pre-user-study, automatable proxies implemented here are the standard
deletion/insertion protocol family:

* **deletion curve** — remove features most-important-first (replace by a
  baseline) and track the model score; a faithful attribution makes the
  score collapse quickly → *low* area under the curve.
* **insertion curve** — start from the baseline and add features
  most-important-first; faithful → *high* area.
* **comprehensiveness / sufficiency** (ERASER-style) — score drop from
  removing the top-k set, and score retained by keeping only the top-k.
* **monotonicity** — do marginal score gains track the attribution
  order?

All metrics are relative: they only rank attribution methods against
each other (and against a random-order control, which E25 includes).
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import FeatureAttribution

__all__ = [
    "deletion_curve",
    "insertion_curve",
    "curve_auc",
    "comprehensiveness",
    "sufficiency",
    "monotonicity",
    "faithfulness_report",
]


def _order_from(attribution, n: int) -> np.ndarray:
    if isinstance(attribution, FeatureAttribution):
        return np.asarray(attribution.ranking())
    return np.asarray(attribution, dtype=int).ravel()


def deletion_curve(
    predict_fn,
    x: np.ndarray,
    attribution,
    baseline: np.ndarray,
) -> np.ndarray:
    """Model scores after deleting 0, 1, ..., d features (importance order).

    Deleted features take the baseline's values. Length d+1; entry 0 is
    the unmodified score.
    """
    x = np.asarray(x, dtype=float).ravel()
    baseline = np.asarray(baseline, dtype=float).ravel()
    order = _order_from(attribution, x.shape[0])
    rows = np.tile(x, (x.shape[0] + 1, 1))
    for step, feature in enumerate(order, start=1):
        rows[step:, feature] = baseline[feature]
    return np.asarray(predict_fn(rows), dtype=float)


def insertion_curve(
    predict_fn,
    x: np.ndarray,
    attribution,
    baseline: np.ndarray,
) -> np.ndarray:
    """Scores after inserting 0, 1, ..., d features into the baseline."""
    x = np.asarray(x, dtype=float).ravel()
    baseline = np.asarray(baseline, dtype=float).ravel()
    order = _order_from(attribution, x.shape[0])
    rows = np.tile(baseline, (x.shape[0] + 1, 1))
    for step, feature in enumerate(order, start=1):
        rows[step:, feature] = x[feature]
    return np.asarray(predict_fn(rows), dtype=float)


def curve_auc(curve: np.ndarray) -> float:
    """Normalized trapezoidal area under a deletion/insertion curve."""
    curve = np.asarray(curve, dtype=float).ravel()
    if curve.shape[0] < 2:
        raise ValueError("a curve needs at least two points")
    return float(np.trapezoid(curve, dx=1.0) / (curve.shape[0] - 1))


def _direction(predict_fn, x: np.ndarray, baseline: np.ndarray) -> float:
    """+1 if f(x) ≥ f(baseline) else −1.

    Deleting an instance's important features moves its score *toward*
    the baseline; the sign makes that movement positive regardless of
    which side of the baseline the instance sits on (the ERASER metrics'
    predicted-class trick, generalized to scores).
    """
    f_x = float(np.asarray(predict_fn(np.asarray(x, dtype=float)[None, :]))[0])
    f_b = float(
        np.asarray(predict_fn(np.asarray(baseline, dtype=float)[None, :]))[0]
    )
    return 1.0 if f_x >= f_b else -1.0


def comprehensiveness(
    predict_fn, x: np.ndarray, attribution, baseline: np.ndarray, k: int = 3
) -> float:
    """Directed score movement from deleting the top-k features.

    Positive and large when removing the flagged features pushes the
    score toward the baseline — the features really carried the
    prediction.
    """
    curve = deletion_curve(predict_fn, x, attribution, baseline)
    return float((curve[0] - curve[k]) * _direction(predict_fn, x, baseline))


def sufficiency(
    predict_fn, x: np.ndarray, attribution, baseline: np.ndarray, k: int = 3
) -> float:
    """Directed score movement from inserting only the top-k features.

    Positive and large when the flagged features alone recover the
    prediction from the baseline.
    """
    curve = insertion_curve(predict_fn, x, attribution, baseline)
    return float((curve[k] - curve[0]) * _direction(predict_fn, x, baseline))


def monotonicity(
    predict_fn, x: np.ndarray, attribution, baseline: np.ndarray
) -> float:
    """Spearman correlation between attribution rank and insertion gains.

    1 means each feature's marginal contribution when inserted in
    importance order strictly shrinks down the ranking — the attribution
    order is consistent with the model's behaviour.
    """
    from ..models.metrics import spearman_correlation

    curve = insertion_curve(predict_fn, x, attribution, baseline)
    gains = np.abs(np.diff(curve))
    ranks = np.arange(gains.shape[0], 0, -1)  # descending importance
    if np.allclose(gains, gains[0]):
        return 0.0
    return spearman_correlation(ranks.astype(float), gains)


def faithfulness_report(
    predict_fn,
    X: np.ndarray,
    explainer,
    baseline: np.ndarray,
    k: int = 3,
    **explain_kwargs,
) -> dict[str, float]:
    """Average all faithfulness metrics for one explainer over ``X``."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    deletion_aucs, insertion_aucs = [], []
    comp, suff, mono = [], [], []
    for x in X:
        # Each row also feeds per-row curve evaluations below, so the
        # batch would be re-looped anyway.
        attribution = explainer.explain(x, **explain_kwargs)  # batch: allow
        sign = _direction(predict_fn, x, baseline)
        deletion = deletion_curve(predict_fn, x, attribution, baseline)
        insertion = insertion_curve(predict_fn, x, attribution, baseline)
        # Direction-corrected movement curves: higher AUC = more faithful
        # for both, comparable across instances on either side of the
        # baseline.
        deletion_aucs.append(curve_auc((deletion[0] - deletion) * sign))
        insertion_aucs.append(curve_auc((insertion - insertion[0]) * sign))
        comp.append(comprehensiveness(predict_fn, x, attribution, baseline, k))
        suff.append(sufficiency(predict_fn, x, attribution, baseline, k))
        mono.append(monotonicity(predict_fn, x, attribution, baseline))
    return {
        "deletion_auc": float(np.mean(deletion_aucs)),
        "insertion_auc": float(np.mean(insertion_aucs)),
        "comprehensiveness": float(np.mean(comp)),
        "sufficiency": float(np.mean(suff)),
        "monotonicity": float(np.mean(mono)),
    }
