"""Explanation robustness metrics.

Complementing faithfulness, robustness asks how much an explanation
changes when the *input* barely does — the fragility that the tutorial's
vulnerability discussion (Ghorbani et al.'s "Interpretation of neural
networks is fragile") is about. Two standard estimates:

* **max sensitivity** (Yeh et al. 2019) — the largest attribution change
  over sampled perturbations within an L∞ ball,
* **local Lipschitz estimate** (Alvarez-Melis & Jaakkola 2018) — the
  largest ratio ‖φ(x) − φ(x')‖ / ‖x − x'‖ over the same ball.

Both treat the explainer as a function of the input and are agnostic to
the attribution method.
"""

from __future__ import annotations

import numpy as np

__all__ = ["max_sensitivity", "lipschitz_estimate"]


def _perturbed_attributions(
    explainer, x: np.ndarray, radius: float, n_samples: int, seed: int,
    **explain_kwargs,
):
    rng = np.random.default_rng(seed)
    x = np.asarray(x, dtype=float).ravel()
    base = np.asarray(explainer.explain(x, **explain_kwargs).values)
    pairs = []
    for __ in range(n_samples):
        delta = rng.uniform(-radius, radius, x.shape[0])
        neighbor = x + delta
        values = np.asarray(
            explainer.explain(neighbor, **explain_kwargs).values  # batch: allow
        )
        pairs.append((neighbor, values))
    return base, pairs


def max_sensitivity(
    explainer,
    x: np.ndarray,
    radius: float = 0.1,
    n_samples: int = 10,
    seed: int = 0,
    **explain_kwargs,
) -> float:
    """max over sampled ‖x' − x‖∞ ≤ radius of ‖φ(x') − φ(x)‖₂."""
    base, pairs = _perturbed_attributions(
        explainer, x, radius, n_samples, seed, **explain_kwargs
    )
    return float(max(
        np.linalg.norm(values - base) for __, values in pairs
    ))


def lipschitz_estimate(
    explainer,
    x: np.ndarray,
    radius: float = 0.1,
    n_samples: int = 10,
    seed: int = 0,
    **explain_kwargs,
) -> float:
    """max over sampled neighbors of ‖φ(x') − φ(x)‖ / ‖x' − x‖."""
    x = np.asarray(x, dtype=float).ravel()
    base, pairs = _perturbed_attributions(
        explainer, x, radius, n_samples, seed, **explain_kwargs
    )
    ratios = [
        np.linalg.norm(values - base) / max(np.linalg.norm(neighbor - x), 1e-12)
        for neighbor, values in pairs
    ]
    return float(max(ratios))
