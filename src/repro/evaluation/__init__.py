"""Quantitative evaluation of explanations (§3, user study & evaluation)."""

from .faithfulness import (
    comprehensiveness,
    curve_auc,
    deletion_curve,
    faithfulness_report,
    insertion_curve,
    monotonicity,
    sufficiency,
)
from .robustness import lipschitz_estimate, max_sensitivity

__all__ = [
    "deletion_curve",
    "insertion_curve",
    "curve_auc",
    "comprehensiveness",
    "sufficiency",
    "monotonicity",
    "faithfulness_report",
    "max_sensitivity",
    "lipschitz_estimate",
]
