"""Fooling LIME and SHAP: adversarial scaffolding [Slack et al. 2020].

The attack the tutorial cites as a key vulnerability of perturbation-based
explainers (§2.1.1): both LIME and Kernel SHAP query the model on
*synthetic* points that are often far off the data manifold. An adversary
therefore wraps a genuinely biased model ``f`` with an out-of-distribution
detector and an innocuous model ``ψ``:

    e(x) = f(x)   if x looks like real data,
           ψ(x)   otherwise (i.e. for the explainer's perturbations),

so deployed decisions are biased while explanations — computed almost
entirely from perturbed queries — attribute everything to ψ's harmless
feature. The OOD detector here is a random forest trained on real rows
versus LIME-style perturbed rows, as in the reference attack.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import TabularDataset
from ..core.sampling import GaussianPerturber
from ..models.forest import RandomForestClassifier

__all__ = ["AdversarialModel", "train_ood_detector"]


def train_ood_detector(
    data: TabularDataset,
    n_perturbed: int | None = None,
    n_estimators: int = 50,
    seed: int = 0,
) -> RandomForestClassifier:
    """Random forest separating real rows (1) from perturbed rows (0).

    Slack et al. train the detector on the *attacked explainer's own*
    perturbation distribution. Both families are covered here:

    * LIME-style rows — Gaussian jitter / marginal resampling around a
      real anchor, and
    * Kernel-SHAP-style rows — coalition hybrids splicing a random subset
      of one real row's features into another real row.
    """
    rng = np.random.default_rng(seed)
    # Half of each perturbation family keeps real vs perturbed balanced.
    n_perturbed = (n_perturbed or data.n_samples) // 2
    perturber = GaussianPerturber(data)
    anchors = data.X[rng.integers(0, data.n_samples, n_perturbed)]
    lime_like = np.vstack([
        perturber.sample(anchor, 2, rng)[0][1] for anchor in anchors
    ])
    # SHAP hybrids: random coalition of anchor features over a random
    # background row (never the trivial all/none coalitions).
    backgrounds = data.X[rng.integers(0, data.n_samples, n_perturbed)]
    shap_like = backgrounds.copy()
    for row in range(n_perturbed):
        size = int(rng.integers(1, data.n_features))
        coalition = rng.choice(data.n_features, size=size, replace=False)
        shap_like[row, coalition] = anchors[row, coalition]
    perturbed = np.vstack([lime_like, shap_like])
    X = np.vstack([data.X, perturbed])
    y = np.concatenate([
        np.ones(data.n_samples, dtype=int),
        np.zeros(perturbed.shape[0], dtype=int),
    ])
    detector = RandomForestClassifier(
        n_estimators=n_estimators, max_depth=10, seed=seed
    )
    return detector.fit(X, y)


class AdversarialModel:
    """The Slack et al. wrapper: biased on-distribution, innocuous off.

    Parameters
    ----------
    biased_fn:
        The discriminatory decision function actually used on real data.
    innocuous_fn:
        The cover model shown to explainers (typically a function of one
        uncorrelated feature).
    detector:
        Classifier with ``predict_proba``; class 1 = "real data".
    ood_threshold:
        Rows whose real-data probability falls below this are routed to
        the innocuous model.
    """

    def __init__(
        self,
        biased_fn,
        innocuous_fn,
        detector,
        ood_threshold: float = 0.5,
    ) -> None:
        self.biased_fn = biased_fn
        self.innocuous_fn = innocuous_fn
        self.detector = detector
        self.ood_threshold = ood_threshold

    def calibrate(self, X_real: np.ndarray, target_rate: float = 0.95
                  ) -> "AdversarialModel":
        """Set the routing threshold so ≥ ``target_rate`` of real rows hit
        the biased model — the adversary's tuning step in the attack."""
        X_real = np.atleast_2d(np.asarray(X_real, dtype=float))
        scores = self.detector.predict_proba(X_real)[:, 1]
        self.ood_threshold = float(np.quantile(scores, 1.0 - target_rate))
        return self

    def __call__(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        in_dist = self.detector.predict_proba(X)[:, 1] >= self.ood_threshold
        out = np.where(
            in_dist,
            np.asarray(self.biased_fn(X), dtype=float).ravel(),
            np.asarray(self.innocuous_fn(X), dtype=float).ravel(),
        )
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Hard labels at the 0.5 threshold (black-box convention)."""
        return (self(X) >= 0.5).astype(int)

    def fidelity_to_bias(self, X: np.ndarray) -> float:
        """Fraction of rows routed to the biased model — the attack's
        success precondition on real data (should be ≈ 1)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return float(
            np.mean(self.detector.predict_proba(X)[:, 1] >= self.ood_threshold)
        )
