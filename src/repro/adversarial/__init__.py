"""Adversarial attacks on post-hoc explainers (§2.1.1 vulnerabilities)."""

from .fooling import AdversarialModel, train_ood_detector

__all__ = ["AdversarialModel", "train_ood_detector"]
