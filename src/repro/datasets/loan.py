"""SCM-backed synthetic loan-approval data (German-credit-like schema).

This is the library's running example, mirroring the credit/lending
scenarios the tutorial repeatedly refers to (recourse, LEWIS, GeCo). The
generator is a structural causal model, so every experiment that needs
causal ground truth (causal Shapley, necessity/sufficiency, recourse
feasibility) can query the true mechanisms instead of guessing them.

Causal graph::

    age ──────────────┬────────────► income ─────┬──► savings ──┐
      │               │                 ▲        │              │
      └──► education ─┘                 │        │              ▼
                │                    gender*     ├─────► credit_score ──► approved
                └───────────────────────────────┘                ▲
    employment_years ────────────────────────────────────────────┘

``gender`` affects income (an injected disparity used by the fairness and
fooling experiments) but has **no direct effect** on approval — any
explanation that blames gender directly is detectably wrong.
"""

from __future__ import annotations

import numpy as np

from ..causal.scm import StructuralCausalModel
from ..core.dataset import FeatureSpec, TabularDataset
from ..models.logistic import sigmoid

__all__ = ["make_loan_dataset", "make_loan_scm", "LOAN_FEATURES"]

LOAN_FEATURES = [
    FeatureSpec("age", "numeric", actionable=False),
    FeatureSpec("gender", "categorical", categories=("female", "male"),
                actionable=False),
    FeatureSpec("education", "numeric", monotone=+1),
    FeatureSpec("income", "numeric"),
    FeatureSpec("savings", "numeric"),
    FeatureSpec("employment_years", "numeric", monotone=+1),
    FeatureSpec("credit_score", "numeric"),
]

_FEATURE_ORDER = [f.name for f in LOAN_FEATURES]


def make_loan_scm(gender_gap: float = 0.8) -> StructuralCausalModel:
    """Build the loan SCM.

    Parameters
    ----------
    gender_gap:
        Strength of the injected income disparity between the two encoded
        gender values; 0 removes the disparity entirely.
    """
    scm = StructuralCausalModel()
    scm.add_variable(
        "age", [],
        lambda parents, u: np.clip(u, 18, 75),
        noise=lambda rng, n: rng.normal(40, 12, n),
    )
    scm.add_variable(
        "gender", [],
        lambda parents, u: u,
        noise=lambda rng, n: (rng.random(n) < 0.5).astype(float),
    )
    scm.add_variable(
        "education", ["age"],
        lambda parents, u: np.clip(
            1.0 + 0.05 * (parents["age"] - 18) + u, 0, 5
        ),
        noise=lambda rng, n: rng.normal(0, 1.0, n),
    )
    scm.add_variable(
        "income", ["age", "education", "gender"],
        lambda parents, u: np.maximum(
            1.0
            + 0.04 * (parents["age"] - 18)
            + 0.9 * parents["education"]
            + gender_gap * parents["gender"]
            + u,
            0.2,
        ),
        noise=lambda rng, n: rng.normal(0, 0.8, n),
    )
    scm.add_variable(
        "savings", ["income"],
        lambda parents, u: np.maximum(0.6 * parents["income"] + u, 0.0),
        noise=lambda rng, n: rng.normal(0, 0.7, n),
    )
    scm.add_variable(
        "employment_years", ["age"],
        lambda parents, u: np.clip(
            0.5 * (parents["age"] - 18) + u, 0, 50
        ),
        noise=lambda rng, n: rng.normal(0, 3.0, n),
    )
    scm.add_variable(
        "credit_score", ["income", "savings", "employment_years"],
        lambda parents, u: np.clip(
            500
            + 25 * parents["income"]
            + 18 * parents["savings"]
            + 3 * parents["employment_years"]
            + u,
            300, 850,
        ),
        noise=lambda rng, n: rng.normal(0, 30, n),
    )
    # Approval depends on credit_score, income, savings — NOT gender or age
    # directly; those act only through mediators.
    scm.add_variable(
        "approved", ["credit_score", "income", "savings"],
        lambda parents, u: (
            sigmoid(
                0.02 * (parents["credit_score"] - 620)
                + 0.45 * (parents["income"] - 4.0)
                + 0.25 * (parents["savings"] - 2.5)
            )
            > u
        ).astype(float),
        noise=lambda rng, n: rng.random(n),
    )
    return scm


def make_loan_dataset(
    n: int = 1000,
    seed: int = 0,
    gender_gap: float = 0.8,
    return_scm: bool = False,
):
    """Sample a loan-approval :class:`TabularDataset`.

    Returns the dataset, and additionally the generating SCM when
    ``return_scm`` is true.
    """
    scm = make_loan_scm(gender_gap=gender_gap)
    values = scm.sample(n, seed=seed)
    X = np.column_stack([values[name] for name in _FEATURE_ORDER])
    y = values["approved"].astype(int)
    data = TabularDataset(X, y, list(LOAN_FEATURES), target_name="approved")
    if return_scm:
        return data, scm
    return data
