"""Synthetic dataset generators with known ground truth.

Real counterparts (UCI Adult, German credit, COMPAS) are proprietary-ish
download artifacts; these generators match their schemas and correlation
structure while adding what the real data lacks — causal ground truth —
per the substitution policy in DESIGN.md.
"""

from .income import INCOME_FEATURES, make_income_dataset
from .loan import LOAN_FEATURES, make_loan_dataset, make_loan_scm
from .recidivism import RECIDIVISM_FEATURES, make_recidivism_dataset
from .synth import (
    flip_labels,
    make_baskets,
    make_classification,
    make_correlated_gaussian,
    make_grid_images,
    make_regression,
    make_xor,
)

__all__ = [
    "make_loan_dataset",
    "make_loan_scm",
    "LOAN_FEATURES",
    "make_income_dataset",
    "INCOME_FEATURES",
    "make_recidivism_dataset",
    "RECIDIVISM_FEATURES",
    "make_classification",
    "make_regression",
    "make_correlated_gaussian",
    "make_xor",
    "flip_labels",
    "make_baskets",
    "make_grid_images",
]
