"""COMPAS-like synthetic recidivism-risk data.

Reproduces the statistical signature that made COMPAS the canonical
fairness/XAI case study: a ``race`` attribute that is *correlated* with the
outcome through ``priors_count`` (differential policing baked into the
generator) but has no direct mechanism into reoffending. The adversarial
"Fooling LIME/SHAP" experiment (E5) uses exactly this: a biased model that
decides on ``race`` can hide behind an innocuous one on perturbations.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import FeatureSpec, TabularDataset
from ..models.logistic import sigmoid

__all__ = ["make_recidivism_dataset", "RECIDIVISM_FEATURES"]

RECIDIVISM_FEATURES = [
    FeatureSpec("age", "numeric", actionable=False),
    FeatureSpec("priors_count", "numeric", actionable=False),
    FeatureSpec("charge_degree", "categorical", categories=("misdemeanor", "felony"),
                actionable=False),
    FeatureSpec("race", "categorical", categories=("group_a", "group_b"),
                actionable=False),
    FeatureSpec("juvenile_count", "numeric", actionable=False),
    FeatureSpec("length_of_stay", "numeric", actionable=False),
]


def make_recidivism_dataset(
    n: int = 1500, seed: int = 0, policing_bias: float = 1.5
) -> TabularDataset:
    """Sample a COMPAS-like two-year-recidivism dataset.

    ``policing_bias`` scales how much the protected group's prior count is
    inflated relative to identical underlying behaviour; 0 removes the
    correlation between race and outcome entirely.
    """
    rng = np.random.default_rng(seed)
    age = np.clip(rng.normal(33, 10, n), 18, 75)
    race = (rng.random(n) < 0.45).astype(float)  # 1 = group_b (protected)
    latent_risk = np.clip(rng.normal(0, 1, n) - 0.03 * (age - 33), -3, 3)
    priors = np.clip(
        np.round(
            np.exp(0.6 * latent_risk) + policing_bias * race * rng.random(n) * 2
        ),
        0, 25,
    )
    juvenile = np.clip(np.round(rng.poisson(0.3, n) + 0.5 * (latent_risk > 1)), 0, 8)
    charge = (rng.random(n) < sigmoid(0.5 * latent_risk)).astype(float)
    stay = np.clip(rng.exponential(12, n) * (1 + 0.4 * charge), 0, 300)
    # Reoffending depends on latent risk and age only — not race.
    y = (
        sigmoid(1.1 * latent_risk - 0.02 * (age - 33) - 0.3) > rng.random(n)
    ).astype(int)
    X = np.column_stack([age, priors, charge, race, juvenile, stay])
    return TabularDataset(
        X, y, list(RECIDIVISM_FEATURES), target_name="two_year_recid"
    )
