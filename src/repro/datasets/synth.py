"""Generic synthetic generators used across tests and benchmarks.

These are deliberately simple, fully specified distributions so the
experiments can control exactly one property at a time: feature
correlation (for conditional vs marginal Shapley), known linear ground
truth (for axiom tests), label noise (for data valuation), market baskets
(for rule mining) and tiny pixel grids (for the Section-2.4 gradient
methods).
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import FeatureSpec, TabularDataset
from ..models.logistic import sigmoid

__all__ = [
    "make_classification",
    "make_regression",
    "make_correlated_gaussian",
    "make_xor",
    "flip_labels",
    "make_baskets",
    "make_grid_images",
]


def make_classification(
    n: int = 500,
    n_features: int = 8,
    n_informative: int = 4,
    class_sep: float = 1.5,
    seed: int = 0,
) -> TabularDataset:
    """Two Gaussian clusters separated along random informative directions.

    The first ``n_informative`` features carry signal; the rest are pure
    noise, giving attribution tests a known set of irrelevant features.
    """
    if n_informative > n_features:
        raise ValueError("n_informative cannot exceed n_features")
    rng = np.random.default_rng(seed)
    y = (rng.random(n) < 0.5).astype(int)
    X = rng.normal(0, 1, size=(n, n_features))
    directions = rng.normal(0, 1, size=n_informative)
    directions /= np.linalg.norm(directions)
    shift = class_sep * directions
    X[:, :n_informative] += np.outer(2 * y - 1, shift / 2.0)
    return TabularDataset(X, y, [f"f{i}" for i in range(n_features)])


def make_regression(
    n: int = 500,
    n_features: int = 8,
    noise: float = 0.5,
    seed: int = 0,
) -> tuple[TabularDataset, np.ndarray]:
    """Linear-model data; returns the dataset and the true coefficients."""
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, size=(n, n_features))
    coef = rng.normal(0, 2, size=n_features)
    # Zero out half the coefficients so "irrelevant feature" is testable.
    coef[n_features // 2 :] = 0.0
    y = X @ coef + rng.normal(0, noise, n)
    data = TabularDataset(X, y, [f"f{i}" for i in range(n_features)])
    return data, coef


def make_correlated_gaussian(
    n: int = 500,
    n_features: int = 4,
    rho: float = 0.8,
    seed: int = 0,
) -> np.ndarray:
    """Equicorrelated Gaussian features (pairwise correlation ``rho``)."""
    if not -1.0 / (n_features - 1) < rho < 1.0:
        raise ValueError(f"rho={rho} gives a non-PSD covariance")
    cov = np.full((n_features, n_features), rho)
    np.fill_diagonal(cov, 1.0)
    rng = np.random.default_rng(seed)
    return rng.multivariate_normal(np.zeros(n_features), cov, size=n)


def make_xor(n: int = 500, noise: float = 0.1, seed: int = 0) -> TabularDataset:
    """The 2-feature XOR problem — purely interactional signal.

    No single feature is marginally informative, which makes XOR the
    canonical stress test for additive explainers like LIME.
    """
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    X = X + rng.normal(0, noise, size=X.shape)
    return TabularDataset(X, y, ["a", "b"])


def flip_labels(
    data: TabularDataset, fraction: float = 0.1, seed: int = 0
) -> tuple[TabularDataset, np.ndarray]:
    """Flip a random fraction of binary labels; returns (data, flipped_idx).

    Used by the data-valuation experiments (E7): the flipped indices are
    the ground-truth "bad" points a good valuation should rank lowest.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_flip = int(round(fraction * data.n_samples))
    flipped = rng.choice(data.n_samples, size=n_flip, replace=False)
    y = data.y.copy()
    y[flipped] = 1 - y[flipped]
    return TabularDataset(data.X, y, list(data.features), data.target_name), flipped


def make_baskets(
    n_transactions: int = 1000,
    n_items: int = 30,
    n_patterns: int = 5,
    pattern_size: int = 3,
    pattern_prob: float = 0.25,
    noise_items: float = 2.0,
    seed: int = 0,
) -> tuple[list[frozenset[int]], list[frozenset[int]]]:
    """Market-basket transactions with planted frequent itemsets.

    Returns ``(transactions, planted_patterns)``. Each transaction embeds
    each planted pattern independently with probability ``pattern_prob``
    and adds Poisson-many random noise items, so the planted patterns are
    the frequent itemsets rule miners must recover.
    """
    rng = np.random.default_rng(seed)
    patterns = []
    for __ in range(n_patterns):
        items = rng.choice(n_items, size=pattern_size, replace=False)
        patterns.append(frozenset(int(i) for i in items))
    transactions = []
    for __ in range(n_transactions):
        basket: set[int] = set()
        for pattern in patterns:
            if rng.random() < pattern_prob:
                basket |= pattern
        n_noise = rng.poisson(noise_items)
        basket |= {int(i) for i in rng.choice(n_items, size=n_noise)}
        transactions.append(frozenset(basket))
    return transactions, patterns


def make_grid_images(
    n: int = 400, size: int = 8, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tiny "images" for the Section-2.4 gradient-attribution methods.

    Class 1 images contain a bright 3×3 patch in the top-left quadrant;
    class 0 images contain it in the bottom-right. Returns
    ``(X, y, relevance)`` where ``X`` is ``(n, size*size)`` flattened
    pixels and ``relevance`` is a per-class boolean mask over pixels of
    where the discriminative patch can appear — the ground truth saliency
    methods should highlight.
    """
    rng = np.random.default_rng(seed)
    X = rng.normal(0.0, 0.3, size=(n, size, size))
    y = (rng.random(n) < 0.5).astype(int)
    half = size // 2
    relevance = np.zeros((2, size, size), dtype=bool)
    relevance[1, :half, :half] = True
    relevance[0, half:, half:] = True
    for i in range(n):
        quadrant = (0, 0) if y[i] == 1 else (half, half)
        r = quadrant[0] + rng.integers(0, half - 2)
        c = quadrant[1] + rng.integers(0, half - 2)
        X[i, r : r + 3, c : c + 3] += 1.5
    return X.reshape(n, -1), y, relevance.reshape(2, -1)
