"""Adult-census-like synthetic income data.

Matches the schema and correlation structure of the UCI Adult dataset the
cited systems (LIME, SHAP, Anchors, DiCE) evaluate on: mixed categorical
and numeric features, a >50K/<=50K style binary target driven by
education, hours worked, age and occupation, with marital status acting as
a strong correlated proxy — the property that makes Adult a standard
testbed for rule-based explainers.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import FeatureSpec, TabularDataset
from ..models.logistic import sigmoid

__all__ = ["make_income_dataset", "INCOME_FEATURES"]

_OCCUPATIONS = ("service", "clerical", "trades", "professional", "managerial")
_MARITAL = ("never-married", "married", "divorced")
_WORKCLASS = ("private", "government", "self-employed")

INCOME_FEATURES = [
    FeatureSpec("age", "numeric", actionable=False),
    FeatureSpec("education_num", "numeric", monotone=+1),
    FeatureSpec("hours_per_week", "numeric"),
    FeatureSpec("capital_gain", "numeric"),
    FeatureSpec("occupation", "categorical", categories=_OCCUPATIONS),
    FeatureSpec("marital_status", "categorical", categories=_MARITAL,
                actionable=False),
    FeatureSpec("workclass", "categorical", categories=_WORKCLASS),
]


def make_income_dataset(n: int = 1500, seed: int = 0) -> TabularDataset:
    """Sample an Adult-like binary income classification dataset."""
    rng = np.random.default_rng(seed)
    age = np.clip(rng.normal(39, 13, n), 17, 90)
    education = np.clip(rng.normal(10 + 0.02 * (age - 39), 2.5, n), 1, 16)
    # Occupation skews with education: higher education → professional.
    occ_logits = np.zeros((n, len(_OCCUPATIONS)))
    occ_logits[:, 3] = 0.4 * (education - 10)      # professional
    occ_logits[:, 4] = 0.3 * (education - 10)      # managerial
    occ_logits += rng.gumbel(0, 1, size=occ_logits.shape)
    occupation = np.argmax(occ_logits, axis=1).astype(float)
    marital = rng.choice(
        len(_MARITAL), size=n, p=(0.33, 0.46, 0.21)
    ).astype(float)
    workclass = rng.choice(
        len(_WORKCLASS), size=n, p=(0.7, 0.17, 0.13)
    ).astype(float)
    hours = np.clip(
        rng.normal(40 + 2.0 * (occupation >= 3), 9, n), 5, 99
    )
    capital_gain = np.where(
        rng.random(n) < 0.08, rng.exponential(8.0, n), 0.0
    )
    score = (
        0.35 * (education - 10)
        + 0.045 * (age - 39)
        + 0.05 * (hours - 40)
        + 0.25 * capital_gain
        + 0.9 * (marital == 1)       # married: the classic Adult proxy
        + 0.5 * (occupation >= 3)
        - 0.6
    )
    y = (sigmoid(score) > rng.random(n)).astype(int)
    X = np.column_stack(
        [age, education, hours, capital_gain, occupation, marital, workclass]
    )
    return TabularDataset(X, y, list(INCOME_FEATURES), target_name="high_income")
