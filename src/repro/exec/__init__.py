"""Pluggable execution backends for the games layer.

The tutorial's cost axis frames every perturbation-based explainer as a
massive batch of model queries; PR 2–4 made those queries cheap per call
(broadcast masking, caching, chunking) but left all parallelism
thread-based and GIL-bound. This package adds the missing scale-out
layer: permutation walks and coalition chunks are *sharded* across a
``ProcessPoolExecutor`` (or thread pool) with deterministic work
partitioning, and the shard results are reduced in shard order so the
attributions are **bitwise identical** to the serial estimator — the
reproducibility bar "Which LIME should I trust?" sets for explanation
pipelines.

Three public levers select the backend, in priority order:

* the ``backend=`` parameter on the estimators /
  ``AttributionExplainer.explain_batch``;
* the ``REPRO_BACKEND`` environment variable (CLI flag ``--backend``);
* the default, ``"serial"``.

``REPRO_N_PROCS`` / ``--n-procs`` (or the ``n_shards=`` /
``n_procs=`` parameters) size the worker pool.

The deterministic contract (see DESIGN.md "Execution backends"):

* **shard** — work items (permutation walks, coalition-matrix rows) are
  split into contiguous, balanced slices by :func:`plan_shards`; each
  shard also carries a ``SeedSequence.spawn``-derived seed so future
  stochastic games can draw worker-local randomness reproducibly;
* **seed** — all randomness consumed by today's estimators is drawn in
  the parent from the canonical single stream
  (``np.random.default_rng(seed)``), *before* dispatch, so the sampled
  permutations are identical whatever the backend or shard count;
* **reduce** — the parent re-accumulates per-item results in global item
  order, preserving the exact floating-point association of the serial
  loop (last-ulp identical, not just close).

Workers marshal three runtime layers back across the process boundary:
metric counter deltas (``coalition.cache.*``, ``datavalue.cache.*``,
``model.*``, ``robust.*``) merged into the parent registry, span records
re-parented under the caller's open span, and
:class:`~repro.robust.GuardScope` budget shares reconciled on join.
"""

from .backend import (
    BACKENDS,
    fork_available,
    in_worker,
    resolve_backend,
    resolve_n_procs,
    worker_mode,
)
from .pool import ShardError, ShardOutcome, map_shards, merge_counter_deltas
from .sharding import ShardPlan, plan_shards

__all__ = [
    "BACKENDS",
    "ShardError",
    "ShardOutcome",
    "ShardPlan",
    "fork_available",
    "in_worker",
    "map_shards",
    "merge_counter_deltas",
    "plan_shards",
    "resolve_backend",
    "resolve_n_procs",
    "worker_mode",
]
