"""Deterministic work partitioning for the execution backends.

A :class:`ShardPlan` splits ``n_items`` work items (permutation walks,
coalition-matrix rows) into at most ``n_shards`` contiguous, balanced
slices. Contiguity is what makes the reduce step trivial and exact: the
parent walks the shards in order and re-accumulates per-item results in
global item order, reproducing the serial loop's floating-point
association bit for bit.

Each shard also carries a ``numpy.random.SeedSequence`` derived from
``(seed, shard_index)`` via ``SeedSequence(seed).spawn(n_shards)``.
Today's estimators do not consume worker-local randomness — every
permutation is drawn in the parent from the canonical single stream
before dispatch, which is what keeps attributions identical across
backends and shard counts — but the spawned seeds are part of the plan
(and of its tests) so a future stochastic game can draw reproducible
worker-local randomness without redesigning the contract. Spawned
children are statistically independent of each other *and* of
``default_rng(seed)`` itself, so using them can never correlate a
worker's draws with the parent's permutation stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ShardPlan", "plan_shards", "shard_utilization"]


def shard_utilization(durations_s) -> tuple[float, float, float]:
    """Pool-health signals from per-shard wall durations.

    Returns ``(utilization, imbalance, idle_s)`` for a gang of shards
    that start together and join on the slowest one:

    * ``utilization`` — busy fraction of the pool's wall·worker area,
      ``sum(d) / (n * max(d))`` — 1.0 means perfectly balanced shards;
    * ``imbalance`` — ``max(d) / mean(d)`` — 1.0 is perfect balance,
      2.0 means the slowest shard ran twice the mean (stragglers);
    * ``idle_s`` — the total idle tail, ``sum(max(d) - d)`` — worker
      seconds wasted waiting on the slowest shard.

    Degenerate inputs (no durations, all-zero durations) report the
    optimistic fixpoint ``(1.0, 1.0, 0.0)`` rather than dividing by
    zero.
    """
    durations = [float(d) for d in durations_s if d is not None]
    n = len(durations)
    if n == 0:
        return 1.0, 1.0, 0.0
    longest = max(durations)
    total = sum(durations)
    if longest <= 0.0:
        return 1.0, 1.0, 0.0
    utilization = total / (n * longest)
    imbalance = longest / (total / n)
    idle_s = n * longest - total
    return utilization, imbalance, idle_s


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous balanced slices of ``n_items``, with per-shard seeds.

    ``slices[k] = (start, stop)`` is shard ``k``'s half-open item range;
    ``shard_seeds[k]`` is the ``SeedSequence`` spawned for it. The number
    of shards never exceeds the number of items (empty shards would be
    pure overhead).
    """

    n_items: int
    seed: int
    slices: tuple[tuple[int, int], ...]
    shard_seeds: tuple[np.random.SeedSequence, ...]

    @property
    def n_shards(self) -> int:
        return len(self.slices)

    def rngs(self) -> list[np.random.Generator]:
        """One ``default_rng`` per shard, from the spawned seeds."""
        return [np.random.default_rng(s) for s in self.shard_seeds]


def plan_shards(n_items: int, n_shards: int, seed: int = 0) -> ShardPlan:
    """Split ``n_items`` into ≤ ``n_shards`` balanced contiguous slices.

    The first ``n_items % n_shards`` slices get one extra item, so sizes
    differ by at most one — the standard balanced partition, chosen over
    round-robin because contiguity preserves the serial accumulation
    order on reduce.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    n_shards = max(1, min(int(n_shards), n_items)) if n_items else 1
    base, extra = divmod(n_items, n_shards)
    slices: list[tuple[int, int]] = []
    start = 0
    for k in range(n_shards):
        size = base + (1 if k < extra else 0)
        slices.append((start, start + size))
        start += size
    seeds = np.random.SeedSequence(seed).spawn(n_shards)
    return ShardPlan(
        n_items=n_items,
        seed=seed,
        slices=tuple(slices),
        shard_seeds=tuple(seeds),
    )
