"""Deterministic work partitioning for the execution backends.

A :class:`ShardPlan` splits ``n_items`` work items (permutation walks,
coalition-matrix rows) into at most ``n_shards`` contiguous, balanced
slices. Contiguity is what makes the reduce step trivial and exact: the
parent walks the shards in order and re-accumulates per-item results in
global item order, reproducing the serial loop's floating-point
association bit for bit.

Each shard also carries a ``numpy.random.SeedSequence`` derived from
``(seed, shard_index)`` via ``SeedSequence(seed).spawn(n_shards)``.
Today's estimators do not consume worker-local randomness — every
permutation is drawn in the parent from the canonical single stream
before dispatch, which is what keeps attributions identical across
backends and shard counts — but the spawned seeds are part of the plan
(and of its tests) so a future stochastic game can draw reproducible
worker-local randomness without redesigning the contract. Spawned
children are statistically independent of each other *and* of
``default_rng(seed)`` itself, so using them can never correlate a
worker's draws with the parent's permutation stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous balanced slices of ``n_items``, with per-shard seeds.

    ``slices[k] = (start, stop)`` is shard ``k``'s half-open item range;
    ``shard_seeds[k]`` is the ``SeedSequence`` spawned for it. The number
    of shards never exceeds the number of items (empty shards would be
    pure overhead).
    """

    n_items: int
    seed: int
    slices: tuple[tuple[int, int], ...]
    shard_seeds: tuple[np.random.SeedSequence, ...]

    @property
    def n_shards(self) -> int:
        return len(self.slices)

    def rngs(self) -> list[np.random.Generator]:
        """One ``default_rng`` per shard, from the spawned seeds."""
        return [np.random.default_rng(s) for s in self.shard_seeds]


def plan_shards(n_items: int, n_shards: int, seed: int = 0) -> ShardPlan:
    """Split ``n_items`` into ≤ ``n_shards`` balanced contiguous slices.

    The first ``n_items % n_shards`` slices get one extra item, so sizes
    differ by at most one — the standard balanced partition, chosen over
    round-robin because contiguity preserves the serial accumulation
    order on reduce.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    n_shards = max(1, min(int(n_shards), n_items)) if n_items else 1
    base, extra = divmod(n_items, n_shards)
    slices: list[tuple[int, int]] = []
    start = 0
    for k in range(n_shards):
        size = base + (1 if k < extra else 0)
        slices.append((start, start + size))
        start += size
    seeds = np.random.SeedSequence(seed).spawn(n_shards)
    return ShardPlan(
        n_items=n_items,
        seed=seed,
        slices=tuple(slices),
        shard_seeds=tuple(seeds),
    )
