"""Backend selection: ``backend=`` param > ``REPRO_BACKEND`` > serial.

``serial`` is the correctness baseline and the default — parallelism is
opt-in, exactly like ``REPRO_N_JOBS`` on ``explain_batch``. ``thread``
shares one address space (caches, metrics and spans work natively) and
helps when coalition evaluation releases the GIL (numpy kernels, I/O
latency); ``process`` forks workers and helps for CPU-bound pure-Python
value functions (utility refits, relational queries) where threads gain
nothing.

``spawn`` starts fresh interpreter processes instead of forking: the
shard runner travels by pickle (no inherited memory), which is the only
process path on platforms without ``fork`` and the safe one in threaded
parents. Runners that cannot pickle (closures over fitted models)
degrade to ``thread`` with the same bitwise results.

Inside a pool worker :func:`resolve_backend` always answers
``"serial"`` — a sharded estimator re-entered from a worker must not
fork grandchildren (the fork-bomb guard). :func:`worker_mode` flips the
flag for the worker's lifetime via the pool initializer.
"""

from __future__ import annotations

import multiprocessing
import os

__all__ = [
    "BACKENDS",
    "in_worker",
    "worker_mode",
    "resolve_backend",
    "resolve_n_procs",
    "fork_available",
]

BACKENDS = ("serial", "thread", "process", "spawn")

_IN_WORKER = False


def in_worker() -> bool:
    """Whether this process is an exec-backend pool worker."""
    return _IN_WORKER


def worker_mode(flag: bool = True) -> None:
    """Mark this process as a pool worker (set by the pool initializer)."""
    global _IN_WORKER
    _IN_WORKER = bool(flag)


def fork_available() -> bool:
    """Whether the ``fork`` start method exists (POSIX; not Windows)."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_backend(value: str | None = None) -> str:
    """The execution backend: explicit > ``REPRO_BACKEND`` > ``serial``.

    Unknown names raise :class:`ValueError` (explicit or from the env
    var — a typo must not silently serialize a benchmark). Inside a
    pool worker the answer is always ``serial``.
    """
    if _IN_WORKER:
        return "serial"
    if value is None:
        env = os.environ.get("REPRO_BACKEND", "").strip().lower()
        value = env or None
    if value is None:
        return "serial"
    value = str(value).strip().lower()
    if value not in BACKENDS:
        raise ValueError(
            f"backend must be one of {'|'.join(BACKENDS)}, got {value!r}"
        )
    return value


def resolve_n_procs(value: int | None = None) -> int:
    """Worker count: explicit > ``REPRO_N_PROCS`` > CPU count, min 1.

    ``-1`` (either source) means "all cores", mirroring
    ``REPRO_N_JOBS`` on the batch thread pool.
    """
    if value is None:
        env = os.environ.get("REPRO_N_PROCS", "").strip()
        if env:
            try:
                value = int(env)
            except ValueError:
                value = None
    if value is None:
        return os.cpu_count() or 1
    value = int(value)
    if value < 0:
        value = os.cpu_count() or 1
    return max(1, value)
