"""Shard execution: fork/thread pools plus worker-state marshalling.

:func:`map_shards` is the one entry point the estimators and
``explain_batch`` use. It runs ``run_shard(args)`` once per shard and
returns :class:`ShardOutcome` records **in shard order** — the caller
reduces them sequentially, which is what preserves the serial
floating-point accumulation order.

The ``process`` backend forks (POSIX ``fork`` start method): games,
predict functions and value-function closures are almost never picklable
(lambdas over fitted models), so they travel to the worker as inherited
memory via a module-level payload slot set immediately before the pool
is created, and only the per-shard *arguments* (permutation arrays, mask
slices, row blocks) cross the pickle boundary. Each worker is marked via
the pool initializer so :func:`repro.exec.resolve_backend` answers
``serial`` inside it — a sharded estimator re-entered from a worker
never forks grandchildren.

Three runtime layers are marshalled back per shard and merged on join:

* **metrics** — the worker snapshots every counter *and histogram*
  before running and ships the deltas; the parent re-increments its own
  registry, so ``coalition.cache.*``, ``datavalue.cache.*``,
  ``model.*`` and ``robust.*`` counters — and latency histograms like
  ``model.latency_ms`` / ``coalition.chunk_ms``, whose fixed shared
  bucket boundaries make their deltas additive — aggregate exactly as
  they would have serially (process-local undercounting was the PR 5
  bug this path fixes);
* **spans** — the worker ships the span records it closed; the parent
  adopts them with fresh ids, preserving worker-internal parent links
  and re-parenting the roots under the caller's open span
  (:func:`repro.obs.trace.adopt_span_records`);
* **budgets** — when the caller opts in (``split_scope=True``) and a
  :class:`~repro.robust.GuardScope` is ambient, its *remaining* query
  budget is split across shards (remainder to the earliest shards) and
  its remaining deadline is passed through; each worker runs under its
  own scope and the rows/retries it spent are charged back to the
  parent scope on join. Budget exhaustion inside a worker is the
  ``run_shard`` callable's business (estimators return their completed
  walks plus an error marker, exactly like the serial path).

A worker that dies outright (``os._exit``, segfault) breaks the pool;
the affected shards come back as :class:`ShardError` outcomes rather
than raising, so callers degrade to partial results instead of losing
the shards that finished.

Every join also emits pool-health telemetry: per-shard wall time into
the ``exec.shard_ms`` histogram, plus the ``exec.utilization``,
``exec.imbalance`` and ``exec.idle_s`` gauges derived from the gang's
duration profile (:func:`repro.exec.sharding.shard_utilization`).

The thread backend runs the same contract on a ``ThreadPoolExecutor``
with context-copied workers — metrics and spans need no marshalling
(shared address space), only the budget split applies.

The fork-inheritance design is also what makes the amortized batch path
(PR 7) cheap to shard: a shared :class:`~repro.games.plan.CoalitionPlan`
or :class:`~repro.shapley.tree.TreePrecompute` built once in the parent
reaches every worker via copy-on-write memory — per shard only the
``(lo, hi)`` row slice crosses the pickle boundary, never the plan's
mask/permutation arrays or the tree tables.
"""

from __future__ import annotations

import contextvars
import multiprocessing
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from ..obs import metrics
from ..obs.trace import adopt_span_records, get_tracer
from ..robust.errors import ModelEvaluationError
from ..robust.guard import GuardScope, current_scope, push_scope
from .backend import fork_available, resolve_n_procs, worker_mode
from .sharding import shard_utilization

__all__ = [
    "ShardError",
    "ShardOutcome",
    "map_shards",
    "merge_counter_deltas",
]

_FORK_UNAVAILABLE = "exec.fork_unavailable"
_SHARDS_RUN = "exec.shards"
_SPAWN_UNPICKLABLE = "exec.spawn_unpicklable"
_WORKER_DEATHS = "exec.worker_deaths"


class ShardError(ModelEvaluationError):
    """A shard was lost whole (its worker process died mid-shard)."""


@dataclass
class ShardOutcome:
    """What one shard produced, already merged into the parent runtime.

    ``value`` is ``run_shard``'s return value (``None`` when the shard
    errored); ``error`` carries the exception for a failed shard;
    ``rows_spent`` / ``retries`` are the budget charges the shard's
    scope accumulated (0 when no scope was split); ``duration_s`` is
    the shard's wall time inside its worker (``None`` for lost shards).
    """

    index: int
    value: object = None
    error: BaseException | None = None
    rows_spent: int = 0
    retries: int = 0
    counter_deltas: dict = field(default_factory=dict)
    histogram_deltas: dict = field(default_factory=dict)
    duration_s: float | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _counter_values() -> dict[str, int]:
    return {
        name: payload["value"]
        for name, payload in metrics.snapshot().items()
        if payload.get("type") == "counter"
    }


def _counter_deltas(before: dict[str, int]) -> dict[str, int]:
    return {
        name: value - before.get(name, 0)
        for name, value in _counter_values().items()
        if value != before.get(name, 0)
    }


def merge_counter_deltas(deltas: dict[str, int]) -> None:
    """Re-increment worker counter deltas into this process's registry."""
    for name, delta in deltas.items():
        if delta > 0:
            metrics.counter(name).inc(delta)


def _scope_shares(n_shards: int) -> list[tuple[float | None, int | None]] | None:
    """Per-shard ``(deadline_s, query_budget)`` splits of the ambient scope.

    ``None`` when no scope is ambient. The *remaining* row budget is
    divided evenly with the remainder going to the earliest shards (the
    reduce step consumes shards in order, so early shards' walks are the
    ones a partial estimate keeps); the remaining deadline passes
    through whole — shards run concurrently, wall clock is shared.
    """
    scope = current_scope()
    if scope is None:
        return None
    deadline = scope.remaining_s()
    if scope.query_budget is None:
        return [(deadline, None)] * n_shards
    remaining = max(0, scope.query_budget - scope.rows_spent)
    base, extra = divmod(remaining, n_shards)
    return [
        (deadline, base + (1 if k < extra else 0)) for k in range(n_shards)
    ]


def _settle(outcomes: list[ShardOutcome]) -> list[ShardOutcome]:
    """Charge budgets back to the ambient scope and emit pool telemetry."""
    scope = current_scope()
    if scope is not None:
        for outcome in outcomes:
            scope.rows_spent += outcome.rows_spent
            scope.retries += outcome.retries
    metrics.counter(_SHARDS_RUN).inc(len(outcomes))
    durations = [o.duration_s for o in outcomes if o.duration_s is not None]
    if durations:
        shard_ms = metrics.histogram("exec.shard_ms")
        for d in durations:
            shard_ms.observe(d * 1000.0)
        utilization, imbalance, idle_s = shard_utilization(durations)
        metrics.gauge("exec.utilization").set(utilization)
        metrics.gauge("exec.imbalance").set(imbalance)
        metrics.gauge("exec.idle_s").set(idle_s)
    return outcomes


# -- thread backend -----------------------------------------------------------


def _thread_entry(run_shard, args, share):
    scope = None if share is None else GuardScope(share[0], share[1])
    t0 = time.perf_counter()  # obs: allow — raw shard duration feeds gauges
    with push_scope(scope) if scope is not None else _noop():
        value = run_shard(args)
    duration = time.perf_counter() - t0  # obs: allow
    if scope is None:
        return value, 0, 0, duration
    return value, scope.rows_spent, scope.retries, duration


class _noop:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _map_thread(run_shard, shard_args, n_workers, shares):
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [
            pool.submit(
                contextvars.copy_context().run,
                _thread_entry,
                run_shard,
                args,
                None if shares is None else shares[k],
            )
            for k, args in enumerate(shard_args)
        ]
        outcomes = []
        for k, future in enumerate(futures):
            try:
                value, rows, retries, duration = future.result()
            except Exception as e:  # per-shard containment, like explain_batch
                outcomes.append(ShardOutcome(index=k, error=e))
            else:
                outcomes.append(
                    ShardOutcome(
                        index=k,
                        value=value,
                        rows_spent=rows,
                        retries=retries,
                        duration_s=duration,
                    )
                )
    return outcomes


# -- process backend ----------------------------------------------------------

# The fork-inherited payload slot. Set under _POOL_LOCK immediately before
# the pool is created (workers fork on first submit, so they see it), and
# cleared after shutdown. Closures, games and fitted models ride across
# as inherited memory — only shard args are pickled.
_PAYLOAD: Callable | None = None
_POOL_LOCK = threading.Lock()


def _worker_init() -> None:
    worker_mode(True)


def _process_entry(args, share):
    baseline = _counter_values()
    hist_baseline = metrics.histogram_states()
    tracer = get_tracer()
    mark = tracer.mark()
    run_shard = _PAYLOAD
    t0 = time.perf_counter()  # obs: allow — raw shard duration feeds gauges
    if share is None:
        value = run_shard(args)
        rows = retries = 0
    else:
        scope = GuardScope(share[0], share[1])
        with push_scope(scope):
            value = run_shard(args)
        rows, retries = scope.rows_spent, scope.retries
    duration = time.perf_counter() - t0  # obs: allow
    return {
        "value": value,
        "counters": _counter_deltas(baseline),
        "histograms": metrics.histogram_deltas(hist_baseline),
        "spans": [s.to_dict() for s in tracer.spans_since(mark)],
        "rows_spent": rows,
        "retries": retries,
        "duration_s": duration,
    }


def _collect_futures(futures) -> list[ShardOutcome]:
    """Drain process-pool futures into ordered :class:`ShardOutcome`s."""
    outcomes: list[ShardOutcome] = []
    for k, future in enumerate(futures):
        try:
            payload = future.result()
        except BrokenProcessPool as e:
            metrics.counter(_WORKER_DEATHS).inc()
            outcomes.append(
                ShardOutcome(
                    index=k,
                    error=ShardError(
                        f"shard {k} lost: worker process died ({e})"
                    ),
                )
            )
        except Exception as e:
            outcomes.append(ShardOutcome(index=k, error=e))
        else:
            adopt_span_records(payload["spans"])
            outcomes.append(
                ShardOutcome(
                    index=k,
                    value=payload["value"],
                    rows_spent=payload["rows_spent"],
                    retries=payload["retries"],
                    counter_deltas=payload["counters"],
                    histogram_deltas=payload["histograms"],
                    duration_s=payload["duration_s"],
                )
            )
    return outcomes


def _merge_outcome_metrics(outcomes: list[ShardOutcome]) -> list[ShardOutcome]:
    """Re-play worker metric deltas into the parent registry.

    Happens outside the span adoption loop so a failed shard cannot
    interleave half-merged state.
    """
    for outcome in outcomes:
        merge_counter_deltas(outcome.counter_deltas)
        metrics.merge_histogram_deltas(outcome.histogram_deltas)
    return outcomes


def _map_process(run_shard, shard_args, n_workers, shares):
    global _PAYLOAD
    with _POOL_LOCK:
        _PAYLOAD = run_shard
        try:
            ctx = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=n_workers,
                mp_context=ctx,
                initializer=_worker_init,
            ) as pool:
                futures = [
                    pool.submit(
                        _process_entry,
                        args,
                        None if shares is None else shares[k],
                    )
                    for k, args in enumerate(shard_args)
                ]
                outcomes = _collect_futures(futures)
        finally:
            _PAYLOAD = None
    return _merge_outcome_metrics(outcomes)


# -- spawn backend ------------------------------------------------------------


def _spawn_init(blob: bytes) -> None:
    """Spawn-worker initializer: mark worker mode, unpickle the runner.

    The runner lands in the same ``_PAYLOAD`` slot the fork path uses —
    but in the *worker's* fresh interpreter, so no parent-side lock or
    cleanup is needed and :func:`_process_entry` is shared verbatim.
    """
    global _PAYLOAD
    worker_mode(True)
    _PAYLOAD = pickle.loads(blob)


def _map_spawn(run_shard, shard_args, n_workers, shares):
    """Fork-free process backend: the runner crosses by pickle.

    Unlike ``process`` there is no inherited memory, so ``run_shard``
    must be picklable — a module-level callable or an instance of one
    whose state rebuilds in the worker (the estimators' shard runners).
    Unpicklable runners degrade to the thread backend (counted as
    ``exec.spawn_unpicklable``), which is bitwise-identical by the
    thread==serial contract.
    """
    try:
        blob = pickle.dumps(run_shard)
    except Exception:
        metrics.counter(_SPAWN_UNPICKLABLE).inc()
        return _map_thread(run_shard, shard_args, n_workers, shares)
    ctx = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=ctx,
        initializer=_spawn_init,
        initargs=(blob,),
    ) as pool:
        futures = [
            pool.submit(
                _process_entry,
                args,
                None if shares is None else shares[k],
            )
            for k, args in enumerate(shard_args)
        ]
        outcomes = _collect_futures(futures)
    return _merge_outcome_metrics(outcomes)


def map_shards(
    run_shard: Callable,
    shard_args: list,
    backend: str,
    n_procs: int | None = None,
    split_scope: bool = True,
) -> list[ShardOutcome]:
    """Run ``run_shard`` over every shard; outcomes come back in order.

    ``backend`` must be ``"thread"``, ``"process"`` or ``"spawn"``
    (serial execution never reaches the pool — callers keep their own
    serial loop, which is the bitwise reference). ``process`` degrades
    to ``thread`` when the ``fork`` start method is unavailable (counted
    as ``exec.fork_unavailable``), because the payload-inheritance
    design requires fork; ``spawn`` degrades to ``thread`` when the
    runner cannot pickle (``exec.spawn_unpicklable``).
    ``split_scope=False`` skips the budget split — used by
    ``explain_batch``, whose rows open their own scopes.
    """
    if backend not in ("thread", "process", "spawn"):
        raise ValueError(f"map_shards backend must be thread|process|spawn, "
                         f"got {backend!r}")
    if not shard_args:
        return []
    if backend == "process" and not fork_available():
        metrics.counter(_FORK_UNAVAILABLE).inc()
        backend = "thread"
    n_workers = min(resolve_n_procs(n_procs), len(shard_args))
    shares = _scope_shares(len(shard_args)) if split_scope else None
    if backend == "thread":
        return _settle(_map_thread(run_shard, shard_args, n_workers, shares))
    if backend == "spawn":
        return _settle(_map_spawn(run_shard, shard_args, n_workers, shares))
    return _settle(_map_process(run_shard, shard_args, n_workers, shares))
