"""Prototype and criticism selection (MMD-critic style).

The tutorial's §2 taxonomy notes that some explanation methods "return
data points to make the model interpretable". The canonical instance is
MMD-critic [Kim, Khanna & Koyejo 2016]: summarize a dataset (or a
model's view of it) with

* **prototypes** — points greedily chosen to minimize the maximum mean
  discrepancy (MMD) between the prototype set and the data under an RBF
  kernel: the most representative examples;
* **criticisms** — points maximizing the witness function
  |Ê_data k(x, ·) − Ê_protos k(x, ·)|: the places the prototypes
  misrepresent, i.e. the outliers and boundary cases a human should see
  alongside the "typical" examples.

A 1-NN-over-prototypes classifier quantifies how much of the model's
behaviour the summary carries (the paper's evaluation, reproduced in E36).
"""

from __future__ import annotations

import numpy as np

__all__ = ["rbf_kernel", "mmd_squared", "select_prototypes",
           "select_criticisms", "PrototypeClassifier"]


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float | None = None
               ) -> np.ndarray:
    """Gaussian kernel matrix k(a, b) = exp(−γ‖a − b‖²).

    γ defaults to 1 / (d · var(A)), the median-free variant of the usual
    heuristic.
    """
    A = np.atleast_2d(np.asarray(A, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    if gamma is None:
        gamma = 1.0 / (A.shape[1] * max(float(A.var()), 1e-12))
    d2 = (
        (A ** 2).sum(axis=1)[:, None]
        - 2.0 * A @ B.T
        + (B ** 2).sum(axis=1)[None, :]
    )
    return np.exp(-gamma * np.maximum(d2, 0.0))


def mmd_squared(X: np.ndarray, prototypes_idx: np.ndarray,
                K: np.ndarray | None = None, gamma: float | None = None
                ) -> float:
    """MMD²(data, prototype subset) under the RBF kernel."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    if K is None:
        K = rbf_kernel(X, X, gamma)
    idx = np.asarray(prototypes_idx, dtype=int)
    if idx.size == 0:
        raise ValueError("prototype set is empty")
    n = X.shape[0]
    m = idx.size
    term_data = K.mean()
    term_cross = K[:, idx].mean()
    term_protos = K[np.ix_(idx, idx)].mean()
    return float(term_data - 2.0 * term_cross + term_protos)


def select_prototypes(X: np.ndarray, n_prototypes: int,
                      gamma: float | None = None) -> np.ndarray:
    """Greedy MMD-minimizing prototype selection; returns indices.

    Each step adds the point whose inclusion most reduces MMD² — the
    standard greedy algorithm, with the incremental objective expanded in
    closed form so each step is O(n²) total.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    n = X.shape[0]
    if not 1 <= n_prototypes <= n:
        raise ValueError(f"n_prototypes must be in [1, {n}]")
    K = rbf_kernel(X, X, gamma)
    col_means = K.mean(axis=0)
    chosen: list[int] = []
    chosen_sum = np.zeros(n)  # Σ_{j ∈ chosen} K[:, j]
    diag = np.diag(K)
    for step in range(n_prototypes):
        new_size = step + 1
        # Minimizing MMD²(S ∪ {c}) over c is equivalent (up to terms
        # constant in c, after scaling by the new set size) to minimizing
        #   −2·mean_i K[i,c] + (2·Σ_{j∈S} K[c,j] + K[c,c]) / |S ∪ {c}|.
        gain = -2.0 * col_means + (2.0 * chosen_sum + diag) / new_size
        gain[chosen] = np.inf
        best = int(np.argmin(gain))
        chosen.append(best)
        chosen_sum += K[:, best]
    return np.asarray(chosen)


def select_criticisms(X: np.ndarray, prototypes_idx: np.ndarray,
                      n_criticisms: int, gamma: float | None = None
                      ) -> np.ndarray:
    """Witness-maximizing criticism selection; returns indices.

    witness(x) = mean_i k(x, x_i) − mean_{p ∈ protos} k(x, p); points
    with large |witness| are under- or over-represented by the
    prototypes. Greedy selection with a log-det-free diversity rule
    (exclude already-chosen points and the prototypes).
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    prototypes_idx = np.asarray(prototypes_idx, dtype=int)
    K = rbf_kernel(X, X, gamma)
    witness = np.abs(
        K.mean(axis=1) - K[:, prototypes_idx].mean(axis=1)
    )
    witness[prototypes_idx] = -np.inf
    order = np.argsort(-witness)
    return order[:n_criticisms]


class PrototypeClassifier:
    """1-NN over class-wise prototypes — the MMD-critic quality probe."""

    def __init__(self, n_prototypes_per_class: int = 5,
                 gamma: float | None = None) -> None:
        self.n_prototypes_per_class = n_prototypes_per_class
        self.gamma = gamma

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PrototypeClassifier":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y).ravel()
        self.prototypes_: list[np.ndarray] = []
        self.prototype_labels_: list = []
        self.prototype_indices_: dict = {}
        for label in np.unique(y):
            members = np.where(y == label)[0]
            k = min(self.n_prototypes_per_class, members.size)
            local = select_prototypes(X[members], k, self.gamma)
            chosen = members[local]
            self.prototype_indices_[label] = chosen
            for i in chosen:
                self.prototypes_.append(X[i])
                self.prototype_labels_.append(label)
        self._P = np.vstack(self.prototypes_)
        self._labels = np.asarray(self.prototype_labels_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        d2 = (
            (X ** 2).sum(axis=1)[:, None]
            - 2.0 * X @ self._P.T
            + (self._P ** 2).sum(axis=1)[None, :]
        )
        return self._labels[np.argmin(d2, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y).ravel()))
