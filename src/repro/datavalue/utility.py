"""The utility function U(S): performance of a model trained on subset S.

Every data-valuation method in §2.3.1 is a cooperative game over training
points with this utility. The class wraps the (model factory, train set,
validation set, metric) quadruple, handles the degenerate subsets Monte
Carlo methods constantly produce (empty sets, single-class sets), and
memoizes — permutation samplers revisit prefixes often enough that the
cache is a large constant-factor win.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..models.metrics import accuracy
from ..obs.metrics import counter

__all__ = ["UtilityFunction"]


class UtilityFunction:
    """U(S) = metric(model trained on S, validation data).

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh unfitted model.
    X_train, y_train:
        The points being valued.
    X_val, y_val:
        Held-out data the metric is computed on.
    metric:
        ``metric(y_true, y_pred) -> float``; accuracy by default.
    empty_score:
        U(∅) and the fallback for untrainable subsets; defaults to the
        performance of always predicting the validation majority class,
        per Ghorbani & Zou's setup.
    """

    def __init__(
        self,
        model_factory: Callable,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        metric: Callable = accuracy,
        empty_score: float | None = None,
        cache: bool = True,
    ) -> None:
        self.model_factory = model_factory
        self.X_train = np.atleast_2d(np.asarray(X_train, dtype=float))
        self.y_train = np.asarray(y_train).ravel()
        self.X_val = np.atleast_2d(np.asarray(X_val, dtype=float))
        self.y_val = np.asarray(y_val).ravel()
        self.metric = metric
        if empty_score is None:
            labels, counts = np.unique(self.y_val, return_counts=True)
            majority = labels[np.argmax(counts)]
            empty_score = float(
                metric(self.y_val, np.full(self.y_val.shape, majority))
            )
        self.empty_score = empty_score
        self._cache: dict[tuple[int, ...], float] | None = {} if cache else None
        self.n_evaluations = 0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def n_points(self) -> int:
        return self.X_train.shape[0]

    def full_score(self) -> float:
        """U of the complete training set."""
        return self(np.arange(self.n_points))

    def __call__(self, indices) -> float:
        indices = np.asarray(indices, dtype=int).ravel()
        key = tuple(sorted(indices.tolist()))
        if self._cache is not None and key in self._cache:
            self.cache_hits += 1
            counter("datavalue.cache.hits").inc()
            return self._cache[key]
        self.cache_misses += 1
        counter("datavalue.cache.misses").inc()
        # Evaluate the canonical (sorted) subset: U is a set function, so
        # the score must not depend on the order the sampler produced the
        # indices in — the cache key is already order-insensitive.
        score = self._evaluate(np.asarray(key, dtype=int))
        if self._cache is not None:
            self._cache[key] = score
        return score

    def _evaluate(self, indices: np.ndarray) -> float:
        if indices.size == 0:
            return self.empty_score
        y_subset = self.y_train[indices]
        if np.unique(y_subset).size < 2:
            # A single-class training set predicts that class everywhere.
            only = y_subset[0]
            return float(
                self.metric(self.y_val, np.full(self.y_val.shape, only))
            )
        self.n_evaluations += 1
        model = self.model_factory()
        model.fit(self.X_train[indices], y_subset)
        return float(self.metric(self.y_val, model.predict(self.X_val)))
