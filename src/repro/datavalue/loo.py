"""Leave-one-out data values — the baseline data-valuation method.

LOO(i) = U(D) − U(D ∖ {i}): the performance drop from deleting point i.
Cheap (n retrainings) but, as Ghorbani & Zou show and E7 reproduces, a
much weaker detector of mislabeled data than Shapley-based values because
a single deletion rarely moves the metric when near-duplicates remain.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import DataAttribution
from .utility import UtilityFunction

__all__ = ["leave_one_out_values"]


def leave_one_out_values(utility: UtilityFunction) -> DataAttribution:
    """LOO value of every training point."""
    n = utility.n_points
    full = utility.full_score()
    everything = np.arange(n)
    values = np.zeros(n)
    for i in range(n):
        values[i] = full - utility(np.delete(everything, i))
    return DataAttribution(
        values=values,
        method="leave_one_out",
        meta={"full_score": full, "n_retrainings": n},
    )
