"""G-Shapley: gradient-based Data Shapley approximation [Ghorbani & Zou 2019].

For models trained by gradient descent, retraining on every permutation
prefix is replaced by a single online-SGD epoch through the permutation:
each point's marginal contribution is the change in validation
performance caused by *its own gradient step*. One model pass per
permutation instead of n retrainings — the approximation that makes Data
Shapley feasible for larger models.

The SGD walk lives in :class:`repro.games.GradientGame` (a
path-dependent game handing whole permutations to
:func:`repro.games.estimators.permutation_estimator`); the pre-games
loop is retained as :func:`legacy_gradient_shapley` for the
seeded-parity tests.

Implemented for :class:`repro.models.logistic.LogisticRegression`-style
models exposing ``grad``/``params``/``set_params_vector``.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import DataAttribution
from ..games.adapters import GradientGame
from ..games.estimators import permutation_estimator
from ..models.metrics import accuracy

__all__ = ["gradient_shapley", "legacy_gradient_shapley"]


def gradient_shapley(
    model_factory,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    n_permutations: int = 100,
    learning_rate: float = 0.05,
    metric=accuracy,
    seed: int = 0,
) -> DataAttribution:
    """G-Shapley values of every training point.

    ``model_factory`` must build a differentiable model; each permutation
    starts from freshly initialized (zero) parameters and performs one
    SGD step per point in permutation order.
    """
    game = GradientGame(
        model_factory, X_train, y_train, X_val, y_val,
        learning_rate=learning_rate, metric=metric,
    )
    est = permutation_estimator(
        game,
        n_permutations=n_permutations,
        antithetic=False,
        seed=seed,
        aggregate="sum_counts",
    )
    return DataAttribution(
        values=est.values,
        method="gradient_shapley",
        meta={
            "n_permutations": n_permutations,
            "learning_rate": learning_rate,
            "convergence": est.diagnostics,
        },
    )


def legacy_gradient_shapley(
    model_factory,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    n_permutations: int = 100,
    learning_rate: float = 0.05,
    metric=accuracy,
    seed: int = 0,
) -> DataAttribution:
    """The pre-games SGD loop, kept for the seeded bitwise-parity tests."""
    X_train = np.atleast_2d(np.asarray(X_train, dtype=float))
    y_train = np.asarray(y_train).ravel()
    n = X_train.shape[0]
    rng = np.random.default_rng(seed)
    classes = np.unique(y_train)
    if classes.size != 2:
        raise ValueError("gradient_shapley supports binary classification")

    # A throwaway fit fixes the parameter dimensionality and class order.
    template = model_factory()
    template.fit(X_train[:10] if n >= 10 else X_train,
                 y_train[:10] if n >= 10 else y_train)
    n_params = template.params.shape[0]

    marginal_sums = np.zeros(n)
    for __ in range(n_permutations):
        perm = rng.permutation(n)  # games: allow
        # Start each pass from zero parameters without an initial fit.
        model = model_factory()
        model.classes_ = classes
        model.set_params_vector(np.zeros(n_params))
        previous = float(metric(y_val, model.predict(X_val)))
        for point in perm:
            g = model.grad(X_train[point : point + 1],
                           y_train[point : point + 1])[0]
            model.set_params_vector(model.params - learning_rate * g)
            current = float(metric(y_val, model.predict(X_val)))
            marginal_sums[point] += current - previous
            previous = current
    return DataAttribution(
        values=marginal_sums / n_permutations,
        method="gradient_shapley",
        meta={"n_permutations": n_permutations, "learning_rate": learning_rate},
    )
