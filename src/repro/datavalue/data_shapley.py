"""Data Shapley with truncated Monte-Carlo estimation [Ghorbani & Zou 2019].

The Data Shapley value of training point i is its Shapley value in the
game whose players are training points and whose value is the trained
model's validation performance. TMC-Shapley estimates it by sampling
permutations of the training set, scanning each permutation left to right
while retraining incrementally, and *truncating* the scan once the
running utility is within a tolerance of the full-data score — the
paper's key trick, since late marginal contributions are ~0.

The walk loop lives in the shared estimator suite
(:func:`repro.games.estimators.permutation_estimator` with
``truncation_tolerance`` set and ``aggregate="sum_counts"``), run over a
:class:`repro.games.DataValueGame`. The pre-games loop is retained as
:func:`legacy_tmc_shapley` for the seeded-parity tests.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import DataAttribution
from ..games.adapters import DataValueGame
from ..games.estimators import permutation_estimator
from .utility import UtilityFunction

__all__ = ["tmc_shapley", "legacy_tmc_shapley"]


def tmc_shapley(
    utility: UtilityFunction,
    n_permutations: int = 200,
    truncation_tolerance: float = 0.01,
    seed: int = 0,
    backend: str | None = None,
    n_procs: int | None = None,
) -> DataAttribution:
    """TMC-Shapley values of every training point.

    Parameters
    ----------
    n_permutations:
        Monte-Carlo permutations sampled.
    truncation_tolerance:
        Stop scanning a permutation once |U(prefix) − U(D)| falls below
        this tolerance; remaining points in the permutation receive zero
        marginal contribution for that pass.
    backend:
        Execution backend (:mod:`repro.exec`). Permutation walks shard
        across workers (bitwise-identical values); each worker retrains
        on its own permutations, and their utility memo tables plus
        ``datavalue.cache.*`` counters are merged back into ``utility``
        on join.
    """
    game = DataValueGame(utility)
    full_score = utility.full_score()
    est = permutation_estimator(
        game,
        n_permutations=n_permutations,
        antithetic=False,
        seed=seed,
        truncation_tolerance=truncation_tolerance,
        truncation_target=full_score,
        empty_value=utility.empty_score,
        aggregate="sum_counts",
        backend=backend,
        n_procs=n_procs,
    )
    return DataAttribution(
        values=est.values,
        method="tmc_shapley",
        meta={
            "full_score": full_score,
            "n_permutations": n_permutations,
            "mean_truncation_position": est.diagnostics.get(
                "mean_truncation_position", float(utility.n_points)
            ),
            "n_utility_evaluations": utility.n_evaluations,
            "convergence": est.diagnostics,
        },
    )


def legacy_tmc_shapley(
    utility: UtilityFunction,
    n_permutations: int = 200,
    truncation_tolerance: float = 0.01,
    seed: int = 0,
) -> DataAttribution:
    """The pre-games TMC loop, kept for the seeded bitwise-parity tests."""
    n = utility.n_points
    rng = np.random.default_rng(seed)
    full_score = utility.full_score()
    marginal_sums = np.zeros(n)
    marginal_counts = np.zeros(n)
    truncated_at: list[int] = []
    for __ in range(n_permutations):
        perm = rng.permutation(n)  # games: allow
        previous = utility.empty_score
        prefix: list[int] = []
        scanned = n
        for position, point in enumerate(perm):
            prefix.append(int(point))
            current = utility(np.asarray(prefix))
            marginal_sums[point] += current - previous
            marginal_counts[point] += 1
            previous = current
            if abs(full_score - current) < truncation_tolerance:
                scanned = position + 1
                break
        # Truncation assigns zero marginal to the unscanned tail.
        marginal_counts[perm[scanned:]] += 1
        truncated_at.append(scanned)
    values = marginal_sums / np.maximum(marginal_counts, 1)
    return DataAttribution(
        values=values,
        method="tmc_shapley",
        meta={
            "full_score": full_score,
            "n_permutations": n_permutations,
            "mean_truncation_position": float(np.mean(truncated_at)),
            "n_utility_evaluations": utility.n_evaluations,
        },
    )
