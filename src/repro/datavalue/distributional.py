"""Distributional and Beta Shapley data values [Ghorbani+ 2020; Kwon & Zou].

Data Shapley values a point *relative to one fixed dataset*; the
tutorial's §2.3.1 highlights two follow-ups addressing that:

* **Distributional Shapley** — the expected Data Shapley value of the
  point over datasets resampled from the underlying distribution:
  ν(z) = E_{D ~ P^{m}}[φ(z; D ∪ {z})]. Estimated here by drawing
  datasets from a large pool and averaging the point's marginal
  contributions at random prefix positions (the paper's one-sample
  estimator of the Shapley average over cardinalities).
* **Beta(α, β) Shapley** — reweights marginal contributions by subset
  size: uniform Shapley (α = β = 1) down-weights nothing, while e.g.
  Beta(16, 1) emphasizes small-subset contributions that carry the
  signal about data quality.

Both estimators now run over a :class:`repro.games.DataValueGame`
through the shared suite (:func:`repro.games.estimators.stratified_estimator`
and :func:`repro.games.estimators.permutation_estimator` with
``position_weights``); the pre-games loops are retained as
``legacy_*`` for the seeded-parity tests.
"""

from __future__ import annotations

from math import lgamma

import numpy as np

from ..core.explanation import DataAttribution
from ..games.adapters import DataValueGame
from ..games.estimators import permutation_estimator, stratified_estimator
from .utility import UtilityFunction

__all__ = [
    "distributional_shapley",
    "legacy_distributional_shapley",
    "beta_shapley",
    "legacy_beta_shapley",
    "beta_weights",
]


def distributional_shapley(
    point_index: int,
    utility: UtilityFunction,
    n_draws: int = 100,
    max_cardinality: int | None = None,
    seed: int = 0,
) -> tuple[float, float]:
    """Distributional Shapley value of one training point.

    Each draw picks a random cardinality m and a random m-subset of the
    *other* points (standing in for a fresh dataset from P), and records
    the marginal contribution of adding the point. Returns
    ``(value, standard_error)``.
    """
    n = utility.n_points
    if not 0 <= point_index < n:
        raise IndexError(point_index)
    return stratified_estimator(
        DataValueGame(utility),
        point_index,
        n_draws=n_draws,
        max_cardinality=max_cardinality,
        seed=seed,
    )


def legacy_distributional_shapley(
    point_index: int,
    utility: UtilityFunction,
    n_draws: int = 100,
    max_cardinality: int | None = None,
    seed: int = 0,
) -> tuple[float, float]:
    """The pre-games draw loop, kept for the seeded bitwise-parity tests."""
    n = utility.n_points
    if not 0 <= point_index < n:
        raise IndexError(point_index)
    rng = np.random.default_rng(seed)
    others = np.array([i for i in range(n) if i != point_index])
    max_cardinality = max_cardinality or others.size
    contributions = np.zeros(n_draws)
    for t in range(n_draws):
        m = int(rng.integers(0, max_cardinality + 1))
        subset = rng.choice(others, size=m, replace=False)
        with_point = np.append(subset, point_index)
        contributions[t] = utility(with_point) - utility(subset)
    value = float(contributions.mean())
    stderr = float(contributions.std(ddof=1) / np.sqrt(n_draws)) if n_draws > 1 else 0.0
    return value, stderr


def beta_weights(n: int, alpha: float, beta: float) -> np.ndarray:
    """Normalized Beta(α, β) weights over prefix sizes j = 1..n.

    ``w[j-1]`` is the weight of a marginal contribution made at position
    j of a permutation (i.e. to a coalition of size j−1), following
    Kwon & Zou's ω(j) ∝ B(j+β−1, n−j+α) / B(j, n−j+1).
    """
    if alpha <= 0 or beta <= 0:
        raise ValueError("alpha and beta must be positive")

    def log_beta_fn(a: float, b: float) -> float:
        return lgamma(a) + lgamma(b) - lgamma(a + b)

    j = np.arange(1, n + 1, dtype=float)
    log_w = np.array([
        log_beta_fn(jj + beta - 1.0, n - jj + alpha) - log_beta_fn(jj, n - jj + 1.0)
        for jj in j
    ])
    w = np.exp(log_w - log_w.max())
    return w * n / w.sum()


def beta_shapley(
    utility: UtilityFunction,
    alpha: float = 16.0,
    beta: float = 1.0,
    n_permutations: int = 200,
    seed: int = 0,
) -> DataAttribution:
    """Beta(α, β)-weighted semivalues of every training point.

    α = β = 1 recovers Data Shapley (up to Monte-Carlo noise); α > 1
    emphasizes small coalitions. Estimated by permutation sampling with
    position-dependent weights.
    """
    n = utility.n_points
    weights = beta_weights(n, alpha, beta)
    est = permutation_estimator(
        DataValueGame(utility),
        n_permutations=n_permutations,
        antithetic=False,
        seed=seed,
        position_weights=weights,
        empty_value=utility.empty_score,
        aggregate="sum_counts",
        min_count=1e-12,
    )
    return DataAttribution(
        values=est.values,
        method=f"beta_shapley({alpha:g},{beta:g})",
        meta={
            "alpha": alpha,
            "beta": beta,
            "n_permutations": n_permutations,
            "convergence": est.diagnostics,
        },
    )


def legacy_beta_shapley(
    utility: UtilityFunction,
    alpha: float = 16.0,
    beta: float = 1.0,
    n_permutations: int = 200,
    seed: int = 0,
) -> DataAttribution:
    """The pre-games weighted loop, kept for the seeded bitwise-parity tests."""
    n = utility.n_points
    rng = np.random.default_rng(seed)
    weights = beta_weights(n, alpha, beta)
    weighted_sums = np.zeros(n)
    weight_totals = np.zeros(n)
    for __ in range(n_permutations):
        perm = rng.permutation(n)  # games: allow
        previous = utility.empty_score
        prefix: list[int] = []
        for position, point in enumerate(perm):
            prefix.append(int(point))
            current = utility(np.asarray(prefix))
            w = weights[position]
            weighted_sums[point] += w * (current - previous)
            weight_totals[point] += w
            previous = current
    values = weighted_sums / np.maximum(weight_totals, 1e-12)
    return DataAttribution(
        values=values,
        method=f"beta_shapley({alpha:g},{beta:g})",
        meta={"alpha": alpha, "beta": beta, "n_permutations": n_permutations},
    )
