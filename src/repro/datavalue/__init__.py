"""Training-data valuation (§2.3.1)."""

from .data_shapley import legacy_tmc_shapley, tmc_shapley
from .distributional import (
    beta_shapley,
    beta_weights,
    distributional_shapley,
    legacy_beta_shapley,
    legacy_distributional_shapley,
)
from .gradient_shapley import gradient_shapley, legacy_gradient_shapley
from .knn_shapley import knn_shapley
from .loo import leave_one_out_values
from .utility import UtilityFunction

__all__ = [
    "UtilityFunction",
    "leave_one_out_values",
    "tmc_shapley",
    "legacy_tmc_shapley",
    "gradient_shapley",
    "legacy_gradient_shapley",
    "knn_shapley",
    "distributional_shapley",
    "legacy_distributional_shapley",
    "beta_shapley",
    "legacy_beta_shapley",
    "beta_weights",
]
