"""Exact, efficient KNN-Shapley data valuation [Jia et al. 2019].

For a k-nearest-neighbor classifier the Data Shapley value has a closed
form: sorting training points by distance to a validation point, the
values satisfy the backward recurrence

    s_{α_N} = 1[y_{α_N} = y_val] / N,
    s_{α_j} = s_{α_{j+1}}
              + (1[y_{α_j} = y_val] − 1[y_{α_{j+1}} = y_val]) / k
                · min(k, j) / j            (1-based j),

so every point's exact Shapley value costs one sort per validation point
— O(n log n) against the exponential/Monte-Carlo cost of the generic
game. E17 reproduces the orders-of-magnitude speedup over TMC-Shapley at
matching detection quality.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import DataAttribution

__all__ = ["knn_shapley"]


def knn_shapley(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    k: int = 5,
) -> DataAttribution:
    """Exact Data Shapley values for the k-NN utility.

    The utility is the k-NN validation accuracy; values are averaged over
    validation points (the per-point games add).
    """
    X_train = np.atleast_2d(np.asarray(X_train, dtype=float))
    y_train = np.asarray(y_train).ravel()
    X_val = np.atleast_2d(np.asarray(X_val, dtype=float))
    y_val = np.asarray(y_val).ravel()
    n = X_train.shape[0]
    if k < 1 or k > n:
        raise ValueError(f"k={k} out of range for {n} training points")
    values = np.zeros(n)
    # Pairwise squared distances, one validation point at a time.
    train_sq = (X_train ** 2).sum(axis=1)
    for x, y in zip(X_val, y_val):
        d2 = train_sq - 2.0 * X_train @ x + float(x @ x)
        order = np.argsort(d2, kind="stable")
        match = (y_train[order] == y).astype(float)
        s = np.zeros(n)
        s[n - 1] = match[n - 1] / n
        for j in range(n - 2, -1, -1):  # 0-based; paper's j is this + 1
            j1 = j + 1
            s[j] = s[j + 1] + (match[j] - match[j + 1]) / k * min(k, j1) / j1
        values[order] += s
    values /= X_val.shape[0]
    return DataAttribution(
        values=values,
        method="knn_shapley",
        meta={"k": k, "n_val": X_val.shape[0]},
    )
