"""Sufficient reasons and prime implicants for tree classifiers.

Shih, Choi & Darwiche (2018) and Darwiche & Hirth (2020) explain a
classifier's decision with a *sufficient reason*: a subset-minimal set of
features whose current values force the prediction regardless of all
other features. On a decision tree the "is this subset sufficient?" check
is linear time (walk the tree, branching both ways on free features), so
minimal reasons are found exactly; the same check applied to a black box
is exponential — the intractability the tutorial flags for model-agnostic
settings.

Also provided: necessity/sufficiency degree scores connecting these
logical notions to the probabilistic ones of §2.1.3 (a feature set is
sufficient iff its LEWIS-style sufficiency score is 1).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..core.explanation import Predicate, RuleExplanation
from ..models.tree import DecisionTreeClassifier

__all__ = [
    "possible_classes",
    "is_sufficient",
    "minimal_sufficient_reason",
    "all_minimal_sufficient_reasons",
    "necessary_features",
    "reason_to_rule",
]


def possible_classes(
    model: DecisionTreeClassifier, x: np.ndarray, fixed: set[int]
) -> set[int]:
    """Classes the tree can output when only ``fixed`` features keep x's
    values and all others range freely."""
    x = np.asarray(x, dtype=float).ravel()
    tree = model.tree_
    out: set[int] = set()

    def walk(node: int) -> None:
        if tree.is_leaf(node):
            out.add(int(np.argmax(tree.value[node])))
            return
        feature = tree.feature[node]
        if feature in fixed:
            if x[feature] <= tree.threshold[node]:
                walk(tree.children_left[node])
            else:
                walk(tree.children_right[node])
        else:
            walk(tree.children_left[node])
            walk(tree.children_right[node])

    walk(0)
    return out


def is_sufficient(
    model: DecisionTreeClassifier, x: np.ndarray, subset: set[int]
) -> bool:
    """True iff fixing ``subset`` to x's values forces the prediction."""
    return len(possible_classes(model, x, set(subset))) == 1


def minimal_sufficient_reason(
    model: DecisionTreeClassifier, x: np.ndarray
) -> set[int]:
    """One subset-minimal sufficient reason, by greedy deletion.

    Starts from the features actually tested on x's decision path (always
    sufficient) and drops features whose removal keeps sufficiency.
    Greedy deletion yields a subset-minimal (not necessarily
    cardinality-minimal) reason, matching the papers' definition.
    """
    x = np.asarray(x, dtype=float).ravel()
    path_features = {f for __, f, __, __ in model.tree_.decision_path(x)}
    reason = set(path_features)
    for feature in sorted(path_features):
        trial = reason - {feature}
        if is_sufficient(model, x, trial):
            reason = trial
    return reason


def all_minimal_sufficient_reasons(
    model: DecisionTreeClassifier, x: np.ndarray, max_features: int = 20
) -> list[set[int]]:
    """Every subset-minimal sufficient reason (exhaustive; small trees).

    Searches subsets of the decision-path features in increasing size and
    keeps those sufficient with no sufficient proper subset.
    """
    x = np.asarray(x, dtype=float).ravel()
    path_features = sorted(
        {f for __, f, __, __ in model.tree_.decision_path(x)}
    )
    if len(path_features) > max_features:
        raise ValueError(
            f"decision path tests {len(path_features)} features; "
            "exhaustive enumeration is capped"
        )
    minimal: list[set[int]] = []
    for size in range(0, len(path_features) + 1):
        for subset in combinations(path_features, size):
            candidate = set(subset)
            if any(m <= candidate for m in minimal):
                continue
            if is_sufficient(model, x, candidate):
                minimal.append(candidate)
    return minimal


def necessary_features(
    model: DecisionTreeClassifier, x: np.ndarray
) -> set[int]:
    """Features in *every* minimal sufficient reason.

    Equivalent to: dropping the feature from the full feature set breaks
    sufficiency — the logical counterpart of a necessity score of 1.
    """
    x = np.asarray(x, dtype=float).ravel()
    path_features = {f for __, f, __, __ in model.tree_.decision_path(x)}
    out = set()
    for feature in path_features:
        if not is_sufficient(model, x, path_features - {feature}):
            out.add(feature)
    return out


def reason_to_rule(
    model: DecisionTreeClassifier,
    x: np.ndarray,
    reason: set[int],
    feature_names: list[str] | None = None,
    reference: np.ndarray | None = None,
) -> RuleExplanation:
    """Render a sufficient reason as a human-readable interval rule.

    The logical guarantee of a sufficient reason is *pointwise*: with the
    reason features at exactly x's values, every completion of the free
    features yields the same prediction. Generalizing each reason feature
    from its exact value to its decision-path interval (done here, so the
    rule has nonzero coverage) is a heuristic — an off-path node may
    re-test a reason feature at a different threshold — so precision is
    measured empirically on ``reference`` rather than asserted to be 1.
    It is typically very close to 1 and exactly 1 at x itself.
    """
    x = np.asarray(x, dtype=float).ravel()
    predicates = []
    for node, feature, threshold, went_left in model.tree_.decision_path(x):
        if feature not in reason:
            continue
        name = feature_names[feature] if feature_names else f"x{feature}"
        op = "<=" if went_left else ">"
        predicates.append(Predicate(feature, op, float(threshold), name))
    prediction = float(model.predict(x[None, :])[0])
    rule = RuleExplanation(
        predicates=predicates,
        outcome=prediction,
        precision=1.0,
        coverage=0.0,
        method="sufficient_reason",
    )
    if reference is not None:
        reference = np.atleast_2d(np.asarray(reference, dtype=float))
        covered = rule.holds(reference)
        rule.coverage = float(np.mean(covered))
        if covered.any():
            rule.precision = float(
                np.mean(model.predict(reference[covered]) == prediction)
            )
    return rule
