"""Logic-based explanation methods (§2.2.2) and tractable SHAP (§3)."""

from .circuit import (
    AndNode,
    Literal,
    OrNode,
    TrueNode,
    binarize_matrix,
    compile_tree,
    conditional_expectation,
    model_count,
)
from .circuit_shap import circuit_shap
from .reasons import (
    all_minimal_sufficient_reasons,
    is_sufficient,
    minimal_sufficient_reason,
    necessary_features,
    possible_classes,
    reason_to_rule,
)

__all__ = [
    "Literal",
    "AndNode",
    "OrNode",
    "TrueNode",
    "compile_tree",
    "conditional_expectation",
    "model_count",
    "binarize_matrix",
    "circuit_shap",
    "possible_classes",
    "is_sufficient",
    "minimal_sufficient_reason",
    "all_minimal_sufficient_reasons",
    "necessary_features",
    "reason_to_rule",
]
