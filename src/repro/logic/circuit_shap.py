"""Exact SHAP scores on d-DNNF circuits in polynomial time.

Implements the algorithm behind the tractability results of Van den
Broeck et al. (AAAI 2021) and Arenas et al. (AAAI 2021): on a smooth,
deterministic and decomposable circuit, the SHAP score of every feature
under a fully factorized distribution is computable in polynomial time —
in contrast to the #P-hardness for, e.g., logistic regression that the
tutorial highlights (§3, "Efficiency of Feature-based Explanations").

The dynamic program computes, per circuit node ``n`` and subset size
``k``,

    γ(n, k) = Σ_{S ⊆ vars(n), |S| = k} E[n | x_S],

bottom-up: literals read a two-entry table, decomposable ANDs convolve
their children, deterministic smooth ORs add. Running it twice per
feature — once with the feature forced *into* every conditioning set and
once forced *out* — yields

    D_k^i = Σ_{|S|=k, i∉S} (v(S ∪ {i}) − v(S)),
    φ_i   = Σ_k  D_k^i / (n · C(n−1, k)),

the exact Shapley value of the conditional-expectation game.
"""

from __future__ import annotations

from math import comb

import numpy as np

from .circuit import AndNode, Literal, OrNode, TrueNode

__all__ = ["circuit_shap"]


def _gamma(node, x: np.ndarray, p: np.ndarray, forced: int, mode: str
           ) -> np.ndarray:
    """The DP table γ(node, ·) over subsets of vars(node) ∖ {forced}.

    ``mode`` fixes how the ``forced`` variable is treated wherever it
    appears: ``"in"`` — always conditioned on x; ``"out"`` — never
    conditioned (marginalized through p). Entry ``k`` of the returned
    array sums E[node | x_S] over the C(m, k) subsets S of the node's
    *other* variables.
    """
    if isinstance(node, (Literal, TrueNode)):
        var = node.var
        if isinstance(node, TrueNode):
            conditioned, marginal = 1.0, 1.0
        else:
            conditioned = 1.0 if bool(x[var]) == node.positive else 0.0
            marginal = p[var] if node.positive else 1.0 - p[var]
        if var == forced:
            value = conditioned if mode == "in" else marginal
            return np.array([value])
        # k = 0: var unconditioned; k = 1: var in S.
        return np.array([marginal, conditioned])
    if isinstance(node, AndNode):
        table = np.array([1.0])
        for child in node.children:
            child_table = _gamma(child, x, p, forced, mode)
            table = np.convolve(table, child_table)
        return table
    # OrNode: smooth + deterministic → tables add entrywise.
    tables = [_gamma(child, x, p, forced, mode) for child in node.children]
    return np.sum(tables, axis=0)


def circuit_shap(
    circuit,
    x: np.ndarray,
    p: np.ndarray | None = None,
) -> np.ndarray:
    """Exact SHAP scores of every feature for a d-DNNF classifier.

    Parameters
    ----------
    circuit:
        Smooth/deterministic/decomposable circuit over n binary features
        (e.g. from :func:`repro.logic.circuit.compile_tree`).
    x:
        The binary instance being explained.
    p:
        Per-feature marginals P(x_v = 1); defaults to uniform 1/2.

    Returns
    -------
    Array of n Shapley values of the game v(S) = E[f | x_S]; they sum to
    f(x) − E[f] by efficiency.
    """
    x = np.asarray(x).astype(bool).ravel()
    n = x.shape[0]
    if p is None:
        p = np.full(n, 0.5)
    p = np.asarray(p, dtype=float).ravel()
    if circuit.variables != frozenset(range(n)):
        raise ValueError(
            "circuit must be smooth over all n features "
            f"(mentions {len(circuit.variables)} of {n})"
        )
    phi = np.zeros(n)
    for i in range(n):
        with_i = _gamma(circuit, x, p, forced=i, mode="in")
        without_i = _gamma(circuit, x, p, forced=i, mode="out")
        # Both tables are indexed by k = |S| over the other n−1 features.
        for k in range(n):
            weight = 1.0 / (n * comb(n - 1, k))
            phi[i] += weight * (with_i[k] - without_i[k])
    return phi
