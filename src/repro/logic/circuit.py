"""Boolean circuits in deterministic, decomposable, smooth form (d-DNNF).

The logic-based XAI line (§2.2.2) and the tractable-SHAP results [Arenas+
2021; Van den Broeck+ 2021] both work on Boolean circuits with structural
properties:

* **decomposable** — AND gates have children over disjoint variables,
* **deterministic** — OR gates have mutually exclusive children,
* **smooth** — OR children mention the same variable set.

On such circuits, weighted model counting and conditional expectations
under fully factorized feature distributions are linear-time, and exact
SHAP scores are polynomial (:mod:`repro.logic.circuit_shap`).

Decision trees over binary features compile to d-DNNF directly: the
circuit is the OR over accepting root-to-leaf paths of the AND of the
path's literals — deterministic because paths are mutually exclusive,
decomposable because a path tests each variable at most once, and smoothed
here by multiplying in ⊤-gates for unmentioned variables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.tree import TreeStructure

__all__ = [
    "Literal",
    "AndNode",
    "OrNode",
    "TrueNode",
    "compile_tree",
    "conditional_expectation",
    "model_count",
    "binarize_matrix",
]


@dataclass(frozen=True)
class Literal:
    """``x_var`` (positive) or ``¬x_var``."""

    var: int
    positive: bool

    @property
    def variables(self) -> frozenset[int]:
        return frozenset([self.var])

    def evaluate(self, assignment: np.ndarray) -> bool:
        return bool(assignment[self.var]) == self.positive


@dataclass(frozen=True)
class TrueNode:
    """⊤ over one variable: (x_var ∨ ¬x_var). Used for smoothing."""

    var: int

    @property
    def variables(self) -> frozenset[int]:
        return frozenset([self.var])

    def evaluate(self, assignment: np.ndarray) -> bool:
        return True


class AndNode:
    """Decomposable conjunction."""

    def __init__(self, children: list) -> None:
        seen: set[int] = set()
        for child in children:
            overlap = seen & child.variables
            if overlap:
                raise ValueError(f"AND not decomposable: vars {overlap} repeat")
            seen |= child.variables
        self.children = list(children)
        self.variables = frozenset(seen)

    def evaluate(self, assignment: np.ndarray) -> bool:
        return all(c.evaluate(assignment) for c in self.children)


class OrNode:
    """Deterministic, smooth disjunction.

    Determinism (mutual exclusivity of children) is the *caller's*
    obligation — it is not checkable locally in polynomial time; the tree
    compiler guarantees it by construction. Smoothness is enforced here.
    """

    def __init__(self, children: list) -> None:
        if not children:
            raise ValueError("OR needs at least one child")
        var_sets = {c.variables for c in children}
        if len(var_sets) != 1:
            raise ValueError("OR not smooth: children mention different vars")
        self.children = list(children)
        self.variables = children[0].variables

    def evaluate(self, assignment: np.ndarray) -> bool:
        return any(c.evaluate(assignment) for c in self.children)


def _smooth(node, all_vars: frozenset[int]):
    """Extend ``node`` to mention ``all_vars`` by AND-ing ⊤-gates."""
    missing = all_vars - node.variables
    if not missing:
        return node
    return AndNode([node] + [TrueNode(v) for v in sorted(missing)])


def compile_tree(
    tree: TreeStructure, n_features: int, positive_class: int = 1
) -> object:
    """Compile a binary-feature decision tree into a smooth d-DNNF circuit.

    The tree must split binary features at thresholds inside (0, 1) (the
    convention produced by :func:`binarize_matrix` + CART: going left
    means the feature is 0). The circuit is true exactly when the tree
    predicts ``positive_class``.
    """
    all_vars = frozenset(range(n_features))
    paths: list[list[Literal]] = []

    def walk(node: int, literals: list[Literal]) -> None:
        if tree.is_leaf(node):
            value = tree.value[node]
            predicted = int(np.argmax(value)) if value.shape[0] > 1 else int(value[0] >= 0.5)
            if predicted == positive_class:
                paths.append(list(literals))
            return
        feature = tree.feature[node]
        threshold = tree.threshold[node]
        if not 0.0 < threshold < 1.0:
            raise ValueError(
                f"node {node} splits feature {feature} at {threshold}; "
                "compile_tree requires binarized features"
            )
        walk(tree.children_left[node], literals + [Literal(feature, False)])
        walk(tree.children_right[node], literals + [Literal(feature, True)])

    walk(0, [])
    if not paths:
        raise ValueError("tree never predicts the positive class")
    disjuncts = []
    for literals in paths:
        # A path tests each feature at most once after CART pruning, but a
        # redundant re-test is consistent — deduplicate defensively.
        unique = {(l.var, l.positive) for l in literals}
        vars_on_path = {v for v, __ in unique}
        if len(vars_on_path) != len(unique):
            raise ValueError("contradictory path literals")
        conj = [Literal(v, pos) for v, pos in sorted(unique)]
        if len(conj) == 1:
            disjuncts.append(_smooth(conj[0], all_vars))
        else:
            disjuncts.append(_smooth(AndNode(conj), all_vars))
    if len(disjuncts) == 1:
        return disjuncts[0]
    return OrNode(disjuncts)


def conditional_expectation(
    node,
    x: np.ndarray,
    mask: np.ndarray,
    p: np.ndarray,
) -> float:
    """E[circuit | x_S] under the product distribution P(x_v = 1) = p[v].

    Features with ``mask[v]`` true are fixed to ``x[v]``; the rest are
    independent Bernoulli(p[v]). Linear time on d-DNNF: literals read the
    table, ANDs multiply (decomposability), ORs add (determinism).
    """
    x = np.asarray(x).astype(bool).ravel()
    mask = np.asarray(mask, dtype=bool).ravel()
    p = np.asarray(p, dtype=float).ravel()

    def recurse(n) -> float:
        if isinstance(n, TrueNode):
            return 1.0
        if isinstance(n, Literal):
            if mask[n.var]:
                return 1.0 if x[n.var] == n.positive else 0.0
            return p[n.var] if n.positive else 1.0 - p[n.var]
        if isinstance(n, AndNode):
            out = 1.0
            for child in n.children:
                out *= recurse(child)
                if out == 0.0:
                    break
            return out
        return sum(recurse(child) for child in n.children)

    return recurse(node)


def model_count(node, n_features: int) -> int:
    """Number of satisfying assignments over ``n_features`` variables."""
    p = np.full(n_features, 0.5)
    zeros = np.zeros(n_features, dtype=bool)
    expectation = conditional_expectation(node, zeros, zeros, p)
    return int(round(expectation * 2 ** n_features))


def binarize_matrix(X: np.ndarray, thresholds: np.ndarray | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Median-binarize a feature matrix; returns ``(binary_X, thresholds)``."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    if thresholds is None:
        thresholds = np.median(X, axis=0)
    binary = (X > thresholds).astype(float)
    return binary, thresholds
