"""Anchors: high-precision model-agnostic rule explanations [Ribeiro+ 2018].

An anchor for instance x is a rule A (conjunction of predicates satisfied
by x) such that perturbed samples satisfying A receive the same model
prediction as x with high probability:  P(f(z) = f(x) | z ⊨ A) ≥ τ.
The search greedily grows candidate rules one predicate at a time,
choosing the best extension with the KL-LUCB bandit (each candidate rule
is an arm; pulls are perturbation draws conditioned on the rule), and
stops when a candidate provably exceeds the precision target — beam
search with beam width 1 per the paper's greedy variant, which it reports
is usually enough.

Numeric features are discretized into quantile bins so predicates take
the form ``lo < x_j ≤ hi``; categorical predicates are equalities.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import TabularDataset
from ..core.explanation import Predicate, RuleExplanation
from ..obs import instrument_explainer
from .bandit import KLLucb, kl_lower_bound

__all__ = ["AnchorExplainer"]


@instrument_explainer
class AnchorExplainer:
    """Greedy bandit-driven anchor search.

    Parameters
    ----------
    data:
        Training data for perturbation statistics and predicate bins.
    precision_target:
        τ — required precision of the returned rule.
    n_bins:
        Quantile bins per numeric feature.
    delta, epsilon:
        Bandit confidence and tolerance.
    """

    method_name = "anchors"

    def __init__(
        self,
        model,
        data: TabularDataset,
        precision_target: float = 0.95,
        n_bins: int = 4,
        delta: float = 0.05,
        epsilon: float = 0.1,
        batch_size: int = 20,
        max_predicates: int = 4,
        coverage_samples: int = 1000,
        beam_width: int = 1,
        output: str = "auto",
        seed: int = 0,
    ) -> None:
        from ..core.base import as_predict_fn

        self.predict_fn = as_predict_fn(model, output)
        self.data = data
        self.precision_target = precision_target
        self.n_bins = n_bins
        self.delta = delta
        self.epsilon = epsilon
        self.batch_size = batch_size
        self.max_predicates = max_predicates
        self.coverage_samples = coverage_samples
        self.beam_width = max(1, beam_width)
        self.seed = seed
        self._bins = self._quantile_bins()

    def _quantile_bins(self) -> list[np.ndarray]:
        bins: list[np.ndarray] = []
        for j, spec in enumerate(self.data.features):
            if spec.is_categorical:
                bins.append(np.array([]))
            else:
                qs = np.linspace(0, 1, self.n_bins + 1)[1:-1]
                bins.append(np.unique(np.quantile(self.data.X[:, j], qs)))
        return bins

    def _candidate_predicates(self, x: np.ndarray) -> list[list[Predicate]]:
        """For each feature, the predicate(s) x satisfies (an interval
        is encoded as up to two inequality predicates)."""
        candidates: list[list[Predicate]] = []
        for j, spec in enumerate(self.data.features):
            if spec.is_categorical:
                candidates.append(
                    [Predicate(j, "==", float(x[j]), spec.name)]
                )
                continue
            edges = self._bins[j]
            bin_idx = int(np.searchsorted(edges, x[j], side="right"))
            preds: list[Predicate] = []
            if bin_idx > 0:
                preds.append(Predicate(j, ">", float(edges[bin_idx - 1]), spec.name))
            if bin_idx < len(edges):
                preds.append(Predicate(j, "<=", float(edges[bin_idx]), spec.name))
            candidates.append(preds)
        return candidates

    def _sample_conditioned(
        self,
        x: np.ndarray,
        fixed_features: set[int],
        n: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Perturbations: anchored features copy x, others are resampled
        from random training rows (the reference implementation's
        empirical perturbation distribution)."""
        rows = self.data.X[rng.integers(0, self.data.n_samples, n)].copy()
        for j in fixed_features:
            rows[:, j] = x[j]
        return rows

    def _precision_sampler(self, x: np.ndarray, features: set[int],
                           target_label: int, rng: np.random.Generator):
        def sample(batch: int) -> float:
            rows = self._sample_conditioned(x, features, batch, rng)
            agree = (self.predict_fn(rows) >= 0.5).astype(int) == target_label
            return float(np.mean(agree))

        return sample

    def _rule_from_features(self, features: frozenset[int],
                            per_feature, target_label: int,
                            precision: float) -> RuleExplanation:
        predicates: list[Predicate] = []
        for j in sorted(features):
            predicates.extend(per_feature[j])
        return RuleExplanation(
            predicates=predicates,
            outcome=float(target_label),
            precision=precision,
            coverage=0.0,
            method=self.method_name,
        )

    def explain(self, x: np.ndarray, seed: int | None = None) -> RuleExplanation:
        """Beam-search anchor construction (greedy when ``beam_width=1``).

        Each round extends every beam member by one feature; a single
        KL-LUCB instance over all extensions allocates samples and keeps
        the ``beam_width`` most precise. The search stops when a
        candidate's precision lower bound clears the target; ties are
        broken toward higher coverage, per the paper.
        """
        x = np.asarray(x, dtype=float).ravel()
        rng = np.random.default_rng(self.seed if seed is None else seed)
        target_label = int(self.predict_fn(x[None, :])[0] >= 0.5)
        per_feature = self._candidate_predicates(x)
        usable = [
            j for j in range(self.data.n_features) if per_feature[j]
        ]
        coverage_rows = self.data.X[
            rng.integers(0, self.data.n_samples, self.coverage_samples)
        ]
        beam: list[frozenset[int]] = [frozenset()]
        best_rule: RuleExplanation | None = None
        best_stats: tuple[float, float] = (0.0, 0.0)  # (precision, n)
        n_evals = 0
        beta = np.log(1.0 / self.delta)
        for __ in range(self.max_predicates):
            extensions: list[frozenset[int]] = []
            seen: set[frozenset[int]] = set()
            for member in beam:
                for j in usable:
                    if j in member:
                        continue
                    candidate = frozenset(member | {j})
                    if candidate not in seen:
                        seen.add(candidate)
                        extensions.append(candidate)
            if not extensions:
                break
            arms = [
                self._precision_sampler(x, set(c), target_label, rng)
                for c in extensions
            ]
            bandit = KLLucb(arms, delta=self.delta,
                            batch_size=self.batch_size)
            top, means, counts = bandit.top_arms(
                k=min(self.beam_width, len(extensions)),
                epsilon=self.epsilon,
                max_pulls=200 * len(extensions),
            )
            n_evals += int(counts.sum())
            beam = [extensions[int(i)] for i in top]
            verified = []
            for i in top:
                precision = float(means[int(i)])
                n_i = int(counts[int(i)])
                if kl_lower_bound(precision, n_i, beta) >= self.precision_target:
                    verified.append((extensions[int(i)], precision, n_i))
            if verified:
                # Highest coverage among verified candidates wins.
                scored = []
                for features, precision, n_i in verified:
                    rule = self._rule_from_features(
                        features, per_feature, target_label, precision
                    )
                    rule.coverage = float(np.mean(rule.holds(coverage_rows)))
                    scored.append((rule.coverage, rule, precision, n_i))
                scored.sort(key=lambda t: -t[0])
                __, best_rule, precision, n_i = scored[0]
                best_stats = (precision, n_i)
                break
            # Remember the best unverified candidate as a fallback.
            i0 = int(top[0])
            if float(means[i0]) >= best_stats[0]:
                best_stats = (float(means[i0]), int(counts[i0]))
                best_rule = self._rule_from_features(
                    extensions[i0], per_feature, target_label,
                    float(means[i0]),
                )
                best_rule.coverage = float(
                    np.mean(best_rule.holds(coverage_rows))
                )
        if best_rule is None:
            best_rule = RuleExplanation(
                predicates=[], outcome=float(target_label),
                precision=0.0, coverage=1.0, method=self.method_name,
            )
        best_rule.meta["n_model_evaluations"] = n_evals
        best_rule.meta["beam_width"] = self.beam_width
        return best_rule

    def empirical_precision(self, rule: RuleExplanation, x: np.ndarray,
                            n: int = 2000, seed: int = 1) -> float:
        """Held-out precision estimate of a finished rule."""
        rng = np.random.default_rng(seed)
        x = np.asarray(x, dtype=float).ravel()
        features = {p.feature for p in rule.predicates}
        rows = self._sample_conditioned(x, features, n, rng)
        labels = (self.predict_fn(rows) >= 0.5).astype(int)
        return float(np.mean(labels == int(rule.outcome)))
