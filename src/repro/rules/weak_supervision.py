"""Rule-based weak supervision: labeling functions and a label model
(§2.2.1, [7 Snorkel, 19 adaptive rule discovery, 71 Snuba]).

The tutorial's rule-mining section points at the data-management line
that turned rules from *descriptions* into *labelers*: users (or an
automatic generator) write noisy labeling functions (LFs), a label model
estimates each LF's accuracy without ground truth, and probabilistic
training labels come out. Three pieces reproduced here:

* :class:`LabelingFunction` — a rule that votes 0/1 or abstains (−1),
  wrapping either a callable or a :class:`RuleExplanation`;
* :class:`LabelModel` — per-LF accuracy estimation by EM under the
  one-coin conditional-independence model (the classic Dawid-Skene
  special case Snorkel's matrix-completion estimator generalizes), plus
  weighted probabilistic inference;
* :func:`generate_candidate_lfs` — Snuba-style automatic synthesis of
  threshold/equality LFs from a small labeled seed set, filtered by
  seed precision and mutual redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.dataset import TabularDataset
from ..core.explanation import Predicate, RuleExplanation

__all__ = ["ABSTAIN", "LabelingFunction", "LabelModel", "generate_candidate_lfs"]

ABSTAIN = -1


@dataclass
class LabelingFunction:
    """A noisy rule labeler: returns 0, 1 or ABSTAIN per row."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]

    @staticmethod
    def from_rule(rule: RuleExplanation, name: str) -> "LabelingFunction":
        """LF voting ``rule.outcome`` where the rule holds, abstaining
        elsewhere."""

        def fn(X: np.ndarray) -> np.ndarray:
            X = np.atleast_2d(X)
            votes = np.full(X.shape[0], ABSTAIN)
            votes[rule.holds(X)] = int(rule.outcome)
            return votes

        return LabelingFunction(name, fn)

    def __call__(self, X: np.ndarray) -> np.ndarray:
        votes = np.asarray(self.fn(np.atleast_2d(X)), dtype=int).ravel()
        if not set(np.unique(votes)) <= {ABSTAIN, 0, 1}:
            raise ValueError(f"LF {self.name!r} emitted labels outside "
                             "{-1, 0, 1}")
        return votes


class LabelModel:
    """One-coin Dawid-Skene label model fitted by EM.

    Each LF j has an unknown accuracy a_j = P(vote = y | vote ≠ abstain);
    conditioned on the true label, LF votes are independent. EM
    alternates estimating posteriors P(y = 1 | votes) and accuracies.

    Three regularizations keep the estimate in the data-supported basin
    (with *unipolar*, rarely-overlapping LFs the unregularized likelihood
    actually prefers a degenerate label-switched solution):

    * MAP M-step — Beta pseudo-counts pulling toward ``accuracy_prior``;
    * the better-than-chance constraint a_j ∈ [0.5, 0.95] (Snorkel's
      modelling assumption), which pins the label polarity;
    * bounded EM — ``n_iter`` defaults to a moderate 30 steps, by which
      point the accuracy estimates have converged to the informative
      region while the slow drift toward the boundary has not begun
      (the analogue of Snorkel's fixed training-epoch budget).
    """

    def __init__(self, n_iter: int = 30, tol: float = 1e-6,
                 prior: float = 0.5, accuracy_prior: float = 0.7,
                 prior_strength: float = 20.0) -> None:
        if not 0.5 < accuracy_prior < 1.0:
            raise ValueError("accuracy_prior must be in (0.5, 1)")
        self.n_iter = n_iter
        self.tol = tol
        self.prior = prior
        self.accuracy_prior = accuracy_prior
        self.prior_strength = prior_strength

    def fit(self, votes: np.ndarray) -> "LabelModel":
        """Fit on the LF vote matrix (n_rows, n_lfs) with −1 = abstain."""
        votes = np.atleast_2d(np.asarray(votes, dtype=int))
        n, m = votes.shape
        active = votes != ABSTAIN
        if not active.any():
            raise ValueError("every labeling function abstained everywhere")
        accuracies = np.full(m, 0.7)
        posterior = np.full(n, self.prior)
        for __ in range(self.n_iter):
            # E-step: P(y=1 | votes) under current accuracies.
            log_odds = np.full(n, np.log(self.prior / (1 - self.prior)))
            for j in range(m):
                a = np.clip(accuracies[j], 1e-4, 1 - 1e-4)
                agree1 = active[:, j] & (votes[:, j] == 1)
                agree0 = active[:, j] & (votes[:, j] == 0)
                log_odds[agree1] += np.log(a / (1 - a))
                log_odds[agree0] += np.log((1 - a) / a)
            new_posterior = 1.0 / (1.0 + np.exp(-log_odds))
            # M-step: MAP accuracy per LF with Beta pseudo-counts.
            pseudo_agree = self.accuracy_prior * self.prior_strength
            new_accuracies = accuracies.copy()
            for j in range(m):
                mask = active[:, j]
                if not mask.any():
                    continue
                p = new_posterior[mask]
                agree = np.where(votes[mask, j] == 1, p, 1 - p)
                estimate = float(
                    (agree.sum() + pseudo_agree)
                    / (mask.sum() + self.prior_strength)
                )
                # Better-than-chance constraint: the one-coin model is
                # only identifiable up to a global label swap; assuming
                # every LF beats a coin flip (Snorkel's assumption too)
                # pins the polarity and removes the degenerate fixpoint.
                new_accuracies[j] = min(max(estimate, 0.5), 0.95)
            shift = np.abs(new_posterior - posterior).max()
            posterior, accuracies = new_posterior, new_accuracies
            if shift < self.tol:
                break
        self.accuracies_ = accuracies
        self._train_posterior = posterior
        return self

    def predict_proba(self, votes: np.ndarray) -> np.ndarray:
        """P(y = 1 | votes) for new vote rows under the fitted model."""
        if not hasattr(self, "accuracies_"):
            raise RuntimeError("call fit() first")
        votes = np.atleast_2d(np.asarray(votes, dtype=int))
        n = votes.shape[0]
        log_odds = np.full(n, np.log(self.prior / (1 - self.prior)))
        for j in range(votes.shape[1]):
            a = np.clip(self.accuracies_[j], 1e-4, 1 - 1e-4)
            active = votes[:, j] != ABSTAIN
            agree1 = active & (votes[:, j] == 1)
            agree0 = active & (votes[:, j] == 0)
            log_odds[agree1] += np.log(a / (1 - a))
            log_odds[agree0] += np.log((1 - a) / a)
        return 1.0 / (1.0 + np.exp(-log_odds))

    def predict(self, votes: np.ndarray) -> np.ndarray:
        return (self.predict_proba(votes) >= 0.5).astype(int)

    @staticmethod
    def majority_vote(votes: np.ndarray, tie: float = 0.5,
                      seed: int = 0) -> np.ndarray:
        """The unweighted baseline: per-row majority of non-abstentions."""
        votes = np.atleast_2d(np.asarray(votes, dtype=int))
        rng = np.random.default_rng(seed)
        out = np.zeros(votes.shape[0], dtype=int)
        for i, row in enumerate(votes):
            cast = row[row != ABSTAIN]
            if cast.size == 0:
                out[i] = int(rng.random() < tie)
            else:
                ones = (cast == 1).mean()
                if ones == 0.5:
                    out[i] = int(rng.random() < tie)
                else:
                    out[i] = int(ones > 0.5)
        return out


def generate_candidate_lfs(
    seed_data: TabularDataset,
    min_precision: float = 0.8,
    min_coverage: float = 0.05,
    max_lfs: int = 20,
    n_thresholds: int = 4,
) -> list[LabelingFunction]:
    """Snuba-style LF synthesis from a small labeled seed set.

    Candidates are single-predicate threshold/equality rules per feature;
    those meeting precision and coverage bars on the seed are kept,
    greedily preferring LFs that label rows not yet covered (Snuba's
    diversity heuristic).
    """
    candidates: list[tuple[RuleExplanation, np.ndarray]] = []
    X, y = seed_data.X, seed_data.y
    for j, spec in enumerate(seed_data.features):
        if spec.is_categorical:
            values = np.unique(X[:, j])
            predicate_sets = [
                [Predicate(j, "==", float(v), spec.name)] for v in values
            ]
        else:
            qs = np.linspace(0, 1, n_thresholds + 2)[1:-1]
            thresholds = np.unique(np.quantile(X[:, j], qs))
            predicate_sets = []
            for t in thresholds:
                predicate_sets.append([Predicate(j, "<=", float(t), spec.name)])
                predicate_sets.append([Predicate(j, ">", float(t), spec.name)])
        for predicates in predicate_sets:
            for label in (0, 1):
                rule = RuleExplanation(
                    predicates=predicates, outcome=float(label),
                    precision=0.0, coverage=0.0, method="snuba_lf",
                )
                mask = rule.holds(X)
                if mask.mean() < min_coverage:
                    continue
                precision = float(np.mean(y[mask] == label))
                if precision < min_precision:
                    continue
                rule.precision = precision
                rule.coverage = float(mask.mean())
                candidates.append((rule, mask))
    # Greedy diverse selection.
    chosen: list[LabelingFunction] = []
    covered = np.zeros(X.shape[0], dtype=bool)
    candidates.sort(key=lambda c: -c[0].precision)
    while candidates and len(chosen) < max_lfs:
        best_idx = max(
            range(len(candidates)),
            key=lambda i: (~covered & candidates[i][1]).sum(),
        )
        rule, mask = candidates.pop(best_idx)
        if (~covered & mask).sum() == 0 and chosen:
            break
        covered |= mask
        chosen.append(LabelingFunction.from_rule(
            rule, name=f"lf_{len(chosen)}[{rule.predicates[0]}=>{rule.outcome:g}]"
        ))
    return chosen
