"""Rule-based explanations and rule mining (§2.2)."""

from .anchors import AnchorExplainer
from .apriori import AssociationRule, apriori, association_rules
from .bandit import KLLucb, kl_bernoulli, kl_lower_bound, kl_upper_bound
from .decision_set import DecisionSetClassifier
from .fpgrowth import FPTree, fpgrowth
from .weak_supervision import (
    ABSTAIN,
    LabelingFunction,
    LabelModel,
    generate_candidate_lfs,
)

__all__ = [
    "AnchorExplainer",
    "DecisionSetClassifier",
    "apriori",
    "association_rules",
    "AssociationRule",
    "fpgrowth",
    "ABSTAIN",
    "LabelingFunction",
    "LabelModel",
    "generate_candidate_lfs",
    "FPTree",
    "KLLucb",
    "kl_bernoulli",
    "kl_lower_bound",
    "kl_upper_bound",
]
