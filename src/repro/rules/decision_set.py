"""Interpretable decision sets [Lakkaraju, Bach & Leskovec 2016].

A decision set is an *unordered* collection of independent if-then rules.
Lakkaraju et al. learn one by (1) mining a candidate pool of high-support
class-conditional rules and (2) selecting a subset that jointly optimizes
accuracy and interpretability: few rules, short rules, little overlap,
and every class covered. The original paper optimizes the (submodular)
objective with smooth local search; at our scale a greedy build followed
by swap-based local search reaches the same trade-off frontier and is the
documented simplification (DESIGN.md).

The learned object doubles as a *global explanation* of a black box when
fit on the black box's predictions instead of ground-truth labels.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import TabularDataset
from ..core.explanation import Predicate, RuleExplanation
from .apriori import apriori

__all__ = ["DecisionSetClassifier"]


class DecisionSetClassifier:
    """Rule-set classifier with a joint accuracy/interpretability objective.

    Parameters
    ----------
    n_bins:
        Quantile bins for numeric features (rule predicates are bins).
    min_support:
        Support threshold for candidate rule mining, per class.
    max_rule_length:
        Predicates allowed per rule (the tutorial notes >5 is unreadable).
    max_rules:
        Rule budget of the final set.
    lambda_interpretability:
        Trade-off weight: 0 = pure accuracy, larger = smaller/cleaner set.
    """

    def __init__(
        self,
        n_bins: int = 4,
        min_support: float = 0.05,
        max_rule_length: int = 3,
        max_rules: int = 8,
        lambda_interpretability: float = 0.1,
        n_local_search: int = 50,
        seed: int = 0,
    ) -> None:
        self.n_bins = n_bins
        self.min_support = min_support
        self.max_rule_length = max_rule_length
        self.max_rules = max_rules
        self.lambda_interpretability = lambda_interpretability
        self.n_local_search = n_local_search
        self.seed = seed

    # -- discretization -------------------------------------------------------

    def _make_items(self, data: TabularDataset) -> tuple[list, np.ndarray]:
        """Encode each row as a set of (feature, bin) items.

        Returns the per-feature predicate table and an ``(n, d)`` integer
        bin matrix.
        """
        predicates: list[list[list[Predicate]]] = []
        bins = np.zeros((data.n_samples, data.n_features), dtype=int)
        for j, spec in enumerate(data.features):
            col = data.X[:, j]
            if spec.is_categorical:
                edges = None
                values = sorted(set(col.astype(int)))
                table = [
                    [Predicate(j, "==", float(v), spec.name)] for v in values
                ]
                code = {v: k for k, v in enumerate(values)}
                bins[:, j] = [code[int(v)] for v in col]
            else:
                qs = np.linspace(0, 1, self.n_bins + 1)[1:-1]
                edges = np.unique(np.quantile(col, qs))
                bins[:, j] = np.searchsorted(edges, col, side="right")
                table = []
                for b in range(len(edges) + 1):
                    preds: list[Predicate] = []
                    if b > 0:
                        preds.append(Predicate(j, ">", float(edges[b - 1]), spec.name))
                    if b < len(edges):
                        preds.append(Predicate(j, "<=", float(edges[b]), spec.name))
                    table.append(preds)
            predicates.append(table)
        return predicates, bins

    def _mine_candidates(self, data: TabularDataset) -> list[RuleExplanation]:
        predicates, bins = self._make_items(data)
        self._predicate_table = predicates
        candidates: list[RuleExplanation] = []
        for label in np.unique(data.y):
            member_rows = bins[data.y == label]
            transactions = [
                frozenset((j, int(row[j])) for j in range(data.n_features))
                for row in member_rows
            ]
            itemsets = apriori(transactions, self.min_support)
            for itemset in itemsets:
                if not 1 <= len(itemset) <= self.max_rule_length:
                    continue
                preds = []
                for j, b in itemset:
                    preds.extend(predicates[j][b])
                rule = RuleExplanation(
                    predicates=preds, outcome=float(label),
                    precision=0.0, coverage=0.0, method="decision_set",
                )
                mask = rule.holds(data.X)
                if not mask.any():
                    continue
                rule.coverage = float(mask.mean())
                rule.precision = float(np.mean(data.y[mask] == label))
                candidates.append(rule)
        return candidates

    # -- objective ---------------------------------------------------------------

    def _objective(self, rules: list[RuleExplanation],
                   data: TabularDataset) -> float:
        """Accuracy − λ·(size + length + overlap − class coverage)."""
        if not rules:
            return -np.inf
        accuracy = float(np.mean(self._predict_with(rules, data.X) == data.y))
        total_length = sum(len(r) for r in rules)
        masks = [r.holds(data.X) for r in rules]
        overlap = 0.0
        for i in range(len(rules)):
            for j in range(i + 1, len(rules)):
                overlap += float(np.mean(masks[i] & masks[j]))
        covered_classes = {r.outcome for r in rules}
        class_bonus = len(covered_classes) / max(len(np.unique(data.y)), 1)
        penalty = (
            len(rules) / self.max_rules
            + total_length / (self.max_rules * self.max_rule_length)
            + overlap
            - class_bonus
        )
        return accuracy - self.lambda_interpretability * penalty

    def _predict_with(self, rules: list[RuleExplanation], X: np.ndarray
                      ) -> np.ndarray:
        X = np.atleast_2d(X)
        votes = np.full(X.shape[0], self._default_class, dtype=float)
        best_precision = np.zeros(X.shape[0])
        for rule in rules:
            mask = rule.holds(X)
            better = mask & (rule.precision > best_precision)
            votes[better] = rule.outcome
            best_precision[better] = rule.precision
        return votes

    # -- fitting -------------------------------------------------------------------

    def fit(self, data: TabularDataset) -> "DecisionSetClassifier":
        rng = np.random.default_rng(self.seed)
        labels, counts = np.unique(data.y, return_counts=True)
        self._default_class = float(labels[np.argmax(counts)])
        pool = self._mine_candidates(data)
        if not pool:
            self.rules_ = []
            return self
        # Greedy build.
        chosen: list[RuleExplanation] = []
        current = -np.inf
        while len(chosen) < self.max_rules:
            best_rule, best_score = None, current
            for rule in pool:
                if rule in chosen:
                    continue
                score = self._objective(chosen + [rule], data)
                if score > best_score:
                    best_rule, best_score = rule, score
            if best_rule is None:
                break
            chosen.append(best_rule)
            current = best_score
        # Local search: random swaps that improve the objective.
        for __ in range(self.n_local_search):
            if not chosen:
                break
            out_idx = int(rng.integers(0, len(chosen)))
            in_rule = pool[int(rng.integers(0, len(pool)))]
            if in_rule in chosen:
                continue
            trial = chosen[:out_idx] + chosen[out_idx + 1 :] + [in_rule]
            score = self._objective(trial, data)
            if score > current:
                chosen, current = trial, score
        self.rules_ = chosen
        self.objective_ = current
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "rules_"):
            raise RuntimeError("call fit() first")
        return self._predict_with(self.rules_, X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y).ravel()))

    def describe(self) -> str:
        """Human-readable listing of the learned rule set."""
        lines = [str(rule) for rule in self.rules_]
        lines.append(f"ELSE predict {self._default_class:g}")
        return "\n".join(lines)

    @property
    def complexity(self) -> int:
        """Total number of predicates across the set (reading cost)."""
        return sum(len(r) for r in self.rules_)
