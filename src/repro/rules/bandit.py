"""KL-LUCB multi-armed bandit for best-arm identification.

Anchors [Ribeiro+ 2018] frames rule search as pure-exploration bandits:
each candidate rule is an arm whose pulls are Bernoulli draws "does the
model agree with the anchored prediction on a perturbed sample satisfying
the rule?". KL-LUCB (Kaufmann & Kalyanakrishnan 2013) adaptively samples
arms until the top arms are separated with confidence, using
Kullback-Leibler confidence intervals, which are much tighter than
Hoeffding for Bernoulli means near 0 or 1 — precisely the high-precision
regime anchors live in.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["kl_bernoulli", "kl_upper_bound", "kl_lower_bound", "KLLucb"]


def kl_bernoulli(p: float, q: float) -> float:
    """KL(Bern(p) ‖ Bern(q)) with the usual 0·log0 = 0 conventions."""
    p = min(max(p, 1e-12), 1.0 - 1e-12)
    q = min(max(q, 1e-12), 1.0 - 1e-12)
    return p * np.log(p / q) + (1.0 - p) * np.log((1.0 - p) / (1.0 - q))


def kl_upper_bound(p_hat: float, n: int, beta: float) -> float:
    """Largest q with n·KL(p̂ ‖ q) ≤ β (upper confidence bound).

    KL(p̂ ‖ q) is increasing in q above p̂, so bisect on [p̂, 1].
    """
    if n == 0:
        return 1.0
    level = beta / n
    if kl_bernoulli(p_hat, 1.0 - 1e-12) <= level:
        return 1.0
    lower, upper = p_hat, 1.0
    for __ in range(40):
        mid = 0.5 * (lower + upper)
        if kl_bernoulli(p_hat, mid) > level:
            upper = mid
        else:
            lower = mid
    return 0.5 * (lower + upper)


def kl_lower_bound(p_hat: float, n: int, beta: float) -> float:
    """Smallest q with n·KL(p̂ ‖ q) ≤ β (lower confidence bound).

    KL(p̂ ‖ q) is decreasing in q below p̂, so bisect on [0, p̂] with the
    opposite orientation.
    """
    if n == 0:
        return 0.0
    level = beta / n
    if kl_bernoulli(p_hat, 1e-12) <= level:
        return 0.0
    lower, upper = 0.0, p_hat
    for __ in range(40):
        mid = 0.5 * (lower + upper)
        if kl_bernoulli(p_hat, mid) > level:
            lower = mid
        else:
            upper = mid
    return 0.5 * (lower + upper)


class KLLucb:
    """Pure-exploration top-k identification with KL confidence bounds.

    Parameters
    ----------
    sample_fns:
        One Bernoulli sampler per arm; each call returns a batch mean and
        batch size (batching amortizes model calls).
    delta:
        Failure probability of the confidence statement.
    """

    def __init__(
        self,
        sample_fns: list[Callable[[int], float]],
        delta: float = 0.05,
        batch_size: int = 10,
    ) -> None:
        self.sample_fns = sample_fns
        self.delta = delta
        self.batch_size = batch_size
        n_arms = len(sample_fns)
        self.counts = np.zeros(n_arms, dtype=int)
        self.means = np.zeros(n_arms)

    def _beta(self, t: int) -> float:
        """Exploration rate from the KL-LUCB paper (simplified constants)."""
        n_arms = len(self.sample_fns)
        return np.log(5.0 * n_arms * max(t, 1) ** 1.1 / self.delta)

    def _pull(self, arm: int) -> None:
        batch_mean = self.sample_fns[arm](self.batch_size)
        n_old = self.counts[arm]
        self.counts[arm] = n_old + self.batch_size
        self.means[arm] = (
            self.means[arm] * n_old + batch_mean * self.batch_size
        ) / self.counts[arm]

    def top_arms(
        self, k: int = 1, epsilon: float = 0.05, max_pulls: int = 20000
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Identify the ``k`` best arms to ε-accuracy.

        Returns ``(top_indices, means, counts)``. Stops when the lower
        bound of the worst retained arm exceeds the upper bound of the
        best rejected arm minus ε, or on budget exhaustion.
        """
        n_arms = len(self.sample_fns)
        if k >= n_arms:
            for arm in range(n_arms):
                self._pull(arm)
            return np.arange(n_arms), self.means.copy(), self.counts.copy()
        for arm in range(n_arms):
            self._pull(arm)
        t = 1
        while int(self.counts.sum()) < max_pulls:
            beta = self._beta(t)
            order = np.argsort(-self.means)
            top, rest = order[:k], order[k:]
            lows = np.array([
                kl_lower_bound(self.means[a], int(self.counts[a]), beta)
                for a in top
            ])
            highs = np.array([
                kl_upper_bound(self.means[a], int(self.counts[a]), beta)
                for a in rest
            ])
            weakest_top = top[int(np.argmin(lows))]
            strongest_rest = rest[int(np.argmax(highs))]
            if highs.max() - lows.min() <= epsilon:
                break
            self._pull(weakest_top)
            self._pull(strongest_rest)
            t += 1
        order = np.argsort(-self.means)
        return order[:k], self.means.copy(), self.counts.copy()
