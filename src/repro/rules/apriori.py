"""Apriori frequent-itemset and association-rule mining [Agrawal & Srikant].

The tutorial (§2.2.1) positions rule mining as the data-management
community's foundational contribution to rule-based explanation. Apriori
is the classic level-wise algorithm: candidates of size k are joins of
frequent (k−1)-itemsets, pruned by the anti-monotone support property
before a counting pass over the transactions.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from itertools import combinations

__all__ = ["AssociationRule", "apriori", "association_rules"]


@dataclass(frozen=True)
class AssociationRule:
    """``antecedent → consequent`` with standard quality measures."""

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:
        lhs = "{" + ", ".join(map(str, sorted(self.antecedent))) + "}"
        rhs = "{" + ", ".join(map(str, sorted(self.consequent))) + "}"
        return (
            f"{lhs} -> {rhs} (support={self.support:.3f}, "
            f"confidence={self.confidence:.3f}, lift={self.lift:.2f})"
        )


def apriori(
    transactions: list[frozenset], min_support: float
) -> dict[frozenset, float]:
    """All itemsets with support ≥ ``min_support``; returns {itemset: support}.

    Support is the fraction of transactions containing the itemset.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError("min_support must be in (0, 1]")
    n = len(transactions)
    if n == 0:
        return {}
    min_count = min_support * n

    # Level 1: count single items.
    counts: dict[frozenset, int] = defaultdict(int)
    for t in transactions:
        for item in t:
            counts[frozenset([item])] += 1
    frequent = {
        itemset: c for itemset, c in counts.items() if c >= min_count
    }
    result = dict(frequent)
    k = 2
    while frequent:
        # Candidate generation: join frequent (k−1)-itemsets sharing a
        # (k−2)-prefix, then prune candidates with an infrequent subset.
        prev = sorted(frequent, key=lambda s: sorted(map(str, s)))
        candidates: set[frozenset] = set()
        for i in range(len(prev)):
            for j in range(i + 1, len(prev)):
                union = prev[i] | prev[j]
                if len(union) != k:
                    continue
                if all(
                    frozenset(sub) in frequent
                    for sub in combinations(union, k - 1)
                ):
                    candidates.add(union)
        if not candidates:
            break
        counts = defaultdict(int)
        for t in transactions:
            if len(t) < k:
                continue
            for candidate in candidates:
                if candidate <= t:
                    counts[candidate] += 1
        frequent = {c: cnt for c, cnt in counts.items() if cnt >= min_count}
        result.update(frequent)
        k += 1
    return {itemset: c / n for itemset, c in result.items()}


def association_rules(
    itemsets: dict[frozenset, float],
    min_confidence: float = 0.5,
) -> list[AssociationRule]:
    """Derive rules from mined itemsets.

    For each frequent itemset I and non-empty proper subset A:
    confidence(A → I∖A) = support(I)/support(A); rules below
    ``min_confidence`` are dropped. Lift divides by the consequent's
    support. Rules whose sub-supports were pruned by the miner are
    skipped (their confidence cannot be computed).
    """
    rules: list[AssociationRule] = []
    for itemset, support in itemsets.items():
        if len(itemset) < 2:
            continue
        for size in range(1, len(itemset)):
            for antecedent_items in combinations(sorted(itemset, key=str), size):
                antecedent = frozenset(antecedent_items)
                consequent = itemset - antecedent
                if antecedent not in itemsets or consequent not in itemsets:
                    continue
                confidence = support / itemsets[antecedent]
                if confidence < min_confidence:
                    continue
                lift = confidence / itemsets[consequent]
                rules.append(
                    AssociationRule(antecedent, consequent, support,
                                    confidence, lift)
                )
    return sorted(rules, key=lambda r: (-r.confidence, -r.support))
