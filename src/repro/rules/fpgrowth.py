"""FP-Growth frequent-pattern mining [Han, Pei & Yin 2000].

FP-Growth avoids Apriori's candidate generation entirely: transactions
are compressed into a prefix tree (the FP-tree) whose shared paths encode
co-occurrence, and frequent itemsets are mined by recursively building
*conditional* FP-trees for each item's prefix paths. At low support
thresholds, where Apriori's candidate sets explode combinatorially,
FP-Growth's two-pass construction wins by orders of magnitude — the
crossover E14 measures.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["fpgrowth", "FPTree"]


class _FPNode:
    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item, parent) -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict = {}


class FPTree:
    """Prefix tree over support-ordered transactions with item header links."""

    def __init__(self) -> None:
        self.root = _FPNode(None, None)
        self.header: dict = defaultdict(list)  # item -> nodes holding it

    def insert(self, items: list, count: int = 1) -> None:
        """Insert one support-ordered transaction with multiplicity."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                self.header[item].append(child)
            child.count += count
            node = child

    def prefix_paths(self, item) -> list[tuple[list, int]]:
        """All root-to-parent paths above occurrences of ``item``."""
        paths = []
        for node in self.header[item]:
            path = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            paths.append((path[::-1], node.count))
        return paths


def fpgrowth(
    transactions: list[frozenset], min_support: float
) -> dict[frozenset, float]:
    """All itemsets with support ≥ ``min_support``; returns {itemset: support}.

    Produces exactly the same result set as :func:`repro.rules.apriori.apriori`
    (the property-based tests assert this), with a different complexity
    profile.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError("min_support must be in (0, 1]")
    n = len(transactions)
    if n == 0:
        return {}
    min_count = min_support * n

    item_counts: dict = defaultdict(int)
    for t in transactions:
        for item in t:
            item_counts[item] += 1
    frequent_items = {
        item: c for item, c in item_counts.items() if c >= min_count
    }
    # Deterministic support-descending order (ties broken by repr).
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent_items, key=lambda i: (-frequent_items[i], str(i)))
        )
    }

    tree = FPTree()
    for t in transactions:
        items = sorted(
            (i for i in t if i in frequent_items), key=lambda i: order[i]
        )
        if items:
            tree.insert(items)

    result: dict[frozenset, int] = {}

    def mine(tree: FPTree, suffix: frozenset) -> None:
        # Process items bottom-up (least frequent first).
        items = sorted(tree.header, key=lambda i: -order.get(i, -1))
        for item in items:
            count = sum(node.count for node in tree.header[item])
            if count < min_count:
                continue
            new_suffix = suffix | {item}
            result[new_suffix] = count
            conditional = FPTree()
            # Conditional pattern base: prefix paths weighted by counts.
            path_item_counts: dict = defaultdict(int)
            paths = tree.prefix_paths(item)
            for path, path_count in paths:
                for p_item in path:
                    path_item_counts[p_item] += path_count
            keep = {i for i, c in path_item_counts.items() if c >= min_count}
            non_empty = False
            for path, path_count in paths:
                filtered = [i for i in path if i in keep]
                if filtered:
                    conditional.insert(filtered, path_count)
                    non_empty = True
            if non_empty:
                mine(conditional, new_suffix)

    mine(tree, frozenset())
    return {itemset: c / n for itemset, c in result.items()}
