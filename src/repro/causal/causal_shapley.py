"""Causal Shapley values [Heskes et al. 2020].

Causal Shapley values keep all four Shapley axioms but replace the
coalition value function with the interventional one,
v(S) = E[f(X) | do(X_S = x_S)], evaluated on a structural causal model.
For each permutation π and player i with predecessors S, the paper
further splits the marginal contribution into

* a **direct** effect — the change from plugging x_i into the model while
  the remaining features keep their do(x_S) distribution, and
* an **indirect** effect — the change from the intervention do(X_i = x_i)
  shifting the distribution of i's causal descendants.

Both parts are estimated here by permutation sampling against the SCM;
their sums are the causal Shapley values, and the direct part alone
recovers (in expectation) the marginal-SHAP behaviour, which is how E10
shows where the two disagree.

The walk (two SCM expectations per step, a global seed counter, the
direct/indirect ledger) lives in :class:`repro.games.InterventionalGame`
and is driven by the shared permutation estimator (``engine=True``, the
default); ``engine=False`` keeps the pre-games loop for the parity
tests.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import FeatureAttribution
from ..games.adapters import InterventionalGame
from ..games.estimators import permutation_estimator
from ..obs import instrument_explainer
from .scm import StructuralCausalModel

__all__ = ["CausalShapleyExplainer"]


@instrument_explainer
class CausalShapleyExplainer:
    """Interventional Shapley values with direct/indirect decomposition.

    Parameters
    ----------
    model:
        Callable or fitted model; normalized output is explained.
    scm:
        The causal model over (at least) the feature variables.
    feature_order:
        SCM variable names in model-column order.
    n_permutations, n_samples:
        Monte-Carlo budgets: orderings sampled, and SCM draws per
        expectation.
    engine:
        ``True`` (default) runs the walks through the shared games
        estimator; ``False`` keeps the pre-games loop.
    backend:
        Accepted for API symmetry with the other explainers and
        forwarded to the estimator, but
        :class:`~repro.games.InterventionalGame` steps a global seed
        counter (evaluation order is part of its semantics), so it is
        never sharded — every backend produces the serial walk order.
    """

    method_name = "causal_shapley"

    def __init__(
        self,
        model,
        scm: StructuralCausalModel,
        feature_order: list[str],
        n_permutations: int = 40,
        n_samples: int = 400,
        seed: int = 0,
        engine: bool = True,
        backend: str | None = None,
        n_procs: int | None = None,
    ) -> None:
        from ..core.base import as_predict_fn

        self.predict_fn = as_predict_fn(model)
        self.scm = scm
        self.feature_order = list(feature_order)
        self.n_permutations = n_permutations
        self.n_samples = n_samples
        self.seed = seed
        self.engine = engine
        self.backend = backend
        self.n_procs = n_procs

    def _expectation(
        self,
        interventions: dict[str, float],
        plug_in: dict[int, float],
        seed: int,
    ) -> float:
        """E[f(X̃)] where X ~ do(interventions) and X̃ overrides columns.

        ``plug_in`` replaces model-input columns *without* intervening in
        the SCM — the device that separates direct from indirect effects.
        """
        values = self.scm.sample(self.n_samples, seed=seed,
                                 interventions=interventions)
        X = np.column_stack([values[name] for name in self.feature_order])
        for j, value in plug_in.items():
            X[:, j] = value
        return float(np.mean(self.predict_fn(X)))

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = np.asarray(x, dtype=float).ravel()
        n = x.shape[0]
        if self.engine:
            return self._explain_games(x, feature_names)
        rng = np.random.default_rng(self.seed)
        phi_direct = np.zeros(n)
        phi_indirect = np.zeros(n)
        counter = 0
        for __ in range(self.n_permutations):
            perm = rng.permutation(n)  # games: allow
            coalition: dict[str, float] = {}
            plugged: dict[int, float] = {}
            v_prev = self._expectation(coalition, plugged, seed=self.seed + counter)
            counter += 1
            for player in perm:
                name = self.feature_order[player]
                # Direct: plug x_i into the model under the old intervention.
                v_direct = self._expectation(
                    coalition, {**plugged, player: float(x[player])},
                    seed=self.seed + counter,
                )
                counter += 1
                # Full: actually intervene, shifting descendants too.
                coalition[name] = float(x[player])
                plugged[player] = float(x[player])
                v_full = self._expectation(
                    coalition, plugged, seed=self.seed + counter
                )
                counter += 1
                phi_direct[player] += v_direct - v_prev
                phi_indirect[player] += v_full - v_direct
                v_prev = v_full
        phi_direct /= self.n_permutations
        phi_indirect /= self.n_permutations
        phi = phi_direct + phi_indirect
        base = self._expectation({}, {}, seed=self.seed + counter)
        names = feature_names or self.feature_order
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=float(self.predict_fn(x[None, :])[0]),
            method=self.method_name,
            meta={"direct": phi_direct, "indirect": phi_indirect},
        )

    def _explain_games(self, x, feature_names) -> FeatureAttribution:
        game = InterventionalGame(
            self.scm, self.predict_fn, self.feature_order, x,
            n_samples=self.n_samples, seed=self.seed,
        )
        est = permutation_estimator(
            game,
            n_permutations=self.n_permutations,
            antithetic=False,
            seed=self.seed,
            aggregate="sum_counts",
            backend=self.backend,
            n_procs=self.n_procs,
        )
        # The direct/indirect ledger is the legacy accumulation order:
        # summing the halves (not est.values' whole-step differences)
        # keeps the published values bitwise identical to the old loop.
        phi_direct = game.direct_sums / self.n_permutations
        phi_indirect = game.indirect_sums / self.n_permutations
        phi = phi_direct + phi_indirect
        base = game.base_value()
        names = feature_names or self.feature_order
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=float(self.predict_fn(x[None, :])[0]),
            method=self.method_name,
            meta={"direct": phi_direct, "indirect": phi_indirect,
                  "convergence": est.diagnostics},
        )
