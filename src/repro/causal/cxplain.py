"""CXPlain: causal explanations via Granger-style surrogate training
[Schwab & Karlen 2019] (§2.1.3's "surrogates with causal objective
functions").

Where LIME trains its surrogate to mimic the *model output*, CXPlain
trains a surrogate to predict each feature's **Granger-causal
contribution to the loss**: the loss increase from withholding the
feature,

    Δ_j(x) = ℓ(f(x_{−j}), y) − ℓ(f(x), y),

normalized into an importance distribution per instance. The trained
surrogate then explains *new* instances in one forward pass — amortized
explanation — and a bootstrap ensemble of surrogates yields the paper's
uncertainty estimates.

The surrogate here is a gradient-boosted regressor per feature (any
regressor from :mod:`repro.models` works); masking uses mean imputation,
as in the reference implementation's tabular mode.
"""

from __future__ import annotations

import numpy as np

from ..core.base import Explainer
from ..core.explanation import FeatureAttribution
from ..models.boosting import GradientBoostingRegressor

__all__ = ["CXPlainExplainer", "granger_attributions"]


def granger_attributions(
    predict_fn,
    X: np.ndarray,
    y: np.ndarray,
    mask_values: np.ndarray | None = None,
    eps: float = 1e-12,
) -> np.ndarray:
    """Per-instance Granger-causal loss contributions, normalized.

    Returns an ``(n, d)`` matrix of non-negative importances summing to
    1 per row. ``y`` holds binary labels; loss is cross-entropy on the
    normalized model score.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    if mask_values is None:
        mask_values = X.mean(axis=0)

    def loss(scores: np.ndarray) -> np.ndarray:
        p = np.clip(scores, eps, 1 - eps)
        return -(y * np.log(p) + (1 - y) * np.log(1 - p))

    base_loss = loss(np.asarray(predict_fn(X), dtype=float).ravel())
    n, d = X.shape
    deltas = np.zeros((n, d))
    for j in range(d):
        masked = X.copy()
        masked[:, j] = mask_values[j]
        deltas[:, j] = loss(
            np.asarray(predict_fn(masked), dtype=float).ravel()
        ) - base_loss
    deltas = np.maximum(deltas, 0.0)
    totals = deltas.sum(axis=1, keepdims=True)
    # Rows where no feature mattered get a uniform distribution.
    uniform = np.full((1, d), 1.0 / d)
    return np.where(totals > eps, deltas / np.maximum(totals, eps), uniform)


class CXPlainExplainer(Explainer):
    """Amortized causal-objective surrogate explainer with uncertainty.

    Parameters
    ----------
    n_bootstrap:
        Number of bootstrap-resampled surrogate ensembles; their spread
        gives per-feature uncertainty.
    surrogate_factory:
        Builder for the per-feature regressor (shared architecture).
    """

    method_name = "cxplain"

    def __init__(
        self,
        model,
        n_bootstrap: int = 5,
        surrogate_factory=None,
        output: str = "auto",
        seed: int = 0,
    ) -> None:
        super().__init__(model, output)
        self.n_bootstrap = max(1, n_bootstrap)
        self.surrogate_factory = surrogate_factory or (
            lambda: GradientBoostingRegressor(
                n_estimators=30, max_depth=3, seed=0
            )
        )
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CXPlainExplainer":
        """Compute Granger targets on (X, y) and train the surrogates."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y).ravel()
        self._mask_values = X.mean(axis=0)
        targets = granger_attributions(
            self.predict_fn, X, y, self._mask_values
        )
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        self._ensembles: list[list] = []
        for __ in range(self.n_bootstrap):
            idx = rng.integers(0, X.shape[0], X.shape[0])
            members = []
            for j in range(self.n_features_):
                surrogate = self.surrogate_factory()
                surrogate.fit(X[idx], targets[idx, j])
                members.append(surrogate)
            self._ensembles.append(members)
        return self

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        """One forward pass through the surrogates — no model queries."""
        if not hasattr(self, "_ensembles"):
            raise RuntimeError("call fit() before explain()")
        x = np.asarray(x, dtype=float).ravel()[None, :]
        per_bootstrap = np.stack([
            np.array([member.predict(x)[0] for member in members])
            for members in self._ensembles
        ])
        per_bootstrap = np.maximum(per_bootstrap, 0.0)
        sums = per_bootstrap.sum(axis=1, keepdims=True)
        per_bootstrap = per_bootstrap / np.maximum(sums, 1e-12)
        mean = per_bootstrap.mean(axis=0)
        spread = per_bootstrap.std(axis=0)
        names = feature_names or [f"x{i}" for i in range(self.n_features_)]
        # Deliberately no model query here: amortization means explaining
        # costs only surrogate forward passes.
        return FeatureAttribution(
            values=mean,
            feature_names=names,
            base_value=0.0,
            prediction=None,
            method=self.method_name,
            meta={"uncertainty": spread, "n_bootstrap": self.n_bootstrap},
        )

    def explain_direct(self, x: np.ndarray, y: float,
                       feature_names: list[str] | None = None
                       ) -> FeatureAttribution:
        """Non-amortized Granger attribution for one labeled instance."""
        x = np.asarray(x, dtype=float).ravel()
        values = granger_attributions(
            self.predict_fn, x[None, :], np.asarray([y]),
            getattr(self, "_mask_values", None),
        )[0]
        names = feature_names or [f"x{i}" for i in range(x.shape[0])]
        return FeatureAttribution(
            values=values,
            feature_names=names,
            prediction=float(self.predict_fn(x[None, :])[0]),
            method="cxplain_direct",
        )
