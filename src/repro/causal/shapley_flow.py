"""Shapley flow: edge-based model interpretation [Wang, Wiens & Lundberg 2021].

Shapley flow moves attribution from nodes to the *edges* of a causal
graph: each edge receives the credit that flows along it from causes to
the model output. Credit is averaged over random depth-first traversals
from a virtual root: traversing an edge transmits the source's current
value to the target, the target's mechanism re-evaluates, and the update
propagates by re-traversing the target's own out-edges. An edge's credit
for one traversal event is the model-output change over the whole DFS
subtree the event initiates — the "flow through the edge".

This accounting makes conservation exact per ordering for every
*boundary* (an ancestor-closed root/sink cut): each output change happens
at a sink-edge event and is credited once to every edge on its DFS
ancestry chain, which crosses any boundary exactly once. In particular

* the sink-side boundary (edges feature → output) reproduces
  asymmetric-Shapley-style node attributions, and
* the root-side boundary assigns all credit to root causes (and noise).

Noise handling: every non-source variable gets an explicit exogenous
source holding its abducted noise under the additive-noise assumption
``u_v = x_v − f_v(x_parents, 0)`` (exact for linear mechanisms), so the
graph is deterministic given its sources.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..obs import instrument_explainer
from .scm import StructuralCausalModel

__all__ = ["ShapleyFlowExplainer", "FlowResult"]

_SINK = "__output__"
_ROOT = "__root__"


class FlowResult:
    """Edge credits of one Shapley-flow explanation."""

    def __init__(self, credits: dict[tuple[str, str], float],
                 foreground_output: float, background_output: float) -> None:
        self.credits = dict(credits)
        self.foreground_output = foreground_output
        self.background_output = background_output

    def edge(self, source: str, target: str) -> float:
        """Credit of one edge (0 for edges never traversed)."""
        return self.credits.get((source, target), 0.0)

    def boundary_attributions(self) -> dict[str, float]:
        """Node attributions at the sink cut: credit of feature→output edges."""
        return {
            u: credit for (u, v), credit in self.credits.items() if v == _SINK
        }

    def root_attributions(self) -> dict[str, float]:
        """Node attributions at the source cut (distal credit, incl. noise)."""
        return {
            v: credit for (u, v), credit in self.credits.items() if u == _ROOT
        }

    def conservation_gap(self) -> float:
        """Max |Σ boundary credits − (f(x) − f(bg))| over both named cuts."""
        total = self.foreground_output - self.background_output
        sink_gap = abs(sum(self.boundary_attributions().values()) - total)
        root_gap = abs(sum(self.root_attributions().values()) - total)
        return max(sink_gap, root_gap)


@instrument_explainer
class ShapleyFlowExplainer:
    """Monte-Carlo Shapley flow over an SCM with additive noise.

    Parameters
    ----------
    model:
        Callable or fitted model over the feature columns.
    scm:
        Causal graph with mechanisms ``f(parents, noise)`` additive in the
        noise argument.
    feature_order:
        SCM variables feeding the model, in column order. Only these
        variables and their SCM ancestors participate.
    n_orderings:
        Number of random DFS traversals averaged.
    """

    method_name = "shapley_flow"

    def __init__(
        self,
        model,
        scm: StructuralCausalModel,
        feature_order: list[str],
        n_orderings: int = 50,
        seed: int = 0,
    ) -> None:
        from ..core.base import as_predict_fn

        self.predict_fn = as_predict_fn(model)
        self.scm = scm
        self.feature_order = list(feature_order)
        self.n_orderings = n_orderings
        self.seed = seed

    # -- deterministic node evaluation ----------------------------------------

    def _abduct(self, values: dict[str, float]) -> dict[str, float]:
        """Additive-noise abduction: u_v = x_v − f_v(x_parents, 0)."""
        noise = {}
        for name, value in values.items():
            parents = {
                p: np.asarray([values[p]]) for p in self.scm.parents(name)
            }
            mechanism_value = float(
                self.scm._mechanisms[name](parents, np.zeros(1))[0]
            )
            noise[name] = value - mechanism_value
        return noise

    def _mechanism(self, name: str, parent_values: dict[str, float],
                   noise_value: float) -> float:
        parents = {p: np.asarray([v]) for p, v in parent_values.items()}
        return float(
            self.scm._mechanisms[name](parents, np.asarray([noise_value]))[0]
        )

    def explain(self, x: dict[str, float], baseline: dict[str, float]
                ) -> FlowResult:
        """Explain f at foreground ``x`` against ``baseline``.

        Both are full assignments ``{variable: value}`` covering the
        feature variables (extra variables are ignored).
        """
        fg = {v: float(x[v]) for v in self.scm.variables if v in x}
        bg = {v: float(baseline[v]) for v in self.scm.variables if v in baseline}
        missing = [f for f in self.feature_order if f not in fg or f not in bg]
        if missing:
            raise ValueError(f"assignments missing features {missing}")
        fg_noise = self._abduct(fg)
        bg_noise = self._abduct(bg)

        # Build the augmented graph: noise sources, virtual root and sink.
        out_edges: dict[str, list[str]] = defaultdict(list)
        root_children: list[str] = []
        participating = [v for v in self.scm.variables if v in fg]
        for name in participating:
            parents = [p for p in self.scm.parents(name) if p in fg]
            if parents:
                noise_node = f"u_{name}"
                root_children.append(noise_node)
                out_edges[noise_node].append(name)
                for p in parents:
                    out_edges[p].append(name)
            else:
                root_children.append(name)
            if name in self.feature_order:
                out_edges[name].append(_SINK)

        rng = np.random.default_rng(self.seed)
        totals: dict[tuple[str, str], float] = defaultdict(float)

        def model_output(view: dict[str, float]) -> float:
            row = np.asarray([view[f] for f in self.feature_order], dtype=float)
            return float(self.predict_fn(row[None, :])[0])

        fg_out = model_output(fg)
        bg_out = model_output(bg)

        for __ in range(self.n_orderings):
            node_value: dict[str, float] = {}
            edge_value: dict[tuple[str, str], float] = {}
            for name in participating:
                node_value[name] = bg[name]
                node_value[f"u_{name}"] = bg_noise.get(name, 0.0)
            for source, targets in out_edges.items():
                for target in targets:
                    edge_value[(source, target)] = node_value.get(source, 0.0)
            state = {"output": bg_out}

            def recompute(node: str) -> None:
                parents = [p for p in self.scm.parents(node) if p in fg]
                parent_values = {p: edge_value[(p, node)] for p in parents}
                noise_value = edge_value[(f"u_{node}", node)]
                node_value[node] = self._mechanism(node, parent_values, noise_value)

            def traverse(node: str) -> None:
                successors = list(out_edges[node])
                rng.shuffle(successors)
                for succ in successors:
                    out_before = state["output"]
                    edge_value[(node, succ)] = node_value[node]
                    if succ == _SINK:
                        view = {
                            f: edge_value[(f, _SINK)] for f in self.feature_order
                        }
                        state["output"] = model_output(view)
                    else:
                        recompute(succ)
                        traverse(succ)
                    totals[(node, succ)] += state["output"] - out_before

            order = list(root_children)
            rng.shuffle(order)
            for child in order:
                out_before = state["output"]
                if child.startswith("u_"):
                    node_value[child] = fg_noise.get(child[2:], 0.0)
                else:
                    node_value[child] = fg[child]
                traverse(child)
                totals[(_ROOT, child)] += state["output"] - out_before

        credits = {
            edge: total / self.n_orderings for edge, total in totals.items()
        }
        return FlowResult(credits, fg_out, bg_out)
