"""Asymmetric Shapley values [Frye, Rowat & Feige 2019].

ASV incorporates causal knowledge by *restricting the permutations* the
Shapley average runs over: only orderings consistent with the causal DAG
(every variable preceded by its ancestors) are allowed. Distal causes
thereby absorb the credit that flows through their descendants. The price,
which the tutorial calls out explicitly, is the symmetry axiom: two
informationally identical features can receive different attributions
purely because of their topological position.

The value function is pluggable; the default is the SCM's interventional
one, and any batched ``v(masks)`` works (e.g. the conditional one from
:mod:`repro.causal.values`, matching the paper's original formulation).

As a game, ASV is a :class:`repro.games.TopologicalGame` — uniform
permutation Shapley with the sampler restricted to linear extensions of
the DAG — run through the shared estimator (``engine=True``, the
default), which adds position-keyed coalition caching: every walk
re-evaluates ∅ and the short prefixes at the same batch positions, and
those now cost a dictionary lookup instead of ``n_samples`` SCM draws.
``engine=False`` keeps the pre-games loop for the parity tests and the
E39 comparison.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import FeatureAttribution
from ..games.adapters import TopologicalGame, sample_topological_order
from ..games.engine import game_value_function
from ..games.estimators import permutation_estimator
from ..obs import instrument_explainer
from .scm import StructuralCausalModel
from .values import interventional_value_function

__all__ = ["sample_topological_permutation", "AsymmetricShapleyExplainer"]


def sample_topological_permutation(
    scm: StructuralCausalModel,
    feature_order: list[str],
    rng: np.random.Generator,
) -> np.ndarray:
    """A random linear extension of the causal DAG over the features.

    Implemented as repeated uniform choice among currently source-like
    features (Kahn's algorithm with random tie-breaking). Only edges among
    the listed features constrain the order. Delegates to the generic
    :func:`repro.games.sample_topological_order`.
    """
    return sample_topological_order(scm.parents, feature_order, rng)


@instrument_explainer
class AsymmetricShapleyExplainer:
    """Shapley values averaged over causally-consistent orderings only."""

    method_name = "asymmetric_shapley"

    def __init__(
        self,
        model,
        scm: StructuralCausalModel,
        feature_order: list[str],
        n_permutations: int = 40,
        n_samples: int = 400,
        value_function: str = "interventional",
        seed: int = 0,
        engine: bool = True,
    ) -> None:
        from ..core.base import as_predict_fn

        self.predict_fn = as_predict_fn(model)
        self.scm = scm
        self.feature_order = list(feature_order)
        self.n_permutations = n_permutations
        self.n_samples = n_samples
        if value_function not in ("interventional",):
            raise ValueError(
                "built-in value functions: 'interventional'; pass a custom "
                "callable via explain(value_fn=...) otherwise"
            )
        self.seed = seed
        self.engine = engine

    def explain(
        self,
        x: np.ndarray,
        feature_names: list[str] | None = None,
        value_fn=None,
    ) -> FeatureAttribution:
        x = np.asarray(x, dtype=float).ravel()
        n = x.shape[0]
        if self.engine:
            return self._explain_games(x, feature_names, value_fn)
        rng = np.random.default_rng(self.seed)
        if value_fn is None:
            value_fn = interventional_value_function(
                self.scm, self.predict_fn, self.feature_order, x,
                n_samples=self.n_samples, seed=self.seed,
            )
        phi = np.zeros(n)
        for __ in range(self.n_permutations):
            perm = sample_topological_permutation(
                self.scm, self.feature_order, rng
            )
            masks = np.zeros((n + 1, n), dtype=bool)
            for pos, player in enumerate(perm):
                masks[pos + 1] = masks[pos]
                masks[pos + 1, player] = True
            values = np.asarray(value_fn(masks), dtype=float)
            phi[perm] += values[1:] - values[:-1]
        phi /= self.n_permutations
        base = float(value_fn(np.zeros((1, n), dtype=bool))[0])
        names = feature_names or self.feature_order
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=float(self.predict_fn(x[None, :])[0]),
            method=self.method_name,
            meta={"n_permutations": self.n_permutations},
        )

    def _explain_games(self, x, feature_names, value_fn) -> FeatureAttribution:
        n = x.shape[0]
        game = TopologicalGame(
            self.scm, self.predict_fn, self.feature_order, x,
            n_samples=self.n_samples, seed=self.seed, value_fn=value_fn,
        )
        est = permutation_estimator(
            game,
            n_permutations=self.n_permutations,
            antithetic=False,
            seed=self.seed,
            aggregate="sum_counts",
        )
        # The interventional value function seeds by batch position, so
        # the base (∅ at position 0) reproduces the legacy value exactly.
        base = float(game_value_function(game)(
            np.zeros((1, n), dtype=bool))[0])
        names = feature_names or self.feature_order
        return FeatureAttribution(
            values=est.values,
            feature_names=names,
            base_value=base,
            prediction=float(self.predict_fn(x[None, :])[0]),
            method=self.method_name,
            meta={"n_permutations": self.n_permutations,
                  "convergence": est.diagnostics},
        )
