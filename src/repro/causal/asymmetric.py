"""Asymmetric Shapley values [Frye, Rowat & Feige 2019].

ASV incorporates causal knowledge by *restricting the permutations* the
Shapley average runs over: only orderings consistent with the causal DAG
(every variable preceded by its ancestors) are allowed. Distal causes
thereby absorb the credit that flows through their descendants. The price,
which the tutorial calls out explicitly, is the symmetry axiom: two
informationally identical features can receive different attributions
purely because of their topological position.

The value function is pluggable; the default is the SCM's interventional
one, and any batched ``v(masks)`` works (e.g. the conditional one from
:mod:`repro.causal.values`, matching the paper's original formulation).
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import FeatureAttribution
from ..obs import instrument_explainer
from .scm import StructuralCausalModel
from .values import interventional_value_function

__all__ = ["sample_topological_permutation", "AsymmetricShapleyExplainer"]


def sample_topological_permutation(
    scm: StructuralCausalModel,
    feature_order: list[str],
    rng: np.random.Generator,
) -> np.ndarray:
    """A random linear extension of the causal DAG over the features.

    Implemented as repeated uniform choice among currently source-like
    features (Kahn's algorithm with random tie-breaking). Only edges among
    the listed features constrain the order.
    """
    index = {name: j for j, name in enumerate(feature_order)}
    remaining_parents = {
        name: {p for p in scm.parents(name) if p in index}
        for name in feature_order
    }
    available = [name for name, ps in remaining_parents.items() if not ps]
    order: list[int] = []
    placed: set[str] = set()
    while available:
        pick = available.pop(rng.integers(0, len(available)))
        order.append(index[pick])
        placed.add(pick)
        for name in feature_order:
            if name in placed or name in available:
                continue
            if remaining_parents[name] <= placed:
                available.append(name)
    if len(order) != len(feature_order):
        raise RuntimeError("DAG over the features is not acyclic")
    return np.asarray(order)


@instrument_explainer
class AsymmetricShapleyExplainer:
    """Shapley values averaged over causally-consistent orderings only."""

    method_name = "asymmetric_shapley"

    def __init__(
        self,
        model,
        scm: StructuralCausalModel,
        feature_order: list[str],
        n_permutations: int = 40,
        n_samples: int = 400,
        value_function: str = "interventional",
        seed: int = 0,
    ) -> None:
        from ..core.base import as_predict_fn

        self.predict_fn = as_predict_fn(model)
        self.scm = scm
        self.feature_order = list(feature_order)
        self.n_permutations = n_permutations
        self.n_samples = n_samples
        if value_function not in ("interventional",):
            raise ValueError(
                "built-in value functions: 'interventional'; pass a custom "
                "callable via explain(value_fn=...) otherwise"
            )
        self.seed = seed

    def explain(
        self,
        x: np.ndarray,
        feature_names: list[str] | None = None,
        value_fn=None,
    ) -> FeatureAttribution:
        x = np.asarray(x, dtype=float).ravel()
        n = x.shape[0]
        rng = np.random.default_rng(self.seed)
        if value_fn is None:
            value_fn = interventional_value_function(
                self.scm, self.predict_fn, self.feature_order, x,
                n_samples=self.n_samples, seed=self.seed,
            )
        phi = np.zeros(n)
        for __ in range(self.n_permutations):
            perm = sample_topological_permutation(
                self.scm, self.feature_order, rng
            )
            masks = np.zeros((n + 1, n), dtype=bool)
            for pos, player in enumerate(perm):
                masks[pos + 1] = masks[pos]
                masks[pos + 1, player] = True
            values = np.asarray(value_fn(masks), dtype=float)
            phi[perm] += values[1:] - values[:-1]
        phi /= self.n_permutations
        base = float(value_fn(np.zeros((1, n), dtype=bool))[0])
        names = feature_names or self.feature_order
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=float(self.predict_fn(x[None, :])[0]),
            method=self.method_name,
            meta={"n_permutations": self.n_permutations},
        )
