"""Structural causal models over a networkx DAG.

An :class:`StructuralCausalModel` is a set of assignments
``X_v := f_v(parents(v), U_v)`` with independent exogenous noise ``U_v``.
It supports

* observational sampling,
* hard interventions ``do(X = x)`` (graph surgery: the intervened node's
  mechanism is replaced by the constant),
* conditional sampling by rejection, used by conditional/causal Shapley
  value functions and by the LEWIS necessity/sufficiency scores.

Mechanisms are plain callables ``f(parent_values, noise) -> value`` drawing
vectorized samples; noise generators are callables ``g(rng, n) -> array``.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx
import numpy as np

__all__ = ["StructuralCausalModel", "linear_mechanism"]

Mechanism = Callable[[dict[str, np.ndarray], np.ndarray], np.ndarray]
NoiseSampler = Callable[[np.random.Generator, int], np.ndarray]


def linear_mechanism(weights: dict[str, float], intercept: float = 0.0) -> Mechanism:
    """Build the linear assignment ``Σ w_p · parent_p + intercept + noise``."""

    def mechanism(parents: dict[str, np.ndarray], noise: np.ndarray) -> np.ndarray:
        out = np.full_like(noise, intercept, dtype=float)
        for parent, weight in weights.items():
            out += weight * parents[parent]
        return out + noise

    return mechanism


class StructuralCausalModel:
    """A DAG of structural assignments with independent exogenous noise."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self._mechanisms: dict[str, Mechanism] = {}
        self._noises: dict[str, NoiseSampler] = {}

    def add_variable(
        self,
        name: str,
        parents: list[str],
        mechanism: Mechanism,
        noise: NoiseSampler | None = None,
    ) -> "StructuralCausalModel":
        """Register ``name := mechanism(parents, noise)``.

        Parents must already be registered, which forces callers to declare
        variables in a topological order and keeps the graph acyclic by
        construction.
        """
        if name in self._mechanisms:
            raise ValueError(f"variable {name!r} already defined")
        for parent in parents:
            if parent not in self._mechanisms:
                raise ValueError(
                    f"parent {parent!r} of {name!r} is not defined yet"
                )
        self.graph.add_node(name)
        for parent in parents:
            self.graph.add_edge(parent, name)
        self._mechanisms[name] = mechanism
        self._noises[name] = noise or (lambda rng, n: np.zeros(n))
        return self

    @property
    def variables(self) -> list[str]:
        """All variables in a fixed topological order."""
        return list(nx.topological_sort(self.graph))

    def parents(self, name: str) -> list[str]:
        return sorted(self.graph.predecessors(name))

    def topological_index(self) -> dict[str, int]:
        """Position of each variable in the topological order."""
        return {v: i for i, v in enumerate(self.variables)}

    # -- sampling ---------------------------------------------------------------

    def sample(
        self,
        n: int,
        seed: int | None = 0,
        interventions: dict[str, float | np.ndarray] | None = None,
        rng: np.random.Generator | None = None,
        return_noise: bool = False,
    ):
        """Draw ``n`` joint samples, optionally under ``do()`` interventions.

        ``interventions`` maps variable names to constants (or length-``n``
        arrays); intervened variables ignore their mechanism entirely,
        implementing graph surgery. With ``return_noise`` the exogenous
        draws are returned alongside the values, enabling exact
        counterfactual replay via :meth:`counterfactual`.
        """
        rng = rng or np.random.default_rng(seed)
        interventions = interventions or {}
        values: dict[str, np.ndarray] = {}
        noises: dict[str, np.ndarray] = {}
        for name in self.variables:
            noises[name] = self._noises[name](rng, n)
            if name in interventions:
                forced = interventions[name]
                values[name] = np.broadcast_to(
                    np.asarray(forced, dtype=float), (n,)
                ).copy()
                continue
            parent_values = {p: values[p] for p in self.graph.predecessors(name)}
            values[name] = np.asarray(
                self._mechanisms[name](parent_values, noises[name]), dtype=float
            )
        if return_noise:
            return values, noises
        return values

    def counterfactual(
        self,
        noise: dict[str, np.ndarray],
        interventions: dict[str, float | np.ndarray] | None = None,
    ) -> dict[str, np.ndarray]:
        """Replay stored exogenous noise under an intervention.

        This is the twin-network counterfactual: the abduction step is
        exact because the caller supplies the very noise that generated
        the factual units (from ``sample(..., return_noise=True)``).
        """
        interventions = interventions or {}
        n = next(iter(noise.values())).shape[0]
        values: dict[str, np.ndarray] = {}
        for name in self.variables:
            if name in interventions:
                forced = interventions[name]
                values[name] = np.broadcast_to(
                    np.asarray(forced, dtype=float), (n,)
                ).copy()
                continue
            parent_values = {p: values[p] for p in self.graph.predecessors(name)}
            values[name] = np.asarray(
                self._mechanisms[name](parent_values, noise[name]), dtype=float
            )
        return values

    def sample_matrix(
        self,
        n: int,
        order: list[str],
        seed: int | None = 0,
        interventions: dict[str, float | np.ndarray] | None = None,
    ) -> np.ndarray:
        """Sample and stack the given variables into an ``(n, len(order))`` matrix."""
        values = self.sample(n, seed=seed, interventions=interventions)
        return np.column_stack([values[v] for v in order])

    def conditional_sample(
        self,
        n: int,
        conditions: dict[str, float],
        tolerance: dict[str, float] | None = None,
        seed: int | None = 0,
        max_batches: int = 200,
        batch_size: int = 4096,
    ) -> dict[str, np.ndarray]:
        """Rejection-sample from P(· | conditions).

        Numeric conditions accept values within ``tolerance[name]``
        (default: 0.25 of the variable's marginal std). Raises if the
        acceptance region is never hit within the batch budget.
        """
        rng = np.random.default_rng(seed)
        if tolerance is None:
            marginal = self.sample(2048, seed=seed)
            tolerance = {
                name: max(0.25 * float(np.std(marginal[name])), 1e-9)
                for name in conditions
            }
        accepted: dict[str, list[np.ndarray]] = {v: [] for v in self.variables}
        total = 0
        for __ in range(max_batches):
            batch = self.sample(batch_size, rng=rng, seed=None)
            mask = np.ones(batch_size, dtype=bool)
            for name, target in conditions.items():
                mask &= np.abs(batch[name] - target) <= tolerance[name]
            if mask.any():
                for v in self.variables:
                    accepted[v].append(batch[v][mask])
                total += int(mask.sum())
            if total >= n:
                break
        if total == 0:
            raise RuntimeError(
                f"rejection sampling never matched conditions {conditions}"
            )
        return {v: np.concatenate(accepted[v])[:n] for v in self.variables}
