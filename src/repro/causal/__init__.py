"""Causal explanation methods (§2.1.3)."""

from .asymmetric import AsymmetricShapleyExplainer, sample_topological_permutation
from .causal_shapley import CausalShapleyExplainer
from .cxplain import CXPlainExplainer, granger_attributions
from .necessity import CounterfactualScores, LewisExplainer
from .scm import StructuralCausalModel, linear_mechanism
from .shapley_flow import FlowResult, ShapleyFlowExplainer
from .values import conditional_value_function, interventional_value_function

__all__ = [
    "StructuralCausalModel",
    "linear_mechanism",
    "interventional_value_function",
    "conditional_value_function",
    "CausalShapleyExplainer",
    "CXPlainExplainer",
    "granger_attributions",
    "AsymmetricShapleyExplainer",
    "sample_topological_permutation",
    "ShapleyFlowExplainer",
    "FlowResult",
    "LewisExplainer",
    "CounterfactualScores",
]
