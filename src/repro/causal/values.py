"""Interventional coalition value functions backed by an SCM.

Marginal (Kernel SHAP's), conditional-by-observation, and interventional
``do()`` value functions all answer "what is the expected model output
when only coalition S is known?", but disagree once features are
dependent — the disagreement the tutorial's causal section (§2.1.3) is
about, and what experiment E10 measures. This module builds the
``do``-based value function

    v(S) = E[f(X) | do(X_S = x_S)]

from a :class:`StructuralCausalModel` in the batched convention the rest
of the Shapley code consumes.
"""

from __future__ import annotations

import numpy as np

from .scm import StructuralCausalModel

__all__ = ["interventional_value_function", "conditional_value_function"]


def interventional_value_function(
    scm: StructuralCausalModel,
    predict_fn,
    feature_order: list[str],
    x: np.ndarray,
    n_samples: int = 500,
    seed: int = 0,
):
    """Batched v(S) = E[f(X) | do(X_S = x_S)] under the SCM.

    Parameters
    ----------
    feature_order:
        The SCM variables corresponding to model input columns, in column
        order. Variables outside this list (e.g. the target) are sampled
        but not fed to the model.
    """
    x = np.asarray(x, dtype=float).ravel()
    if len(feature_order) != x.shape[0]:
        raise ValueError("feature_order does not match the instance width")

    def v(masks: np.ndarray, positions: np.ndarray | None = None) -> np.ndarray:
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        out = np.zeros(masks.shape[0])
        for row, mask in enumerate(masks):
            interventions = {
                feature_order[j]: float(x[j])
                for j in range(len(feature_order))
                if mask[j]
            }
            # The SCM draw is seeded by the row's position in the batch,
            # so v is a deterministic function of (position, mask) — the
            # property the games evaluator's position-keyed cache relies
            # on. ``positions`` lets a caller restore the original batch
            # positions after chunking or deduplication.
            pos = row if positions is None else int(positions[row])
            values = scm.sample(
                n_samples, seed=seed + pos, interventions=interventions
            )
            X = np.column_stack([values[name] for name in feature_order])
            out[row] = float(np.mean(predict_fn(X)))
        return out

    v.supports_positions = True
    return v


def conditional_value_function(
    scm: StructuralCausalModel,
    predict_fn,
    feature_order: list[str],
    x: np.ndarray,
    n_samples: int = 300,
    seed: int = 0,
):
    """Batched v(S) = E[f(X) | X_S = x_S] by rejection sampling.

    The observational ("on-manifold") value function used by conditional
    SHAP and asymmetric Shapley values. Conditioning is approximate:
    acceptance windows default to a quarter of each variable's marginal
    standard deviation (see :meth:`StructuralCausalModel.conditional_sample`).
    """
    x = np.asarray(x, dtype=float).ravel()

    def v(masks: np.ndarray) -> np.ndarray:
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        out = np.zeros(masks.shape[0])
        for row, mask in enumerate(masks):
            conditions = {
                feature_order[j]: float(x[j])
                for j in range(len(feature_order))
                if mask[j]
            }
            if conditions:
                values = scm.conditional_sample(
                    n_samples, conditions, seed=seed + row
                )
            else:
                values = scm.sample(n_samples, seed=seed + row)
            X = np.column_stack([values[name] for name in feature_order])
            # Conditioned coordinates are pinned exactly (the window is an
            # acceptance region, not the intended evaluation point).
            for j in range(len(feature_order)):
                if mask[j]:
                    X[:, j] = x[j]
            out[row] = float(np.mean(predict_fn(X)))
        return out

    return v
