"""LEWIS: probabilistic contrastive counterfactual scores [Galhotra,
Pradhan & Salimi 2021] and the necessity/sufficiency framework of Watson
et al. (2021).

LEWIS explains a black-box algorithm with counterfactual probabilities
computed on a structural causal model:

* **Necessity** — for units that received the positive outcome with
  attribute value a: would the outcome have been negative had the
  attribute been a'?  P(o_{A←a'} = 0 | A = a, o = 1).
* **Sufficiency** — for units that received the negative outcome with
  attribute a': would setting A ← a have produced the positive outcome?
  P(o_{A←a} = 1 | A = a', o = 0).
* **Necessity-and-sufficiency** — over all units: P(o_{A←a} = 1 ∧
  o_{A←a'} = 0).

Counterfactuals are evaluated exactly by *noise replay*: the SCM samples
units together with their exogenous noise, interventions re-propagate the
same noise (twin-network semantics), so no abduction approximation enters.
The scores drive both global explanations (ranking attributes) and
LEWIS-style recourse (which attainable intervention maximizes the
sufficiency of flipping *your* outcome).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scm import StructuralCausalModel

__all__ = ["CounterfactualScores", "LewisExplainer"]


@dataclass(frozen=True)
class CounterfactualScores:
    """Necessity / sufficiency / necessity-and-sufficiency of one contrast."""

    attribute: str
    value: float
    contrast_value: float
    necessity: float
    sufficiency: float
    necessity_sufficiency: float
    n_units: int


class LewisExplainer:
    """Population-level contrastive counterfactual scores for a model.

    Parameters
    ----------
    model:
        The black box whose positive decisions are explained; normalized
        to a score in [0, 1] and thresholded.
    scm:
        Generative causal model of the features.
    feature_order:
        SCM variable names in model-column order.
    n_units:
        Number of SCM units (with noise) the scores are estimated on.
    """

    method_name = "lewis"

    def __init__(
        self,
        model,
        scm: StructuralCausalModel,
        feature_order: list[str],
        n_units: int = 2000,
        threshold: float = 0.5,
        seed: int = 0,
    ) -> None:
        from ..core.base import as_predict_fn

        self.predict_fn = as_predict_fn(model)
        self.scm = scm
        self.feature_order = list(feature_order)
        self.threshold = threshold
        self.n_units = n_units
        self.seed = seed
        self._values, self._noise = scm.sample(
            n_units, seed=seed, return_noise=True
        )
        self._outcomes = self._decide(self._values)

    def _decide(self, values: dict[str, np.ndarray]) -> np.ndarray:
        X = np.column_stack([values[name] for name in self.feature_order])
        return (self.predict_fn(X) >= self.threshold).astype(int)

    def _counterfactual_outcomes(self, attribute: str, value: float) -> np.ndarray:
        twin = self.scm.counterfactual(self._noise, {attribute: value})
        return self._decide(twin)

    def scores(
        self,
        attribute: str,
        value: float,
        contrast_value: float,
        unit_mask: np.ndarray | None = None,
    ) -> CounterfactualScores:
        """Compute NeС/SuF/NeSuF for the contrast ``value`` vs ``contrast_value``.

        ``unit_mask`` optionally restricts the population (e.g. a
        subgroup); necessity additionally conditions on A ≈ value and a
        positive factual outcome, sufficiency on A ≉ value and a negative
        one, following the paper.
        """
        if attribute not in self.feature_order:
            raise KeyError(f"{attribute!r} is not a model feature")
        if unit_mask is None:
            unit_mask = np.ones(self.n_units, dtype=bool)
        col = self._values[attribute]
        spread = max(float(np.std(col)), 1e-9)
        has_value = np.abs(col - value) <= 0.25 * spread
        out_contrast = self._counterfactual_outcomes(attribute, contrast_value)
        out_value = self._counterfactual_outcomes(attribute, value)

        nec_pool = unit_mask & has_value & (self._outcomes == 1)
        necessity = (
            float(np.mean(out_contrast[nec_pool] == 0)) if nec_pool.any() else 0.0
        )
        suf_pool = unit_mask & ~has_value & (self._outcomes == 0)
        sufficiency = (
            float(np.mean(out_value[suf_pool] == 1)) if suf_pool.any() else 0.0
        )
        nesuf = float(np.mean((out_value == 1) & (out_contrast == 0)))
        return CounterfactualScores(
            attribute=attribute,
            value=value,
            contrast_value=contrast_value,
            necessity=necessity,
            sufficiency=sufficiency,
            necessity_sufficiency=nesuf,
            n_units=int(unit_mask.sum()),
        )

    def rank_attributes(self, contrasts: dict[str, tuple[float, float]]
                        ) -> list[CounterfactualScores]:
        """Score several attribute contrasts and sort by NeSuF descending.

        ``contrasts`` maps attribute name to ``(value, contrast_value)``.
        This is LEWIS's global explanation: which attributes are most
        necessary-and-sufficient for the model's decisions.
        """
        scored = [
            self.scores(attr, value, contrast)
            for attr, (value, contrast) in contrasts.items()
        ]
        return sorted(scored, key=lambda s: -s.necessity_sufficiency)

    def recourse_options(
        self,
        unit_values: dict[str, float],
        candidate_interventions: dict[str, list[float]],
    ) -> list[tuple[str, float, float]]:
        """LEWIS recourse: rank attainable interventions by flip probability.

        For a negatively-decided individual, estimate for each candidate
        intervention the probability that applying it flips similar units
        (units whose features match the individual's within tolerance) to
        the positive side, via noise replay over the matched subpopulation.
        Returns ``(attribute, value, flip_probability)`` sorted best-first.
        """
        mask = np.ones(self.n_units, dtype=bool)
        for name, value in unit_values.items():
            col = self._values[name]
            spread = max(float(np.std(col)), 1e-9)
            mask &= np.abs(col - value) <= 0.5 * spread
        mask &= self._outcomes == 0
        options: list[tuple[str, float, float]] = []
        for attribute, values in candidate_interventions.items():
            for value in values:
                out = self._counterfactual_outcomes(attribute, value)
                flip = float(np.mean(out[mask] == 1)) if mask.any() else 0.0
                options.append((attribute, float(value), flip))
        return sorted(options, key=lambda o: -o[2])
