"""Stage-level blame for model errors, via provenance + interventions.

Closes the loop the tutorial sketches in §3: data-based explanations
(influence functions, data Shapley) point at *training rows*; provenance
lifts that to *pipeline stages*; stage ablation then verifies the blame
causally.

Two complementary scores per stage:

* **provenance blame** — how concentrated the harmful rows (as ranked by
  a data-attribution method) are among the rows the stage modified:
  the harmful-row rate among modified rows over the base rate (a lift).
* **intervention blame** — the model-quality change from re-running the
  pipeline with the stage ablated, the causal ground truth.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import TabularDataset
from ..core.explanation import DataAttribution
from .pipeline import ProvenancePipeline, RowProvenance

__all__ = ["provenance_blame", "intervention_blame"]


def provenance_blame(
    provenance: list[RowProvenance],
    attribution: DataAttribution,
    stage_names: list[str],
    harmful_quantile: float = 0.1,
) -> dict[str, float]:
    """Lift of harmful rows among each stage's modified rows.

    ``attribution`` scores the pipeline's *output* rows (lower = more
    harmful, the convention of every valuation method here). A stage
    whose modified rows are disproportionately harmful gets lift > 1.
    """
    values = attribution.values
    if len(values) != len(provenance):
        raise ValueError("attribution does not match provenance length")
    n_harmful = max(1, int(round(harmful_quantile * len(values))))
    harmful = set(np.argsort(values)[:n_harmful].tolist())
    base_rate = len(harmful) / len(values)
    blame: dict[str, float] = {}
    for stage in stage_names:
        modified = [
            i for i, record in enumerate(provenance)
            if stage in record.modified_by
        ]
        if not modified:
            blame[stage] = 0.0
            continue
        rate = sum(1 for i in modified if i in harmful) / len(modified)
        blame[stage] = rate / base_rate
    return blame


def intervention_blame(
    pipeline: ProvenancePipeline,
    raw_data: TabularDataset,
    model_factory,
    X_test: np.ndarray,
    y_test: np.ndarray,
) -> dict[str, float]:
    """Causal stage blame: test-accuracy gain from ablating each stage.

    Positive blame means the pipeline is *better off without* the stage —
    the stage is hurting the model.
    """
    full_output, __, __ = pipeline.run(raw_data)
    full_model = model_factory().fit(full_output.X, full_output.y)
    full_score = full_model.score(X_test, y_test)
    blame: dict[str, float] = {}
    for stage in pipeline.stages:
        ablated = pipeline.run_without(raw_data, stage.name)
        model = model_factory().fit(ablated.X, ablated.y)
        blame[stage.name] = float(model.score(X_test, y_test) - full_score)
    return blame
