"""Provenance-tracked data-prep pipelines and stage blame (§3)."""

from .blame import intervention_blame, provenance_blame
from .pipeline import ProvenancePipeline, RowProvenance, Stage, StageReport

__all__ = [
    "Stage",
    "StageReport",
    "RowProvenance",
    "ProvenancePipeline",
    "provenance_blame",
    "intervention_blame",
]
