"""Provenance-tracked ML data-preparation pipelines.

Section 3's "Provenance-Based Explanations" direction: training-data
errors are often *introduced or exacerbated by preparation stages*, so
holding stages accountable requires tracking each row's journey through
the pipeline. A :class:`ProvenancePipeline` is a sequence of named stages
over a :class:`TabularDataset`; running it records, per output row,

* which input row it descends from (row-level where-provenance), and
* which stages *modified* it (transformation provenance).

Stage callables receive and return ``(X, y)`` plus a boolean keep-mask
and a modified-mask, via the small :class:`Stage` adapter zoo below
(filters, imputers, per-row transforms, label editors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.dataset import TabularDataset

__all__ = ["Stage", "StageReport", "ProvenancePipeline", "RowProvenance"]


@dataclass
class Stage:
    """One pipeline stage.

    ``transform(X, y) -> (X', y', keep_mask, modified_mask)`` where masks
    are over the *input* rows of the stage: ``keep_mask`` marks survivors
    (X'/y' contain exactly those rows, in order), ``modified_mask`` marks
    rows whose features or label the stage changed.
    """

    name: str
    transform: Callable

    @staticmethod
    def filter_rows(name: str, predicate: Callable[[np.ndarray], np.ndarray]
                    ) -> "Stage":
        """Keep rows where ``predicate(X)`` (vectorized) is true."""

        def run(X, y):
            keep = np.asarray(predicate(X), dtype=bool)
            return X[keep], y[keep], keep, np.zeros(X.shape[0], dtype=bool)

        return Stage(name, run)

    @staticmethod
    def map_rows(name: str, fn: Callable[[np.ndarray], np.ndarray]) -> "Stage":
        """Rewrite the feature matrix; rows differing from input count as
        modified."""

        def run(X, y):
            X_new = np.asarray(fn(X.copy()), dtype=float)
            modified = ~np.all(np.isclose(X_new, X), axis=1)
            keep = np.ones(X.shape[0], dtype=bool)
            return X_new, y, keep, modified

        return Stage(name, run)

    @staticmethod
    def relabel(name: str, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
                ) -> "Stage":
        """Rewrite labels via ``fn(X, y) -> y'``."""

        def run(X, y):
            y_new = np.asarray(fn(X, y.copy()))
            modified = y_new != y
            keep = np.ones(X.shape[0], dtype=bool)
            return X, y_new, keep, modified

        return Stage(name, run)


@dataclass
class StageReport:
    """What one stage did during a run."""

    name: str
    n_in: int
    n_out: int
    n_modified: int


@dataclass
class RowProvenance:
    """Journey of one *output* row through the pipeline."""

    source_row: int
    modified_by: list[str] = field(default_factory=list)


class ProvenancePipeline:
    """Run stages over a dataset while recording row-level provenance."""

    def __init__(self, stages: list[Stage]) -> None:
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError("stage names must be unique")
        self.stages = list(stages)

    def run(self, data: TabularDataset
            ) -> tuple[TabularDataset, list[RowProvenance], list[StageReport]]:
        """Execute the pipeline.

        Returns the output dataset, per-output-row provenance, and
        per-stage reports.
        """
        X = data.X.copy()
        y = data.y.copy()
        provenance = [RowProvenance(i) for i in range(data.n_samples)]
        reports: list[StageReport] = []
        for stage in self.stages:
            X_new, y_new, keep, modified = stage.transform(X, y)
            keep = np.asarray(keep, dtype=bool)
            modified = np.asarray(modified, dtype=bool)
            if X_new.shape[0] != int(keep.sum()):
                raise ValueError(
                    f"stage {stage.name!r}: output rows do not match keep mask"
                )
            surviving: list[RowProvenance] = []
            for i in np.where(keep)[0]:
                record = provenance[i]
                if modified[i]:
                    record.modified_by.append(stage.name)
                surviving.append(record)
            reports.append(StageReport(
                stage.name, X.shape[0], X_new.shape[0], int(modified.sum())
            ))
            X, y, provenance = X_new, y_new, surviving
        output = TabularDataset(X, y, list(data.features), data.target_name)
        return output, provenance, reports

    def run_without(self, data: TabularDataset, stage_name: str
                    ) -> TabularDataset:
        """Ablate one stage and re-run — the intervention used for blame."""
        remaining = [s for s in self.stages if s.name != stage_name]
        if len(remaining) == len(self.stages):
            raise KeyError(f"no stage named {stage_name!r}")
        output, __, __ = ProvenancePipeline(remaining).run(data)
        return output
