"""Per-model circuit breaker fed by the ``repro.robust`` error types.

A model that fails every call is worse than a slow one: each doomed
request still burns its full retry budget, an execution slot, and a
client's patience. The breaker turns a persistently failing endpoint
into a fast, honest refusal:

* **closed** (healthy): requests pass; each
  :class:`~repro.robust.ModelEvaluationError` (the guard's verdict that
  the model itself failed — retries exhausted, NaN output, wrong shape)
  increments a consecutive-failure count, and any success resets it.
  Budget and validation errors do *not* count: a deadline miss is load,
  not model sickness.
* **open**: after ``threshold`` consecutive failures the breaker trips.
  Every request is refused with
  :class:`~repro.serve.errors.BreakerOpenError` (HTTP 503,
  ``Retry-After`` = cooldown remainder) without touching the model.
* **half-open**: once the cooldown elapses, exactly **one** probe
  request is allowed through; concurrent requests keep getting the
  open-circuit refusal. A successful probe closes the breaker; a failed
  probe re-opens it for a fresh cooldown.

Counters: ``serve.breaker.opened`` / ``serve.breaker.closed`` /
``serve.breaker.probes`` / ``serve.breaker.rejected``.
"""

from __future__ import annotations

import threading
import time

from ..obs import metrics
from ..robust.errors import ModelEvaluationError
from .errors import BreakerOpenError

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open single-probe recovery."""

    def __init__(self, endpoint: str, threshold: int = 5,
                 cooldown_s: float = 5.0) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.endpoint = endpoint
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def peek(self) -> None:
        """Fast-fail check that never takes the half-open probe slot.

        The server calls this at request arrival, *before* coalescing
        and admission, so an open circuit refuses in microseconds
        instead of after a queue wait. Open-with-cooldown-elapsed
        passes (the post-admission :meth:`allow` will run the probe).
        """
        with self._lock:
            if self._state != OPEN:
                return
            elapsed = time.monotonic() - self._opened_at
            if elapsed < self.cooldown_s:
                metrics.counter("serve.breaker.rejected").inc()
                raise BreakerOpenError(
                    f"circuit open for model {self.endpoint!r} "
                    f"({self._consecutive_failures} consecutive failures)",
                    retry_after_s=self.cooldown_s - elapsed,
                )

    def allow(self) -> None:
        """Gate one request; raises :class:`BreakerOpenError` when open.

        In half-open state the first caller wins the probe slot; the
        caller *must* then report the attempt via :meth:`record_success`
        / :meth:`record_failure` (the server does so in a ``finally``-
        adjacent path) or the probe slot would leak.
        """
        with self._lock:
            if self._state == CLOSED:
                return
            now = time.monotonic()
            if self._state == OPEN:
                elapsed = now - self._opened_at
                if elapsed < self.cooldown_s:
                    metrics.counter("serve.breaker.rejected").inc()
                    raise BreakerOpenError(
                        f"circuit open for model {self.endpoint!r} "
                        f"({self._consecutive_failures} consecutive "
                        "failures)",
                        retry_after_s=self.cooldown_s - elapsed,
                    )
                self._state = HALF_OPEN
                self._probe_inflight = False
            # Half-open: exactly one probe at a time.
            if self._probe_inflight:
                metrics.counter("serve.breaker.rejected").inc()
                raise BreakerOpenError(
                    f"circuit half-open for model {self.endpoint!r}; "
                    "a probe is already in flight",
                    retry_after_s=self.cooldown_s,
                )
            self._probe_inflight = True
            metrics.counter("serve.breaker.probes").inc()

    def record_success(self) -> None:
        """A model call succeeded: close the circuit, reset the count."""
        with self._lock:
            if self._state != CLOSED:
                metrics.counter("serve.breaker.closed").inc()
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probe_inflight = False

    def record_failure(self, error: BaseException) -> None:
        """Account one failed computation; trips or re-opens the circuit.

        Only :class:`ModelEvaluationError` (and subclasses) count — the
        guard raises it when the model, not the request, is at fault.
        """
        if not isinstance(error, ModelEvaluationError):
            with self._lock:
                # A non-model failure still ends a half-open probe; the
                # model neither proved nor disproved itself, so return
                # to open and let the next cooldown retry.
                if self._state == HALF_OPEN:
                    self._state = OPEN
                    self._opened_at = time.monotonic()
                    self._probe_inflight = False
            return
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.threshold
            ):
                self._state = OPEN
                self._opened_at = time.monotonic()
                self._probe_inflight = False
                metrics.counter("serve.breaker.opened").inc()
