"""Admission control: a bounded queue in front of a fixed worker budget.

The server accepts connections freely (``ThreadingHTTPServer`` gives
each one a thread), but *computation* is rationed: at most
``max_inflight`` explanations run at once, and at most ``queue_limit``
requests may wait for a slot. Everything beyond that is refused
immediately — the two refusals are deliberately different:

* **queue full** → :class:`~repro.serve.errors.QueueFullError` (HTTP
  429), raised without sleeping a single millisecond. A full queue
  means the server is already behind; the kindest thing to do with the
  marginal request is to bounce it with a ``Retry-After`` hint while it
  still has its whole client-side budget left to retry elsewhere.
* **queue timeout** → :class:`~repro.serve.errors.AdmissionTimeoutError`
  (HTTP 503): the request waited its turn, but no slot freed within its
  *remaining* deadline. The wait is bounded by the request budget, so a
  queued request can never hang past the deadline it advertised.

Telemetry: ``serve.admitted`` / ``serve.rejected.queue_full`` /
``serve.rejected.timeout`` counters, ``serve.queue.depth`` /
``serve.inflight`` gauges (sampled on every transition), and the
``serve.queue.wait_ms`` histogram — the ladder reads the depth gauge's
underlying count as its pressure signal.
"""

from __future__ import annotations

import contextlib
import threading

from ..obs import metrics
from .errors import AdmissionTimeoutError, QueueFullError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Counting-semaphore admission with a bounded, deadline-aware queue."""

    def __init__(self, max_inflight: int, queue_limit: int,
                 retry_after_s: float = 1.0) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = int(max_inflight)
        self.queue_limit = max(0, int(queue_limit))
        self.retry_after_s = float(retry_after_s)
        self._slots = threading.Semaphore(self.max_inflight)
        self._lock = threading.Lock()
        self._waiting = 0
        self._inflight = 0

    # -- introspection -----------------------------------------------------

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        with self._lock:
            return self._waiting

    @property
    def inflight(self) -> int:
        """Requests currently holding an execution slot."""
        with self._lock:
            return self._inflight

    def queue_fraction(self) -> float:
        """Queue occupancy in [0, 1] — the ladder's load signal."""
        if self.queue_limit == 0:
            return 0.0
        with self._lock:
            return min(1.0, self._waiting / self.queue_limit)

    def _gauges(self) -> None:
        metrics.gauge("serve.queue.depth").set(self._waiting)
        metrics.gauge("serve.inflight").set(self._inflight)

    # -- the admission protocol --------------------------------------------

    @contextlib.contextmanager
    def admit(self, timeout_s: float):
        """Hold one execution slot for the ``with`` block.

        ``timeout_s`` is the request's remaining budget: the queue wait
        is capped by it, so deadline spent queueing is deadline the
        compute phase no longer has (the caller re-derives the remainder
        after admission). Raises :class:`QueueFullError` without
        waiting when the queue is at capacity, and
        :class:`AdmissionTimeoutError` when the wait times out.
        """
        # Fast path: a free slot admits immediately, whatever the queue
        # capacity (queue_limit=0 means "no waiting", not "no serving").
        acquired = self._slots.acquire(blocking=False)
        queued = False
        if not acquired:
            with self._lock:
                if self._waiting >= self.queue_limit:
                    metrics.counter("serve.rejected.queue_full").inc()
                    raise QueueFullError(
                        f"request queue full ({self._waiting} waiting, "
                        f"limit {self.queue_limit})",
                        retry_after_s=self.retry_after_s,
                    )
                self._waiting += 1
                queued = True
                self._gauges()
        try:
            if not acquired:
                try:
                    with metrics.observe_duration("serve.queue.wait_ms"):
                        acquired = self._slots.acquire(
                            timeout=max(0.0, timeout_s)
                        )
                finally:
                    with self._lock:
                        self._waiting -= 1
                        queued = False
                        self._gauges()
                if not acquired:
                    metrics.counter("serve.rejected.timeout").inc()
                    raise AdmissionTimeoutError(
                        f"no execution slot within {timeout_s:.3f}s "
                        f"({self.max_inflight} inflight, "
                        f"{self.waiting} still queued)",
                        retry_after_s=self.retry_after_s,
                    )
            with self._lock:
                self._inflight += 1
                self._gauges()
            metrics.counter("serve.admitted").inc()
            yield self
        finally:
            if queued:
                with self._lock:
                    self._waiting -= 1
                    self._gauges()
            if acquired:
                with self._lock:
                    self._inflight -= 1
                    self._gauges()
                self._slots.release()
