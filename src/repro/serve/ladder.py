"""The load-shedding degradation ladder: exact → sampling → surrogate.

"Understanding User Preferences in XAI" (PAPERS.md) motivates letting
each request choose its explainer; under overload that same choice is
the service's relief valve. Rather than queueing requests it cannot
serve in time (or bouncing them outright), the ladder substitutes a
cheaper explainer and *says so* in the response ``meta`` — a degraded
answer a client can see is degraded beats a timeout every time.

Tiers, cheapest last::

    exact      exhaustive Shapley enumeration (2^n coalitions)
    sampling   permutation-sampling Shapley; the per-request
               n_permutations budget itself shrinks with pressure
    surrogate  a local LIME fit — one linear regression's worth of
               model queries

The pressure signal combines the two things the service can observe
about itself (both already maintained by :mod:`repro.obs`):

* **queue occupancy** — ``waiting / queue_limit`` from the admission
  controller, the leading indicator;
* **latency headroom** — recent p95 of ``serve.compute_ms`` (the
  quantile-histogram readout) against the default request deadline, the
  trailing indicator that catches a slow model before the queue fills.

``pressure = max(queue_fraction, p95_fraction)``, then::

    pressure < degrade_pressure   honor the requested tier
    pressure < shed_pressure      degrade one tier below the request,
                                  and scale the sampling budget down
    otherwise                     cheapest tier only (surrogate)

Explicit tier requests are never *upgraded*: a client asking for
``surrogate`` gets surrogate at any load. ``tier="auto"`` starts from
the endpoint's best available tier. Degradations count
``serve.shed.degraded``; the chosen rung is recorded on every response
(``meta.tier`` / ``meta.requested_tier`` / ``meta.degraded``).
"""

from __future__ import annotations

from ..obs import metrics
from ..robust.errors import InputValidationError
from .config import ServeConfig

__all__ = ["TIERS", "DegradationLadder"]

# Order matters: index 0 is the most faithful, last is the cheapest.
TIERS: tuple[str, ...] = ("exact", "sampling", "surrogate")


class DegradationLadder:
    """Chooses the served tier (and budget) from load and the request."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config

    # -- the pressure signal ----------------------------------------------

    def pressure(self, queue_fraction: float) -> float:
        """Combined load signal in [0, 1]."""
        p95_fraction = 0.0
        h = metrics.histogram("serve.compute_ms")
        if h.count >= 8:  # too few samples and p95 is folklore
            deadline_ms = self.config.default_deadline_s * 1000.0
            if deadline_ms > 0:
                p95_fraction = min(1.0, h.p95 / deadline_ms)
        return max(float(queue_fraction), p95_fraction)

    # -- tier choice -------------------------------------------------------

    def choose(
        self,
        requested: str | None,
        available: tuple[str, ...],
        queue_fraction: float,
    ) -> tuple[str, dict, dict]:
        """``(tier, param_overrides, meta)`` for one request.

        ``available`` is the endpoint's tier set (an endpoint with too
        many features for exact enumeration simply never offers it).
        Raises :class:`InputValidationError` for a tier the service does
        not know, so the client gets a 400, not a silent substitution.
        """
        requested = (requested or "auto").strip().lower()
        if requested != "auto" and requested not in TIERS:
            raise InputValidationError(
                f"unknown explainer tier {requested!r}; "
                f"expected auto|{'|'.join(TIERS)}"
            )
        if not available:
            raise InputValidationError("endpoint offers no explainer tiers")
        base = requested if requested != "auto" else available[0]
        effective = base
        if effective not in available:
            # e.g. exact requested on a wide endpoint: the nearest
            # cheaper tier stands in (never a more expensive one).
            effective = next(
                (t for t in available
                 if TIERS.index(t) > TIERS.index(effective)),
                available[-1],
            )
        pressure = self.pressure(queue_fraction)
        tier = effective
        if self.config.ladder_enabled:
            if pressure >= self.config.shed_pressure:
                tier = available[-1]
            elif pressure >= self.config.degrade_pressure:
                lower = [
                    t for t in available
                    if TIERS.index(t) > TIERS.index(effective)
                ]
                tier = lower[0] if lower else effective
        overrides = self._budget_overrides(tier, pressure)
        squeezed = (
            overrides.get("n_permutations", self.config.sampling_permutations)
            < self.config.sampling_permutations
        )
        # Degraded means "not what the request would get on an idle
        # server", *including* the stand-in for an unavailable tier.
        degraded = tier != base or squeezed
        if degraded:
            metrics.counter("serve.shed.degraded").inc()
        meta = {
            "requested_tier": requested,
            "tier": tier,
            "degraded": degraded,
            "pressure": round(pressure, 4),
        }
        return tier, overrides, meta

    def _budget_overrides(self, tier: str, pressure: float) -> dict:
        """Pressure-scaled parameter overrides for the chosen tier."""
        if tier != "sampling":
            return {}
        cfg = self.config
        if not cfg.ladder_enabled or pressure < cfg.degrade_pressure:
            return {"n_permutations": cfg.sampling_permutations}
        # Linear squeeze: full budget at the degrade rung, the floor at
        # pressure 1.0.
        span = max(1e-9, 1.0 - cfg.degrade_pressure)
        scale = max(0.0, 1.0 - (pressure - cfg.degrade_pressure) / span)
        budget = int(
            cfg.min_sampling_permutations
            + scale * (cfg.sampling_permutations
                       - cfg.min_sampling_permutations)
        )
        return {"n_permutations": max(cfg.min_sampling_permutations, budget)}
