"""Service-layer typed errors, extending the ``repro.robust`` hierarchy.

Everything the service deliberately refuses to do gets its own exception
type rooted at :class:`repro.robust.ReproError`, so the protocol layer
(:mod:`repro.serve.protocol`) can map *any* failure — an explainer's
:class:`~repro.robust.ModelEvaluationError` or the server's own
admission decisions — onto one status-code table, and in-process callers
(tests, the benchmark load generator) can catch them without parsing
HTTP bodies.

Overload refusals (:class:`QueueFullError`, :class:`AdmissionTimeoutError`,
:class:`BreakerOpenError`) carry a ``retry_after_s`` hint that the HTTP
layer surfaces as a ``Retry-After`` header — a shed request tells the
client *when* trying again has a chance, instead of inviting an
immediate hammer-retry.
"""

from __future__ import annotations

from ..robust.errors import ReproError

__all__ = [
    "ServeError",
    "UnknownEndpointError",
    "ModelNotFoundError",
    "QueueFullError",
    "AdmissionTimeoutError",
    "BreakerOpenError",
    "CoalesceAbandonedError",
]


class ServeError(ReproError):
    """Base class for failures originating in the service layer itself."""


class UnknownEndpointError(ServeError):
    """The request named a model endpoint the server does not host."""


class ModelNotFoundError(ServeError):
    """The request pinned a model version the registry does not hold.

    Carries the versions that *are* available so the 404 envelope can
    list them — the client learns what to ask for instead of guessing.
    Raised both by version bumps that name an unregistered artifact
    version and by explain requests that pin a stale ``model_version``.
    """

    def __init__(self, name: str, version: str,
                 available: list[str] | None = None) -> None:
        self.model = str(name)
        self.requested_version = str(version)
        self.available = [str(v) for v in (available or [])]
        message = f"model {name!r} has no version {version!r}"
        if self.available:
            message += f"; available: {', '.join(self.available)}"
        super().__init__(message)


class QueueFullError(ServeError):
    """Fast-fail admission refusal: the bounded request queue is full.

    Raised *without waiting* — a full queue means every queued request
    is already at risk of missing its deadline, and adding more only
    makes the tail worse. Maps to HTTP 429.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class AdmissionTimeoutError(ServeError):
    """The request queued but no execution slot freed up within budget.

    The wait is bounded by the request's *remaining* deadline, so this
    is raised while there is still time to tell the client cleanly.
    Maps to HTTP 503.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class BreakerOpenError(ServeError):
    """The endpoint's circuit breaker is open: the model is failing.

    Requests are refused without touching the model until the cooldown
    elapses and a half-open probe succeeds. Maps to HTTP 503 with
    ``Retry-After`` set to the cooldown remainder.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class CoalesceAbandonedError(ServeError):
    """A coalesced flight ended without a result or error.

    Defensive: the leader's ``finally`` always resolves the flight, so
    waiters should never see this — but a waiter woken by an abandoned
    flight must fail loudly rather than return nothing. Maps to 500.
    """
