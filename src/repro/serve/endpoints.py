"""Model endpoints: what the service hosts and how each tier explains it.

An :class:`Endpoint` owns one model, its background sample, and a
version string; the server owns a name → endpoint registry. The
endpoint is where tier names become explainer objects:

=========== ========================================================
tier        explainer
=========== ========================================================
exact       :class:`repro.shapley.ExactShapleyExplainer` — offered
            only up to ``exact_max_features`` features (2^n
            coalitions beyond that is an outage, not a request)
sampling    :class:`repro.shapley.SamplingShapleyExplainer` with the
            per-request ``n_permutations`` budget the ladder chose
surrogate   :class:`repro.surrogate.LimeTabularExplainer` over the
            endpoint's background sample
=========== ========================================================

Explainer instances are cached per ``(tier, effective params)`` —
construction cost (background subsampling, LIME feature statistics) is
paid once, not per request. The *effective* params (client whitelist ∩
ladder overrides, with defaults filled in) also feed the request key,
so caching and coalescing see through parameter spellings that mean the
same computation.

Bumping :meth:`Endpoint.set_version` makes every cached explanation for
the old version unreachable; the server additionally drains them from
the warm cache eagerly.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.dataset import TabularDataset
from ..robust.errors import InputValidationError
from ..shapley import ExactShapleyExplainer, SamplingShapleyExplainer
from ..surrogate import LimeTabularExplainer
from .config import ServeConfig
from .ladder import TIERS
from .protocol import params_key

__all__ = ["Endpoint", "EndpointRegistry"]

# The only client-settable explainer params; anything else is a 400.
_PARAM_WHITELIST = {
    "sampling": ("n_permutations", "seed"),
    "surrogate": ("n_samples", "seed"),
    "exact": (),
}
_PARAM_BOUNDS = {
    "n_permutations": (1, 2000),
    "n_samples": (16, 20000),
    "seed": (0, 2**31 - 1),
}


class Endpoint:
    """One hosted model: background data, version, per-tier explainers."""

    def __init__(
        self,
        name: str,
        model,
        background: np.ndarray,
        feature_names: list[str] | None = None,
        version: str = "v1",
        config: ServeConfig | None = None,
    ) -> None:
        self.name = name
        self.model = model
        self.background = np.asarray(background, dtype=float)
        if self.background.ndim != 2:
            raise ValueError("background must be a 2-D array")
        self.n_features = int(self.background.shape[1])
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"f{i}" for i in range(self.n_features)]
        )
        self.config = config or ServeConfig()
        self._version = str(version)
        self._lock = threading.Lock()
        self._explainers: dict[tuple[str, str], object] = {}

    # -- versioning --------------------------------------------------------

    @property
    def version(self) -> str:
        with self._lock:
            return self._version

    def set_version(self, version: str) -> str:
        """Install a new model version; old cache keys become unreachable."""
        with self._lock:
            self._version = str(version)
            # The model may have changed under the same object; cached
            # explainers hold predict_fn references, so rebuild them.
            self._explainers.clear()
            return self._version

    def set_model(self, model, version: str) -> str:
        """Swap in a registry-loaded model under a new version string.

        The version-bump route resolves ``(name, version)`` through the
        persist artifact registry and installs the loaded model here;
        the cleared explainer cache guarantees the next request is
        explained against the new artifact, not a stale predict_fn.
        """
        with self._lock:
            self.model = model
            self._version = str(version)
            self._explainers.clear()
            return self._version

    # -- tiers -------------------------------------------------------------

    @property
    def available_tiers(self) -> tuple[str, ...]:
        """Tiers this endpoint offers, most faithful first."""
        if self.n_features <= self.config.exact_max_features:
            return TIERS
        return tuple(t for t in TIERS if t != "exact")

    def effective_params(self, tier: str, client_params: dict | None,
                         overrides: dict | None) -> dict:
        """Validated, defaulted params for one request at one tier.

        Client params are whitelisted per tier (unknown keys are a 400 —
        a typo'd knob silently ignored is a debugging session); ladder
        ``overrides`` then clamp budgets downward: a shedding server
        honors the *smaller* of what the client asked and what the
        ladder allows.
        """
        allowed = _PARAM_WHITELIST.get(tier, ())
        params: dict = {}
        for key, value in (client_params or {}).items():
            if key not in allowed:
                raise InputValidationError(
                    f"unknown param {key!r} for tier {tier!r}; "
                    f"allowed: {sorted(allowed) or 'none'}"
                )
            lo, hi = _PARAM_BOUNDS[key]
            try:
                value = int(value)
            except (TypeError, ValueError):
                raise InputValidationError(
                    f"param {key!r} must be an integer, got {value!r}"
                ) from None
            if not lo <= value <= hi:
                raise InputValidationError(
                    f"param {key!r} out of range [{lo}, {hi}]: {value}"
                )
            params[key] = value
        if tier == "sampling":
            budget = (overrides or {}).get(
                "n_permutations", self.config.sampling_permutations
            )
            params["n_permutations"] = min(
                params.get("n_permutations", budget), budget
            )
            params.setdefault("seed", 0)
        elif tier == "surrogate":
            params.setdefault("n_samples", 1000)
            params.setdefault("seed", 0)
        return params

    def explainer(self, tier: str, params: dict):
        """The cached explainer for ``(tier, params)``, built on demand."""
        key = (tier, params_key(params))
        with self._lock:
            found = self._explainers.get(key)
            if found is not None:
                return found
            built = self._build(tier, params)
            self._explainers[key] = built
            return built

    def _build(self, tier: str, params: dict):
        if tier == "exact":
            if self.n_features > self.config.exact_max_features:
                raise InputValidationError(
                    f"endpoint {self.name!r} has {self.n_features} features; "
                    "exact enumeration is capped at "
                    f"{self.config.exact_max_features}"
                )
            return ExactShapleyExplainer(self.model, self.background)
        if tier == "sampling":
            return SamplingShapleyExplainer(
                self.model,
                self.background,
                n_permutations=int(params["n_permutations"]),
                seed=int(params.get("seed", 0)),
            )
        if tier == "surrogate":
            data = TabularDataset(
                self.background,
                np.zeros(len(self.background)),
                features=list(self.feature_names),
            )
            return LimeTabularExplainer(
                self.model,
                data,
                n_samples=int(params["n_samples"]),
                seed=int(params.get("seed", 0)),
            )
        raise InputValidationError(f"unknown explainer tier {tier!r}")

    def explain(self, tier: str, params: dict, x: np.ndarray):
        """Run one explanation at the given tier."""
        explainer = self.explainer(tier, params)
        if tier == "surrogate":
            return explainer.explain(x)
        return explainer.explain(x, feature_names=list(self.feature_names))

    def validate_instance(self, x) -> np.ndarray:
        """Parse the request's instance into a (n_features,) float array."""
        try:
            arr = np.asarray(x, dtype=float)
        except (TypeError, ValueError):
            raise InputValidationError(
                "instance must be a numeric array"
            ) from None
        arr = arr.ravel()
        if arr.shape[0] != self.n_features:
            raise InputValidationError(
                f"instance has {arr.shape[0]} features; endpoint "
                f"{self.name!r} expects {self.n_features}"
            )
        if not np.all(np.isfinite(arr)):
            raise InputValidationError("instance contains NaN or inf")
        return arr


class EndpointRegistry:
    """Thread-safe name → :class:`Endpoint` map for one server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, Endpoint] = {}

    def add(self, endpoint: Endpoint) -> Endpoint:
        with self._lock:
            self._endpoints[endpoint.name] = endpoint
            return endpoint

    def get(self, name: str) -> Endpoint:
        from .errors import UnknownEndpointError

        with self._lock:
            found = self._endpoints.get(name)
        if found is None:
            raise UnknownEndpointError(
                f"no such model endpoint {name!r}; "
                f"hosted: {sorted(self._endpoints) or 'none'}"
            )
        return found

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._endpoints)
