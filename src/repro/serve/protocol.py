"""Wire protocol: request keys, response payloads, the error envelope.

The contract the service keeps with clients, whatever goes wrong inside:

* every response is JSON;
* every failure is a **typed error envelope** —
  ``{"error": {"type", "status", "message", "retry_after_s"?}}`` — whose
  ``type`` is the :mod:`repro.robust` / :mod:`repro.serve` exception
  class name, mapped to an HTTP status by :data:`STATUS_BY_ERROR`. Stack
  traces never cross the wire; unexpected exceptions collapse to a
  generic ``InternalError`` with a constant message;
* every success carries ``meta`` describing *what the client actually
  got*: the served tier (and whether the ladder degraded the request),
  cache/coalescing provenance, the model version, and the milliseconds
  of deadline that were left when the response was built.

Status mapping (most specific class wins)::

    InputValidationError            400   the caller's request is malformed
    ModelNotFoundError              404   no such registered model version
                                          (body lists available versions)
    UnknownEndpointError            404   no such model endpoint
    QueueFullError                  429   bounded queue full (Retry-After)
    AdmissionTimeoutError           503   no slot within budget (Retry-After)
    BreakerOpenError                503   model circuit open (Retry-After)
    BudgetExceededError             504   deadline ran out server-side
    ModelEvaluationError (+subs)    502   the model failed; not our fault
    TransientModelError             502   ditto, retryable flavor
    ReproError / anything else      500   the service's fault
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from ..core.explanation import FeatureAttribution
from ..robust.errors import (
    BudgetExceededError,
    InputValidationError,
    ModelEvaluationError,
    ReproError,
    TransientModelError,
)
from .errors import (
    AdmissionTimeoutError,
    BreakerOpenError,
    CoalesceAbandonedError,
    ModelNotFoundError,
    QueueFullError,
    ServeError,
    UnknownEndpointError,
)

__all__ = [
    "STATUS_BY_ERROR",
    "instance_hash",
    "params_key",
    "request_key",
    "attribution_payload",
    "status_for",
    "error_envelope",
]

# Ordered most-specific-first; the first isinstance match wins.
STATUS_BY_ERROR: tuple[tuple[type, int], ...] = (
    (InputValidationError, 400),
    (ModelNotFoundError, 404),
    (UnknownEndpointError, 404),
    (QueueFullError, 429),
    (AdmissionTimeoutError, 503),
    (BreakerOpenError, 503),
    (BudgetExceededError, 504),
    (ModelEvaluationError, 502),
    (TransientModelError, 502),
    (CoalesceAbandonedError, 500),
    (ServeError, 500),
    (ReproError, 500),
)


def instance_hash(x) -> str:
    """Short stable hash of one explained instance's float contents."""
    arr = np.ascontiguousarray(np.asarray(x, dtype=float).ravel())
    return hashlib.sha1(arr.tobytes()).hexdigest()[:16]


def params_key(params: dict | None) -> str:
    """Canonical string for the request's effective explainer params."""
    if not params:
        return "{}"
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def request_key(endpoint: str, model_version: str, x, tier: str,
                params: dict | None) -> tuple:
    """The identity under which requests coalesce and results cache.

    Two requests share one computation (and one cache entry) iff they
    name the same endpoint at the same model version, the same instance
    bytes, the same served tier, and the same effective parameters.
    The *served* tier — not the requested one — keys the entry, so a
    degraded response never shadows the full-fidelity one.
    """
    return (
        endpoint, model_version, instance_hash(x), tier, params_key(params)
    )


def attribution_payload(attribution: FeatureAttribution) -> dict:
    """JSON-safe body of a :class:`FeatureAttribution` result."""
    meta = {}
    for key, value in (attribution.meta or {}).items():
        if isinstance(value, np.ndarray):
            value = value.tolist()
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            value = repr(value)
        meta[key] = value
    return {
        "values": [float(v) for v in attribution.values],
        "feature_names": list(attribution.feature_names),
        "base_value": float(attribution.base_value),
        "prediction": (
            None if attribution.prediction is None
            else float(attribution.prediction)
        ),
        "method": attribution.method,
        "meta": meta,
    }


def status_for(error: BaseException) -> int:
    """HTTP status for a failure (500 for anything unrecognized)."""
    for cls, status in STATUS_BY_ERROR:
        if isinstance(error, cls):
            return status
    return 500


def error_envelope(error: BaseException) -> tuple[int, dict, dict]:
    """``(status, body, headers)`` for any failure.

    Known (typed) errors expose their class name and message; anything
    else — a bug, not a contract — is reported as ``InternalError``
    with a constant message so internals never leak to clients.
    """
    status = status_for(error)
    known = isinstance(error, ReproError)
    body: dict = {
        "error": {
            "type": type(error).__name__ if known else "InternalError",
            "status": status,
            "message": str(error) if known else "internal error",
        }
    }
    available = getattr(error, "available", None)
    if known and available is not None:
        # A 404 that lists what the registry *does* hold (satellite of
        # the persist refactor): the client's next request can succeed.
        body["error"]["available_versions"] = [str(v) for v in available]
    headers: dict = {}
    retry_after = getattr(error, "retry_after_s", None)
    if retry_after is not None:
        body["error"]["retry_after_s"] = round(float(retry_after), 3)
        headers["Retry-After"] = str(max(1, int(round(retry_after))))
    return status, body, headers
