"""The warm explanation cache: TTL + LRU, invalidated on model change.

Explanations are pure functions of ``(model version, instance, tier,
params)`` — exactly the coalescing key (:func:`repro.serve.protocol
.request_key`) — so the service can serve repeat traffic from memory.
Two forces bound the cache:

* **LRU capacity** (``REPRO_SERVE_CACHE_SIZE``): the hot working set
  stays, the long tail is evicted oldest-first;
* **TTL** (``REPRO_SERVE_CACHE_TTL_S``): an entry older than the TTL is
  dropped on lookup. The TTL is a freshness backstop for everything the
  key cannot see (a background sample refreshed in place, a model
  mutated without a version bump).

Version discipline is the *primary* invalidation mechanism: the key
embeds the endpoint's ``model_version``, so bumping the version makes
every old entry unreachable instantly, and :meth:`ExplanationCache
.invalidate_endpoint` reclaims the memory eagerly (called by the server
whenever a version changes).

Counters: ``serve.cache.hits`` / ``serve.cache.misses`` /
``serve.cache.expired`` / ``serve.cache.evictions`` /
``serve.cache.invalidated``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from ..obs import metrics

__all__ = ["ExplanationCache"]


class ExplanationCache:
    """Thread-safe TTL + LRU map from request keys to response payloads."""

    def __init__(self, max_entries: int, ttl_s: float) -> None:
        self.max_entries = max(0, int(max_entries))
        self.ttl_s = float(ttl_s)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[float, dict]] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> dict | None:
        """The cached payload, freshened to most-recently-used, or None."""
        now = time.monotonic()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                metrics.counter("serve.cache.misses").inc()
                return None
            stored_at, payload = entry
            if self.ttl_s > 0 and now - stored_at > self.ttl_s:
                del self._entries[key]
                metrics.counter("serve.cache.expired").inc()
                metrics.counter("serve.cache.misses").inc()
                return None
            self._entries.move_to_end(key)
            metrics.counter("serve.cache.hits").inc()
            return payload

    def put(self, key: tuple, payload: dict) -> None:
        """Store a payload, evicting least-recently-used beyond capacity."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = (time.monotonic(), payload)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                metrics.counter("serve.cache.evictions").inc()

    def invalidate_endpoint(self, endpoint: str) -> int:
        """Eagerly drop every entry for one endpoint (any version).

        The version bump already made stale keys unreachable; this
        reclaims their memory and returns how many were dropped.
        """
        with self._lock:
            doomed = [k for k in self._entries if k and k[0] == endpoint]
            for k in doomed:
                del self._entries[k]
        if doomed:
            metrics.counter("serve.cache.invalidated").inc(len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (tests; full redeploys)."""
        with self._lock:
            self._entries.clear()
