"""Service configuration: every knob, one env var, one default.

All knobs resolve at :class:`ServeConfig` construction from
``REPRO_SERVE_*`` environment variables (explicit constructor arguments
win), so `repro serve` deployments are tunable without code and the
tests can build tiny servers (1 slot, 2-entry cache) directly.

=============================== ============================= =========
constructor field               environment variable          default
=============================== ============================= =========
``max_inflight``                ``REPRO_SERVE_MAX_INFLIGHT``  4
``queue_limit``                 ``REPRO_SERVE_QUEUE_LIMIT``   16
``default_deadline_s``          ``REPRO_SERVE_DEADLINE_S``    10.0
``cache_size``                  ``REPRO_SERVE_CACHE_SIZE``    512
``cache_ttl_s``                 ``REPRO_SERVE_CACHE_TTL_S``   300.0
``coalesce_enabled``            ``REPRO_SERVE_COALESCE``      1 (on)
``breaker_threshold``           ``REPRO_SERVE_BREAKER_THRESHOLD``  5
``breaker_cooldown_s``          ``REPRO_SERVE_BREAKER_COOLDOWN_S`` 5.0
``ladder_enabled``              ``REPRO_SERVE_LADDER``        1 (on)
``degrade_pressure``            ``REPRO_SERVE_DEGRADE_AT``    0.5
``shed_pressure``               ``REPRO_SERVE_SHED_AT``       0.85
``socket_timeout_s``            ``REPRO_SERVE_SOCKET_TIMEOUT_S`` 30.0
=============================== ============================= =========

``degrade_pressure`` / ``shed_pressure`` are the two rungs of the
degradation ladder (:mod:`repro.serve.ladder`): below the first the
request's own explainer choice is honored, between them the service
downgrades one tier and trims sampling budgets, above the second it
serves the cheapest tier only.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["ServeConfig"]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_bool(name: str, default: bool) -> bool:
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return default
    return raw not in ("0", "false", "no", "off")


@dataclass
class ServeConfig:
    """Resolved service knobs (``None`` fields pull their env default)."""

    max_inflight: int | None = None
    queue_limit: int | None = None
    default_deadline_s: float | None = None
    cache_size: int | None = None
    cache_ttl_s: float | None = None
    coalesce_enabled: bool | None = None
    breaker_threshold: int | None = None
    breaker_cooldown_s: float | None = None
    ladder_enabled: bool | None = None
    degrade_pressure: float | None = None
    shed_pressure: float | None = None
    socket_timeout_s: float | None = None
    # Sampling-tier budget bounds the ladder scales within.
    sampling_permutations: int = 60
    min_sampling_permutations: int = 8
    # Exact enumeration is refused above this feature count regardless
    # of what the client asked for (2^n coalitions is not a request, it
    # is an outage).
    exact_max_features: int = 12
    retry_after_s: float = field(default=1.0)

    def __post_init__(self) -> None:
        if self.max_inflight is None:
            self.max_inflight = _env_int("REPRO_SERVE_MAX_INFLIGHT", 4)
        if self.queue_limit is None:
            self.queue_limit = _env_int("REPRO_SERVE_QUEUE_LIMIT", 16)
        if self.default_deadline_s is None:
            self.default_deadline_s = _env_float("REPRO_SERVE_DEADLINE_S", 10.0)
        if self.cache_size is None:
            self.cache_size = _env_int("REPRO_SERVE_CACHE_SIZE", 512)
        if self.cache_ttl_s is None:
            self.cache_ttl_s = _env_float("REPRO_SERVE_CACHE_TTL_S", 300.0)
        if self.coalesce_enabled is None:
            self.coalesce_enabled = _env_bool("REPRO_SERVE_COALESCE", True)
        if self.breaker_threshold is None:
            self.breaker_threshold = _env_int(
                "REPRO_SERVE_BREAKER_THRESHOLD", 5
            )
        if self.breaker_cooldown_s is None:
            self.breaker_cooldown_s = _env_float(
                "REPRO_SERVE_BREAKER_COOLDOWN_S", 5.0
            )
        if self.ladder_enabled is None:
            self.ladder_enabled = _env_bool("REPRO_SERVE_LADDER", True)
        if self.degrade_pressure is None:
            self.degrade_pressure = _env_float("REPRO_SERVE_DEGRADE_AT", 0.5)
        if self.shed_pressure is None:
            self.shed_pressure = _env_float("REPRO_SERVE_SHED_AT", 0.85)
        if self.socket_timeout_s is None:
            self.socket_timeout_s = _env_float(
                "REPRO_SERVE_SOCKET_TIMEOUT_S", 30.0
            )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be > 0")
        if not 0.0 < self.degrade_pressure <= self.shed_pressure:
            raise ValueError(
                "need 0 < degrade_pressure <= shed_pressure, got "
                f"{self.degrade_pressure} / {self.shed_pressure}"
            )
