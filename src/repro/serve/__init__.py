"""``repro.serve``: a fault-contained explanation service.

ROADMAP item 1 made concrete: the explainers behind an HTTP front that
stays honest under overload. Built entirely on the repo's own layers —
:mod:`repro.robust` supplies the typed errors and the request-envelope
deadline accounting, :mod:`repro.obs` the ``serve.*`` telemetry — and
the stdlib's ``ThreadingHTTPServer``; no new dependencies.

The load-bearing pieces:

``admission``   bounded queue in front of a fixed compute budget;
                429 (queue full, fast-fail) / 503 (slot timeout)
``coalesce``    single-flight: identical in-flight requests share one
                computation and one outcome, typed errors included
``cache``       warm TTL+LRU explanation cache, invalidated on model
                version bumps
``ladder``      load-shedding degradation: exact → sampling →
                surrogate as pressure rises, declared in ``meta``
``breaker``     per-model circuit breaker fed by
                :class:`~repro.robust.ModelEvaluationError`
``protocol``    request keys, response payloads, the error envelope
                (no stack trace ever crosses the wire)
``server``      :class:`ExplainServer` — the composition, in-process
                and over HTTP

Quickstart::

    server = ExplainServer(ServeConfig(max_inflight=4))
    server.add_endpoint("loan", model, background, feature_names)
    host, port = server.start()   # POST /explain, GET /healthz, ...

or from the shell: ``repro serve --port 8080``.
"""

from .breaker import CircuitBreaker
from .cache import ExplanationCache
from .coalesce import Coalescer, Flight
from .config import ServeConfig
from .endpoints import Endpoint, EndpointRegistry
from .errors import (
    AdmissionTimeoutError,
    BreakerOpenError,
    CoalesceAbandonedError,
    ModelNotFoundError,
    QueueFullError,
    ServeError,
    UnknownEndpointError,
)
from .admission import AdmissionController
from .ladder import TIERS, DegradationLadder
from .protocol import error_envelope, instance_hash, request_key, status_for
from .server import ExplainServer

__all__ = [
    "AdmissionController",
    "AdmissionTimeoutError",
    "BreakerOpenError",
    "CircuitBreaker",
    "Coalescer",
    "CoalesceAbandonedError",
    "DegradationLadder",
    "Endpoint",
    "EndpointRegistry",
    "ExplainServer",
    "ExplanationCache",
    "Flight",
    "ModelNotFoundError",
    "QueueFullError",
    "ServeConfig",
    "ServeError",
    "TIERS",
    "UnknownEndpointError",
    "error_envelope",
    "instance_hash",
    "request_key",
    "status_for",
]
