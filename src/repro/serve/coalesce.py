"""Request coalescing: identical in-flight requests share one computation.

A hot instance under load is the service's best case *if* it computes
the explanation once — and its worst case if every duplicate request
occupies an execution slot recomputing it. The coalescer is a
single-flight map keyed by :func:`repro.serve.protocol.request_key`:

* the **first** request for a key becomes the *leader*: it takes an
  admission slot, computes, and publishes the outcome;
* every concurrent duplicate becomes a *waiter*: it takes **no**
  admission slot (coalesced demand exerts no queue pressure — that is
  the point), blocks on the flight with its own remaining deadline, and
  receives the leader's result — or the leader's typed error, exactly
  once per waiter, exactly as the leader saw it;
* the flight is removed in the leader's ``finally``, so the *next*
  request for the key after completion starts fresh (and normally hits
  the cache instead).

A waiter whose deadline lapses before the leader finishes raises its
own :class:`~repro.robust.BudgetExceededError` — one slow leader must
not convert N waiters into N hung sockets.

Counters: ``serve.coalesce.leaders`` / ``serve.coalesce.waiters`` /
``serve.coalesce.timeouts``.
"""

from __future__ import annotations

import threading

from ..obs import metrics
from ..robust.errors import BudgetExceededError
from .errors import CoalesceAbandonedError

__all__ = ["Flight", "Coalescer"]


class Flight:
    """One in-flight computation and the outcome it publishes."""

    __slots__ = ("_done", "result", "error", "waiters")

    def __init__(self) -> None:
        self._done = threading.Event()
        self.result: dict | None = None
        self.error: BaseException | None = None
        self.waiters = 0

    def resolve(self, result: dict) -> None:
        self.result = result
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._done.set()

    def abandon(self) -> None:
        """Wake waiters with a typed failure if nothing was published."""
        if not self._done.is_set():
            self.error = CoalesceAbandonedError(
                "coalesced computation ended without publishing an outcome"
            )
            self._done.set()

    def wait(self, timeout_s: float) -> dict:
        """Block until the leader publishes; re-raise its typed error.

        Raises :class:`BudgetExceededError` when ``timeout_s`` (the
        waiter's own remaining deadline) lapses first.
        """
        if not self._done.wait(timeout=max(0.0, timeout_s)):
            metrics.counter("serve.coalesce.timeouts").inc()
            raise BudgetExceededError(
                f"deadline of {timeout_s:.3f}s lapsed waiting on a "
                "coalesced computation",
                kind="deadline",
                spent=timeout_s,
                budget=timeout_s,
            )
        if self.error is not None:
            raise self.error
        if self.result is None:
            raise CoalesceAbandonedError(
                "coalesced computation resolved with no result"
            )
        return self.result


class Coalescer:
    """Single-flight registry: at most one computation per request key."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[tuple, Flight] = {}

    def inflight(self) -> int:
        with self._lock:
            return len(self._flights)

    def join(self, key: tuple) -> tuple[Flight, bool]:
        """``(flight, is_leader)`` — leaders compute, waiters wait."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.waiters += 1
                metrics.counter("serve.coalesce.waiters").inc()
                return flight, False
            flight = Flight()
            self._flights[key] = flight
            metrics.counter("serve.coalesce.leaders").inc()
            return flight, True

    def finish(self, key: tuple, flight: Flight) -> None:
        """Leader cleanup: deregister and wake any unresolved waiters."""
        with self._lock:
            if self._flights.get(key) is flight:
                del self._flights[key]
        flight.abandon()
