"""The explanation service: HTTP front, fault-contained request core.

:class:`ExplainServer` composes the pieces of this package around an
endpoint registry and exposes them two ways: in-process via
:meth:`ExplainServer.handle_explain` (what the tests and the benchmark
load generator call — the full admission/coalescing/breaker path with
no sockets), and over HTTP via :meth:`ExplainServer.start` (a
``ThreadingHTTPServer`` daemon thread, one connection per thread, every
socket under ``REPRO_SERVE_SOCKET_TIMEOUT_S``).

The life of a request::

    parse/validate ── 400 on bad JSON, unknown model, malformed instance
    breaker peek ──── 503 fast-fail while the model's circuit is open
    ladder choice ─── pick the served tier from pressure (meta.tier)
    cache lookup ──── hit returns immediately; sheds all downstream load
    coalesce join ─── duplicate of an in-flight request? wait, don't queue
    admission ─────── bounded queue; wait capped by *remaining* deadline
    breaker allow ─── half-open probe gate
    compute ───────── explainer under a guard scope that inherits the
                      request envelope's remaining time
    publish ───────── cache.put + flight.resolve (errors: flight.fail)

Deadline accounting runs through :func:`repro.robust.request_envelope`:
the envelope opens at parse time with the request's full budget, so by
construction every later stage — queue wait, coalesced wait, the
explainer's own guard scope — sees only what is left. No stage can
sleep past the deadline the client was promised, which is what "zero
hung requests under overload" means operationally.

Routes: ``POST /explain``, ``GET /healthz``, ``GET /serve/stats``,
``POST /models/<name>/version``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..obs import metrics
from ..obs.ledger import record_request
from ..persist.errors import ArtifactNotFoundError
from ..persist.registry import ArtifactRegistry, resolve_registry_dir
from ..robust.errors import BudgetExceededError, InputValidationError
from ..robust.guard import request_envelope
from .admission import AdmissionController
from .breaker import CircuitBreaker
from .cache import ExplanationCache
from .coalesce import Coalescer
from .config import ServeConfig
from .endpoints import Endpoint, EndpointRegistry
from .errors import ModelNotFoundError, UnknownEndpointError
from .ladder import DegradationLadder
from .protocol import attribution_payload, error_envelope, request_key

__all__ = ["ExplainServer"]

MAX_BODY_BYTES = 1 << 20  # a one-instance explanation request is small


class ExplainServer:
    """Admission-controlled, coalescing, degradable explanation service."""

    def __init__(self, config: ServeConfig | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 artifacts: ArtifactRegistry | str | None = None) -> None:
        self.config = config or ServeConfig()
        self.host = host
        self.port = int(port)
        self.registry = EndpointRegistry()
        # The persist artifact registry that feeds version bumps. An
        # explicit ArtifactRegistry (or root path) wins; otherwise the
        # ambient root (REPRO_REGISTRY_DIR > .repro_registry) is picked
        # up lazily, and only if it exists on disk — servers that never
        # pushed an artifact keep the label-only version-bump behavior.
        if isinstance(artifacts, str):
            artifacts = ArtifactRegistry(artifacts)
        self._artifacts = artifacts
        self.admission = AdmissionController(
            self.config.max_inflight,
            self.config.queue_limit,
            self.config.retry_after_s,
        )
        self.cache = ExplanationCache(
            self.config.cache_size, self.config.cache_ttl_s
        )
        self.coalescer = Coalescer()
        self.ladder = DegradationLadder(self.config)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._http: ThreadingHTTPServer | None = None
        self._http_lock = threading.Lock()

    # -- hosting -----------------------------------------------------------

    def add_endpoint(
        self,
        name: str,
        model,
        background: np.ndarray,
        feature_names: list[str] | None = None,
        version: str = "v1",
    ) -> Endpoint:
        """Host a model under ``name``; returns the created endpoint."""
        return self.registry.add(
            Endpoint(
                name,
                model,
                background,
                feature_names=feature_names,
                version=version,
                config=self.config,
            )
        )

    def breaker(self, name: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker for one endpoint."""
        with self._breaker_lock:
            found = self._breakers.get(name)
            if found is None:
                found = CircuitBreaker(
                    name,
                    threshold=self.config.breaker_threshold,
                    cooldown_s=self.config.breaker_cooldown_s,
                )
                self._breakers[name] = found
            return found

    def artifact_store(self) -> ArtifactRegistry | None:
        """The persist registry feeding version bumps, if one exists."""
        if self._artifacts is not None:
            return self._artifacts
        root = resolve_registry_dir()
        if os.path.isdir(root):
            self._artifacts = ArtifactRegistry(root)
        return self._artifacts

    def add_endpoint_from_registry(
        self,
        name: str,
        background: np.ndarray,
        feature_names: list[str] | None = None,
        version: str | None = None,
    ) -> Endpoint:
        """Host a registered artifact under its registry name.

        Loads ``(name, version)`` — latest when ``version`` is None —
        from the persist artifact registry and hosts the deserialized
        model. Unknown names or versions raise the typed 404.
        """
        store = self.artifact_store()
        if store is None:
            raise ModelNotFoundError(name, version or "latest")
        try:
            if version is None:
                version = store.latest_version(name)
            model = store.get(name, version)
        except ArtifactNotFoundError as exc:
            raise ModelNotFoundError(
                name, str(version),
                available=getattr(exc, "available", None)
                or store.versions(name),
            ) from exc
        metrics.counter("serve.registry.loads").inc()
        return self.add_endpoint(
            name, model, background,
            feature_names=feature_names, version=version,
        )

    def set_model_version(self, name: str, version: str) -> str:
        """Bump an endpoint's model version and drain its cache entries.

        When the persist artifact registry holds artifacts under
        ``name``, the bump is *real*: the registered artifact for
        ``version`` is loaded and swapped into the endpoint, and an
        unknown version is a typed 404 listing what the registry does
        hold. Endpoints with no registered artifact keep the label-only
        bump (the hosted model object is unchanged).
        """
        endpoint = self.registry.get(name)
        store = self.artifact_store()
        if store is not None and name in store.names():
            try:
                model = store.get(name, version)
            except ArtifactNotFoundError as exc:
                raise ModelNotFoundError(
                    name, version,
                    available=getattr(exc, "available", None)
                    or store.versions(name),
                ) from exc
            metrics.counter("serve.registry.loads").inc()
            new_version = endpoint.set_model(model, version)
        else:
            new_version = endpoint.set_version(version)
        self.cache.invalidate_endpoint(name)
        return new_version

    def _available_versions(self, endpoint: Endpoint) -> list[str]:
        """Registry versions for one endpoint, live version included."""
        store = self.artifact_store()
        versions = store.versions(endpoint.name) if store is not None else []
        live = endpoint.version
        if live not in versions:
            versions.append(live)
        return versions

    # -- the request core (no sockets; tests call this directly) -----------

    def handle_explain(self, body) -> tuple[int, dict, dict]:
        """``(status, response_body, headers)`` for one explain request.

        Never raises: every failure — typed or unexpected — becomes the
        protocol's error envelope, and every outcome lands in the run
        ledger and the ``serve.request_ms`` histogram.
        """
        started = time.monotonic()
        ctx: dict = {
            "endpoint": None, "tier": None,
            "cache": "miss", "degraded": False, "deadline_ms": None,
        }
        error: BaseException | None = None
        try:
            payload, meta = self._explain(body, ctx)
            status, headers = 200, {}
            response = {"attribution": payload, "meta": meta}
        except Exception as exc:  # the envelope is the contract
            error = exc
            status, response, headers = error_envelope(exc)
        wall_ms = (time.monotonic() - started) * 1000.0
        metrics.histogram("serve.request_ms").observe(wall_ms)
        record_request(
            ctx["endpoint"], ctx["tier"], status, wall_ms,
            cache=ctx["cache"], degraded=ctx["degraded"], error=error,
            deadline_ms=ctx["deadline_ms"],
        )
        return status, response, headers

    def _deadline_s(self, body: dict) -> float:
        raw = body.get("deadline_ms")
        if raw is None:
            return float(self.config.default_deadline_s)
        try:
            deadline_ms = float(raw)
        except (TypeError, ValueError):
            raise InputValidationError(
                f"deadline_ms must be a number, got {raw!r}"
            ) from None
        if deadline_ms <= 0:
            raise InputValidationError("deadline_ms must be > 0")
        return deadline_ms / 1000.0

    def _explain(self, body, ctx: dict) -> tuple[dict, dict]:
        if not isinstance(body, dict):
            raise InputValidationError("request body must be a JSON object")
        name = body.get("model")
        if not isinstance(name, str) or not name:
            raise InputValidationError("request must name a 'model'")
        endpoint = self.registry.get(name)
        ctx["endpoint"] = endpoint.name
        if "instance" not in body:
            raise InputValidationError("request must carry an 'instance'")
        x = endpoint.validate_instance(body["instance"])
        pinned = body.get("model_version")
        if pinned is not None:
            if not isinstance(pinned, str) or not pinned:
                raise InputValidationError(
                    "model_version must be a non-empty string"
                )
            if pinned != endpoint.version:
                # The pin names a version this endpoint is not serving:
                # a typed 404 that lists the registry's versions beats
                # silently answering from the wrong model.
                raise ModelNotFoundError(
                    name, pinned, available=self._available_versions(endpoint)
                )
        deadline_s = self._deadline_s(body)
        ctx["deadline_ms"] = deadline_s * 1000.0
        breaker = self.breaker(endpoint.name)
        breaker.peek()
        with request_envelope(deadline_s) as envelope:
            tier, overrides, tier_meta = self.ladder.choose(
                body.get("tier"),
                endpoint.available_tiers,
                self.admission.queue_fraction(),
            )
            ctx["tier"] = tier
            ctx["degraded"] = tier_meta["degraded"]
            params = endpoint.effective_params(
                tier, body.get("params"), overrides
            )
            version = endpoint.version
            key = request_key(endpoint.name, version, x, tier, params)
            payload = self.cache.get(key)
            if payload is not None:
                ctx["cache"] = "hit"
            else:
                payload = self._compute(
                    endpoint, breaker, key, tier, params, x, envelope, ctx
                )
            meta = dict(tier_meta)
            meta["model"] = endpoint.name
            meta["model_version"] = version
            meta["cache"] = ctx["cache"]
            meta["params"] = params
            remaining = envelope.remaining_s()
            if remaining is not None:
                meta["deadline_remaining_ms"] = round(remaining * 1000.0, 1)
            return payload, meta

    def _compute(self, endpoint, breaker, key, tier, params, x,
                 envelope, ctx) -> dict:
        """Leader/waiter split around one coalesced computation."""
        if not self.config.coalesce_enabled:
            return self._run(endpoint, breaker, key, tier, params, x,
                             envelope, ctx)
        flight, leader = self.coalescer.join(key)
        if not leader:
            ctx["cache"] = "coalesced"
            return flight.wait(envelope.remaining_s() or 0.0)
        try:
            payload = self._run(endpoint, breaker, key, tier, params, x,
                                envelope, ctx)
            flight.resolve(payload)
            return payload
        except BaseException as exc:
            flight.fail(exc)
            raise
        finally:
            self.coalescer.finish(key, flight)

    def _run(self, endpoint, breaker, key, tier, params, x,
             envelope, ctx) -> dict:
        """Admission → breaker → compute → cache, under the envelope."""
        remaining = envelope.remaining_s()
        wait_s = (
            remaining if remaining is not None
            else float(self.config.default_deadline_s)
        )
        with self.admission.admit(wait_s):
            remaining = envelope.remaining_s()
            if remaining is not None and remaining <= 0:
                budget_s = float(ctx["deadline_ms"] or 0.0) / 1000.0
                raise BudgetExceededError(
                    "deadline exhausted in the admission queue",
                    kind="deadline",
                    spent=budget_s,
                    budget=budget_s,
                )
            breaker.allow()
            try:
                with metrics.observe_duration("serve.compute_ms"):
                    # The explainer's own guard scope composes with the
                    # ambient request envelope, so the compute deadline
                    # is the request's *remaining* time.
                    attribution = endpoint.explain(tier, params, x)
            except Exception as exc:
                breaker.record_failure(exc)
                raise
            breaker.record_success()
        payload = attribution_payload(attribution)
        self.cache.put(key, payload)
        return payload

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Live service state for ``/serve/stats`` and the tests."""
        snapshot = metrics.snapshot()

        def count(name: str) -> float:
            return snapshot.get(name, {}).get("value", 0)

        return {
            "models": {
                name: {
                    "version": self.registry.get(name).version,
                    "tiers": list(self.registry.get(name).available_tiers),
                    "breaker": self.breaker(name).state,
                }
                for name in self.registry.names()
            },
            "admission": {
                "max_inflight": self.admission.max_inflight,
                "queue_limit": self.admission.queue_limit,
                "inflight": self.admission.inflight,
                "waiting": self.admission.waiting,
            },
            "cache": {
                "entries": len(self.cache),
                "hits": count("serve.cache.hits"),
                "misses": count("serve.cache.misses"),
            },
            "coalesce": {
                "inflight": self.coalescer.inflight(),
                "leaders": count("serve.coalesce.leaders"),
                "waiters": count("serve.coalesce.waiters"),
            },
            "pressure": self.ladder.pressure(self.admission.queue_fraction()),
        }

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "models": self.registry.names(),
            "breakers": {
                name: self.breaker(name).state
                for name in self.registry.names()
            },
        }

    # -- HTTP --------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Serve on a daemon thread; returns the bound ``(host, port)``."""
        with self._http_lock:
            if self._http is None:
                handler = _make_handler(self)
                self._http = ThreadingHTTPServer(
                    (self.host, self.port), handler
                )
                self._http.daemon_threads = True
                threading.Thread(
                    target=self._http.serve_forever,
                    name="repro-serve",
                    daemon=True,
                ).start()
            address = self._http.server_address
            return str(address[0]), int(address[1])

    def stop(self) -> None:
        """Shut the HTTP front down (idempotent; in-process use keeps working)."""
        with self._http_lock:
            http, self._http = self._http, None
        if http is not None:
            http.shutdown()
            http.server_close()

    def address(self) -> tuple[str, int] | None:
        with self._http_lock:
            if self._http is None:
                return None
            address = self._http.server_address
            return str(address[0]), int(address[1])


def _make_handler(server: ExplainServer):
    """A handler class bound to one :class:`ExplainServer` instance."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve"
        # StreamRequestHandler.setup() applies this to the connection,
        # so no read or write on the socket can block forever.
        timeout = server.config.socket_timeout_s

        def _send_json(self, status: int, body: dict,
                       headers: dict | None = None) -> None:
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(payload)

        def _send_error(self, exc: BaseException) -> None:
            status, body, headers = error_envelope(exc)
            self._send_json(status, body, headers)

        def _read_body(self) -> dict:
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                raise InputValidationError(
                    "bad Content-Length header"
                ) from None
            if length <= 0:
                raise InputValidationError("request body is required")
            if length > MAX_BODY_BYTES:
                raise InputValidationError(
                    f"request body exceeds {MAX_BODY_BYTES} bytes"
                )
            raw = self.rfile.read(length)
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise InputValidationError(
                    "request body is not valid JSON"
                ) from None

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            try:
                route = self.path.rstrip("/")
                if route == "/explain":
                    body = self._read_body()
                    status, response, headers = server.handle_explain(body)
                    self._send_json(status, response, headers)
                elif route.startswith("/models/") and route.endswith(
                    "/version"
                ):
                    name = route[len("/models/"):-len("/version")]
                    body = self._read_body()
                    version = body.get("version")
                    if not isinstance(version, str) or not version:
                        raise InputValidationError(
                            "body must carry a non-empty 'version' string"
                        )
                    new_version = server.set_model_version(name, version)
                    self._send_json(
                        200, {"model": name, "version": new_version}
                    )
                else:
                    raise UnknownEndpointError(f"no such route {route!r}")
            except Exception as exc:  # every failure is an envelope
                metrics.counter("serve.http.errors").inc()
                try:
                    self._send_error(exc)
                except Exception:
                    metrics.counter("serve.http.errors").inc()

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            try:
                route = self.path.rstrip("/")
                if route == "/healthz":
                    self._send_json(200, server.healthz())
                elif route == "/serve/stats":
                    self._send_json(200, server.stats())
                else:
                    raise UnknownEndpointError(f"no such route {route!r}")
            except Exception as exc:
                metrics.counter("serve.http.errors").inc()
                try:
                    self._send_error(exc)
                except Exception:
                    metrics.counter("serve.http.errors").inc()

        def log_message(self, fmt, *args) -> None:  # noqa: D102
            pass  # request logging lives in the run ledger, not stderr

    return Handler
