"""Sanity checks for saliency maps [Adebayo et al. 2018].

The tutorial cites this work for the claim that gradient explanations
"could be highly misleading, fragile and unreliable" (§2.4). The test is
simple and damning where it fails: if an attribution method genuinely
explains the *model*, then destroying the model — re-randomizing its
layers — must change the attributions. A method whose maps survive
randomization is acting as an edge detector on the input, not an
explanation.

:func:`model_randomization_test` performs the cascading variant: layers
are randomized top-down one at a time, and after each step the similarity
between original and current attribution maps is recorded. Healthy
methods show similarity dropping toward chance.
"""

from __future__ import annotations

import copy

import numpy as np

from ..models.metrics import spearman_correlation
from ..models.mlp import MLPClassifier

__all__ = ["model_randomization_test", "attribution_similarity"]


def attribution_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation of |attribution| maps (paper's metric)."""
    return spearman_correlation(np.abs(np.asarray(a)), np.abs(np.asarray(b)))


def model_randomization_test(
    model: MLPClassifier,
    attribution_fn,
    X: np.ndarray,
    seed: int = 0,
) -> list[dict[str, float]]:
    """Cascading model-randomization sanity check.

    Parameters
    ----------
    model:
        Fitted MLP. A deep copy is randomized; the original is untouched.
    attribution_fn:
        ``attribution_fn(model, x) -> FeatureAttribution`` — the method
        under test (e.g. a partial of :func:`repro.unstructured.saliency`).
    X:
        Instances to average the similarity over.

    Returns
    -------
    One record per randomization depth: ``{"layers_randomized": k,
    "similarity": mean rank correlation to the original maps}``.
    Depth 0 is the un-randomized control (similarity 1.0).
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    originals = [attribution_fn(model, x).values for x in X]
    results = [{"layers_randomized": 0, "similarity": 1.0}]
    randomized = copy.deepcopy(model)
    # Cascade from the output layer backwards, as in the paper.
    for depth, layer in enumerate(range(randomized.n_layers - 1, -1, -1), 1):
        randomized.randomize_layer(layer, seed=seed + depth)
        sims = [
            attribution_similarity(
                original, attribution_fn(randomized, x).values
            )
            for original, x in zip(originals, X)
        ]
        results.append(
            {"layers_randomized": depth, "similarity": float(np.mean(sims))}
        )
    return results
