"""Explanations for unstructured data (§2.4): gradients, sanity checks, text."""

from .attribution import (
    gradient_times_input,
    integrated_gradients,
    occlusion,
    saliency,
    smoothgrad,
)
from .sanity import attribution_similarity, model_randomization_test
from .text import BagOfWords, TextPipeline, make_sentiment_corpus

__all__ = [
    "saliency",
    "gradient_times_input",
    "integrated_gradients",
    "smoothgrad",
    "occlusion",
    "model_randomization_test",
    "attribution_similarity",
    "BagOfWords",
    "TextPipeline",
    "make_sentiment_corpus",
]
