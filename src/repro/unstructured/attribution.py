"""Gradient-based attribution for differentiable models (§2.4).

The saliency-map family the tutorial surveys for unstructured data, on
our from-scratch MLP (which plays the role of the deep network — DESIGN.md
records the substitution). All methods return a
:class:`FeatureAttribution` over the flattened input (pixels of the grid
datasets, or ordinary tabular features).

* **Saliency** — |∂f/∂x| (Simonyan et al.), optionally signed.
* **Gradient × input** — ∂f/∂x ⊙ x.
* **Integrated gradients** — (x − x') ⊙ ∫₀¹ ∂f(x' + α(x − x'))/∂x dα
  (Sundararajan et al.), satisfying completeness:
  Σ attributions = f(x) − f(x').
* **SmoothGrad** — saliency averaged over Gaussian-noised copies
  (Smilkov et al.), the variance-reduction fix for noisy gradients.
* **Occlusion** — the perturbation (non-gradient) baseline: score drop
  from masking patches, the "evidence counterfactual" primitive.
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import FeatureAttribution
from ..models.mlp import MLPClassifier

__all__ = [
    "saliency",
    "gradient_times_input",
    "integrated_gradients",
    "smoothgrad",
    "occlusion",
]


def _names(d: int, feature_names: list[str] | None) -> list[str]:
    return feature_names or [f"px{i}" for i in range(d)]


def saliency(
    model: MLPClassifier,
    x: np.ndarray,
    signed: bool = False,
    feature_names: list[str] | None = None,
) -> FeatureAttribution:
    """Vanilla gradient saliency map at ``x``."""
    x = np.asarray(x, dtype=float).ravel()
    grad = model.input_gradient(x[None, :])[0]
    values = grad if signed else np.abs(grad)
    return FeatureAttribution(
        values=values,
        feature_names=_names(x.shape[0], feature_names),
        prediction=float(model.decision_function(x[None, :])[0]),
        method="saliency",
    )


def gradient_times_input(
    model: MLPClassifier,
    x: np.ndarray,
    feature_names: list[str] | None = None,
) -> FeatureAttribution:
    """∂f/∂x ⊙ x — the simplest completeness-motivated variant."""
    x = np.asarray(x, dtype=float).ravel()
    grad = model.input_gradient(x[None, :])[0]
    return FeatureAttribution(
        values=grad * x,
        feature_names=_names(x.shape[0], feature_names),
        prediction=float(model.decision_function(x[None, :])[0]),
        method="gradient_times_input",
    )


def integrated_gradients(
    model: MLPClassifier,
    x: np.ndarray,
    baseline: np.ndarray | None = None,
    n_steps: int = 50,
    feature_names: list[str] | None = None,
) -> FeatureAttribution:
    """Integrated gradients along the straight path baseline → x.

    Uses the midpoint rule; the completeness identity
    Σφ = f(x) − f(baseline) is checked by the test suite.
    """
    x = np.asarray(x, dtype=float).ravel()
    baseline = (
        np.zeros_like(x) if baseline is None
        else np.asarray(baseline, dtype=float).ravel()
    )
    alphas = (np.arange(n_steps) + 0.5) / n_steps
    points = baseline[None, :] + alphas[:, None] * (x - baseline)[None, :]
    grads = model.input_gradient(points)
    avg_grad = grads.mean(axis=0)
    values = (x - baseline) * avg_grad
    f_x = float(model.decision_function(x[None, :])[0])
    f_base = float(model.decision_function(baseline[None, :])[0])
    return FeatureAttribution(
        values=values,
        feature_names=_names(x.shape[0], feature_names),
        base_value=f_base,
        prediction=f_x,
        method="integrated_gradients",
        meta={"n_steps": n_steps},
    )


def smoothgrad(
    model: MLPClassifier,
    x: np.ndarray,
    noise_scale: float = 0.15,
    n_samples: int = 50,
    signed: bool = False,
    feature_names: list[str] | None = None,
    seed: int = 0,
) -> FeatureAttribution:
    """Saliency averaged over noisy copies of the input.

    ``noise_scale`` is relative to the input's value range, as in the
    SmoothGrad paper.
    """
    x = np.asarray(x, dtype=float).ravel()
    rng = np.random.default_rng(seed)
    spread = float(np.ptp(x)) or 1.0
    noise = rng.normal(0.0, noise_scale * spread, size=(n_samples, x.shape[0]))
    grads = model.input_gradient(x[None, :] + noise)
    avg = grads.mean(axis=0)
    return FeatureAttribution(
        values=avg if signed else np.abs(avg),
        feature_names=_names(x.shape[0], feature_names),
        prediction=float(model.decision_function(x[None, :])[0]),
        method="smoothgrad",
        meta={"n_samples": n_samples, "noise_scale": noise_scale},
    )


def occlusion(
    model,
    x: np.ndarray,
    grid_size: int,
    patch: int = 2,
    fill: float = 0.0,
    feature_names: list[str] | None = None,
) -> FeatureAttribution:
    """Patch-occlusion attribution for a flattened ``grid_size²`` image.

    Slides a ``patch × patch`` window, replaces the window with ``fill``
    and records the prediction drop, accumulated per pixel (averaged over
    the windows covering it).
    """
    from ..core.base import as_predict_fn

    predict_fn = as_predict_fn(model)
    x = np.asarray(x, dtype=float).ravel()
    if x.shape[0] != grid_size * grid_size:
        raise ValueError("x does not match grid_size²")
    base_score = float(predict_fn(x[None, :])[0])
    image = x.reshape(grid_size, grid_size)
    drops = np.zeros_like(image)
    counts = np.zeros_like(image)
    for r in range(grid_size - patch + 1):
        for c in range(grid_size - patch + 1):
            occluded = image.copy()
            occluded[r : r + patch, c : c + patch] = fill
            score = float(predict_fn(occluded.ravel()[None, :])[0])
            drops[r : r + patch, c : c + patch] += base_score - score
            counts[r : r + patch, c : c + patch] += 1
    values = (drops / np.maximum(counts, 1)).ravel()
    return FeatureAttribution(
        values=values,
        feature_names=_names(x.shape[0], feature_names),
        prediction=base_score,
        method="occlusion",
        meta={"patch": patch},
    )
