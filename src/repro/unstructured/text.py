"""Minimal text-classification substrate for LIME-text (§2.4).

A bag-of-words vectorizer plus a convenience pipeline wrapping any
classifier from :mod:`repro.models`, exposing the ``list[str] -> scores``
interface :class:`repro.surrogate.lime_text.LimeTextExplainer` consumes.
Includes a tiny synthetic sentiment corpus generator so tests and
examples run without external data.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BagOfWords", "TextPipeline", "make_sentiment_corpus"]

_POSITIVE = ("great", "excellent", "wonderful", "loved", "amazing", "perfect")
_NEGATIVE = ("terrible", "awful", "boring", "hated", "poor", "disappointing")
_NEUTRAL = (
    "the", "movie", "film", "plot", "acting", "was", "a", "with", "story",
    "and", "ending", "character", "scene", "music", "i", "it", "very",
)


def make_sentiment_corpus(
    n: int = 300, length: int = 12, seed: int = 0
) -> tuple[list[str], np.ndarray]:
    """Synthetic movie-review-like documents with sentiment labels.

    Positive documents mix neutral filler with positive cue words and
    vice versa; cue density controls difficulty.
    """
    rng = np.random.default_rng(seed)
    docs: list[str] = []
    labels = (rng.random(n) < 0.5).astype(int)
    for label in labels:
        cues = _POSITIVE if label == 1 else _NEGATIVE
        words = []
        for __ in range(length):
            if rng.random() < 0.25:
                words.append(cues[rng.integers(0, len(cues))])
            else:
                words.append(_NEUTRAL[rng.integers(0, len(_NEUTRAL))])
        docs.append(" ".join(words))
    return docs, labels


class BagOfWords:
    """Term-frequency vectorizer over a whitespace-token vocabulary."""

    def fit(self, documents: list[str]) -> "BagOfWords":
        vocabulary: set[str] = set()
        for doc in documents:
            vocabulary.update(doc.split())
        self.vocabulary_ = sorted(vocabulary)
        self._index = {w: i for i, w in enumerate(self.vocabulary_)}
        return self

    def transform(self, documents: list[str]) -> np.ndarray:
        if not hasattr(self, "vocabulary_"):
            raise RuntimeError("call fit() first")
        X = np.zeros((len(documents), len(self.vocabulary_)))
        for row, doc in enumerate(documents):
            for word in doc.split():
                col = self._index.get(word)
                if col is not None:
                    X[row, col] += 1.0
        return X

    def fit_transform(self, documents: list[str]) -> np.ndarray:
        return self.fit(documents).transform(documents)


class TextPipeline:
    """Vectorizer + classifier exposed as ``predict_fn(list[str])``."""

    def __init__(self, model_factory) -> None:
        self.model_factory = model_factory
        self.vectorizer = BagOfWords()

    def fit(self, documents: list[str], labels: np.ndarray) -> "TextPipeline":
        X = self.vectorizer.fit_transform(documents)
        self.model_ = self.model_factory()
        self.model_.fit(X, np.asarray(labels).ravel())
        return self

    def predict_proba_docs(self, documents: list[str]) -> np.ndarray:
        """P(class 1) for each document — LIME-text's query interface."""
        X = self.vectorizer.transform(documents)
        return self.model_.predict_proba(X)[:, 1]

    def score(self, documents: list[str], labels: np.ndarray) -> float:
        X = self.vectorizer.transform(documents)
        return self.model_.score(X, np.asarray(labels).ravel())
