"""Rule-based query planner for the provenance-aware mini engine.

Pipelines over :class:`~repro.db.relation.Relation` (select / project /
join / union) are captured as a logical tree by :class:`Query`, rewritten
by a small set of rules, and lowered to a physical plan:

* **predicate pushdown** — conjuncts of a selection move below joins
  (to the side whose schema covers them), below projections (when they
  only touch projected columns), and into both branches of a union;
  opaque callables never move.
* **access-path selection** — a selection sitting directly on a base
  relation picks the cheapest index that serves one conjunct: an
  equality predicate probes a :class:`~repro.db.index.HashIndex`, a
  range predicate becomes a :class:`~repro.db.index.SortIndex` bisect
  window (interval-window shrinking: two binary searches bound the
  scan), negated equalities/ranges read the complement. Remaining
  conjuncts run as a residual filter over the (already small) slice.
* **join strategy** — a join whose right input is a base relation runs
  index-nested-loop against that relation's persistent hash index;
  otherwise it is a hash join (the naive ``Relation.join``, which
  builds an ephemeral hash table on its right input). Joins with no
  shared columns degenerate to the cartesian product keyed on the
  empty tuple, annotations still combined by ⊗.

Every physical plan is **answer-equivalent to the naive path**: same
rows, same order, same multiplicities, same semiring annotations.
:meth:`Query.legacy_execute` runs the unoptimized operator pipeline and
is kept forever as the differential-test oracle
(``tests/test_db_index_equivalence.py``), the same pattern the engine
and batch layers use. ``explain_plan()`` renders the physical tree as
text; ~8 representative renderings are frozen as goldens
(``tests/goldens/db_plans.json``).

Index usage is reported through ``repro.obs`` (``db.index.hits`` /
``db.index.misses``) and disabled entirely by ``REPRO_DB_INDEX=0``.
"""

from __future__ import annotations

from typing import Callable

from .index import index_enabled, record_hit, record_miss
from .relation import Relation

__all__ = [
    "Predicate",
    "Eq",
    "Range",
    "And",
    "Not",
    "Opaque",
    "as_predicate",
    "Query",
    "matching_indices",
]


# -- structured predicates -----------------------------------------------------


def _fmt(value) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return repr(value)
    return f"{value:g}"


class Predicate:
    """A boolean predicate over a row's dict view.

    Structured subclasses expose which columns they touch, which is what
    lets the planner push them around and serve them from indexes; an
    :class:`Opaque` wrapper carries any plain callable (never optimized,
    always equivalent).
    """

    def __call__(self, row: dict) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def columns(self) -> set[str] | None:
        """Referenced columns, or None when unknown (opaque)."""
        return None


class Eq(Predicate):
    """``column == value`` — hash-index servable."""

    def __init__(self, column: str, value) -> None:
        self.column = column
        self.value = value

    def __call__(self, row: dict) -> bool:
        return row[self.column] == self.value

    def describe(self) -> str:
        return f"{self.column} = {self.value!r}"

    def columns(self) -> set[str]:
        return {self.column}


class Range(Predicate):
    """A ``lo < column <= hi`` style window — sort-index servable.

    Either bound may be None/±inf (one-sided window); closedness is per
    bound and defaults to the half-open quartile convention.
    """

    def __init__(self, column: str, lo=None, hi=None, *,
                 lo_closed: bool = False, hi_closed: bool = True) -> None:
        self.column = column
        self.lo = lo
        self.hi = hi
        self.lo_closed = lo_closed
        self.hi_closed = hi_closed

    def __call__(self, row: dict) -> bool:
        value = row[self.column]
        if self.lo is not None:
            if self.lo_closed:
                if not self.lo <= value:
                    return False
            elif not self.lo < value:
                return False
        if self.hi is not None:
            if self.hi_closed:
                if not value <= self.hi:
                    return False
            elif not value < self.hi:
                return False
        return True

    def describe(self) -> str:
        parts = []
        if self.lo is not None:
            parts.append(f"{_fmt(self.lo)} {'<=' if self.lo_closed else '<'}")
        parts.append(self.column)
        if self.hi is not None:
            parts.append(f"{'<=' if self.hi_closed else '<'} {_fmt(self.hi)}")
        return " ".join(parts)

    def columns(self) -> set[str]:
        return {self.column}


class And(Predicate):
    """Conjunction; the planner splits it into independent conjuncts."""

    def __init__(self, *parts) -> None:
        self.parts = [as_predicate(p) for p in parts]

    def __call__(self, row: dict) -> bool:
        return all(p(row) for p in self.parts)

    def describe(self) -> str:
        return " AND ".join(p.describe() for p in self.parts)

    def columns(self) -> set[str] | None:
        out: set[str] = set()
        for p in self.parts:
            cols = p.columns()
            if cols is None:
                return None
            out |= cols
        return out


class Not(Predicate):
    """Negation; indexable when the inner predicate is (complement)."""

    def __init__(self, part) -> None:
        self.part = as_predicate(part)

    def __call__(self, row: dict) -> bool:
        return not self.part(row)

    def describe(self) -> str:
        return f"NOT ({self.part.describe()})"

    def columns(self) -> set[str] | None:
        return self.part.columns()


class Opaque(Predicate):
    """Any plain callable — never pushed, never indexed."""

    def __init__(self, fn: Callable[[dict], bool],
                 description: str = "<opaque predicate>") -> None:
        self.fn = fn
        self.description = description

    def __call__(self, row: dict) -> bool:
        return self.fn(row)

    def describe(self) -> str:
        return self.description

    def columns(self) -> None:
        return None


def as_predicate(predicate) -> Predicate:
    if isinstance(predicate, Predicate):
        return predicate
    return Opaque(predicate)


def _conjuncts(predicate: Predicate) -> list[Predicate]:
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for part in predicate.parts:
            out.extend(_conjuncts(part))
        return out
    return [predicate]


def _recombine(conjuncts: list[Predicate]) -> Predicate | None:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(*conjuncts)


# -- logical tree --------------------------------------------------------------


class _Scan:
    def __init__(self, relation: Relation) -> None:
        self.relation = relation

    def schema(self) -> list[str]:
        return list(self.relation.columns)


class _Select:
    def __init__(self, child, predicate: Predicate,
                 pushed: bool = False) -> None:
        self.child = child
        self.predicate = predicate
        self.pushed = pushed

    def schema(self) -> list[str]:
        return self.child.schema()


class _Project:
    def __init__(self, child, columns: list[str]) -> None:
        self.child = child
        self.columns = list(columns)

    def schema(self) -> list[str]:
        return list(self.columns)


class _Join:
    def __init__(self, left, right) -> None:
        self.left = left
        self.right = right

    def schema(self) -> list[str]:
        left = self.left.schema()
        return left + [c for c in self.right.schema() if c not in left]


class _Union:
    def __init__(self, left, right) -> None:
        self.left = left
        self.right = right

    def schema(self) -> list[str]:
        return self.left.schema()


# -- rewrite rules -------------------------------------------------------------


def _push_selects(node):
    """Push selection conjuncts as deep as their columns allow."""
    if isinstance(node, _Scan):
        return node
    if isinstance(node, _Project):
        return _Project(_push_selects(node.child), node.columns)
    if isinstance(node, _Join):
        return _Join(_push_selects(node.left), _push_selects(node.right))
    if isinstance(node, _Union):
        return _Union(_push_selects(node.left), _push_selects(node.right))
    child = _push_selects(node.child)
    conjuncts = _conjuncts(node.predicate)
    if isinstance(child, _Join):
        left_schema = set(child.left.schema())
        right_schema = set(child.right.schema())
        to_left, to_right, keep = [], [], []
        for part in conjuncts:
            cols = part.columns()
            if cols is not None and cols <= left_schema:
                to_left.append(part)
            elif cols is not None and cols <= right_schema:
                to_right.append(part)
            else:
                keep.append(part)
        left, right = child.left, child.right
        if to_left:
            left = _push_selects(
                _Select(left, _recombine(to_left), pushed=True)
            )
        if to_right:
            right = _push_selects(
                _Select(right, _recombine(to_right), pushed=True)
            )
        out = _Join(left, right)
        residual = _recombine(keep)
        return _Select(out, residual, node.pushed) if residual else out
    if isinstance(child, _Project):
        cols = node.predicate.columns()
        if cols is not None and cols <= set(child.columns):
            pushed = _push_selects(
                _Select(child.child, node.predicate, pushed=True)
            )
            return _Project(pushed, child.columns)
    if isinstance(child, _Union):
        cols = node.predicate.columns()
        if cols is not None:
            return _Union(
                _push_selects(
                    _Select(child.left, node.predicate, pushed=True)
                ),
                _push_selects(
                    _Select(child.right, node.predicate, pushed=True)
                ),
            )
    return _Select(child, node.predicate, node.pushed)


# -- index access paths --------------------------------------------------------


def _servable(relation: Relation, conjunct: Predicate):
    """(kind, spec) when an index can serve the conjunct, else None."""
    if isinstance(conjunct, Eq):
        return ("hash-eq", conjunct)
    if isinstance(conjunct, Range):
        if relation.indexes.sort_index(conjunct.column) is not None:
            return ("sort-range", conjunct)
        return None
    if isinstance(conjunct, Not):
        inner = conjunct.part
        if isinstance(inner, Eq):
            return ("hash-complement", inner)
        if isinstance(inner, Range):
            if relation.indexes.sort_index(inner.column) is not None:
                return ("sort-complement", inner)
    return None


def _conjunct_ids(relation: Relation, kind: str, spec) -> list[int]:
    """Ascending row ids served by the chosen index access path."""
    if kind == "hash-eq":
        return list(
            relation.indexes.hash_index((spec.column,)).lookup((spec.value,))
        )
    if kind == "hash-complement":
        hit = set(
            relation.indexes.hash_index((spec.column,)).lookup((spec.value,))
        )
        return [i for i in range(len(relation)) if i not in hit]
    index = relation.indexes.sort_index(spec.column)
    if index is None:  # values mutated to unorderable since planning
        record_miss()
        cols = relation.columns
        check = spec if kind == "sort-range" else Not(spec)
        return [
            i for i, row in enumerate(relation.rows)
            if check(dict(zip(cols, row)))
        ]
    ids = index.range_ids(spec.lo, spec.hi, lo_closed=spec.lo_closed,
                          hi_closed=spec.hi_closed)
    if kind == "sort-range":
        return ids
    hit = set(ids)
    return [i for i in range(len(relation)) if i not in hit]


def _access_path(relation: Relation, predicate: Predicate):
    """Pick one index-servable conjunct; the rest become the residual.

    Returns ``(kind, spec, residual, structured)`` — kind None when the
    plan must fall back to a filter scan; ``structured`` says whether
    any conjunct looked indexable (a countable miss on fallback).
    """
    conjuncts = _conjuncts(predicate)
    structured = any(c.columns() is not None for c in conjuncts)
    if not index_enabled():
        return None, None, None, structured
    for at, conjunct in enumerate(conjuncts):  # prefer equality probes
        if isinstance(conjunct, Eq):
            rest = conjuncts[:at] + conjuncts[at + 1:]
            return "hash-eq", conjunct, _recombine(rest), structured
    for at, conjunct in enumerate(conjuncts):
        served = _servable(relation, conjunct)
        if served is not None:
            rest = conjuncts[:at] + conjuncts[at + 1:]
            return served[0], served[1], _recombine(rest), structured
    return None, None, None, structured


_ACCESS_LABEL = {
    "hash-eq": "hash index",
    "hash-complement": "hash index (complement)",
    "sort-range": "sort index",
    "sort-complement": "sort index (complement)",
}


def matching_indices(relation: Relation, predicate) -> list[int]:
    """Ascending row ids of ``relation`` satisfying ``predicate``.

    The index-served entry point the why-not tracer and complaint scopes
    use; equivalent to filtering ``enumerate(relation.rows)`` and
    counted as a ``db.index`` hit or miss.
    """
    predicate = as_predicate(predicate)
    kind, spec, residual, __ = _access_path(relation, predicate)
    cols = relation.columns
    if kind is None:
        record_miss()
        return [
            i for i, row in enumerate(relation.rows)
            if predicate(dict(zip(cols, row)))
        ]
    record_hit()
    ids = _conjunct_ids(relation, kind, spec)
    if residual is None:
        return ids
    return [
        i for i in ids if residual(dict(zip(cols, relation.rows[i])))
    ]


# -- physical plan -------------------------------------------------------------


class _PhysicalNode:
    children: list

    def execute(self) -> Relation:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class _ScanNode(_PhysicalNode):
    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self.children = []

    def execute(self) -> Relation:
        return self.relation

    def describe(self) -> str:
        return (f"scan {self.relation.name} "
                f"({len(self.relation)} rows)")


class _FilterNode(_PhysicalNode):
    def __init__(self, child: _PhysicalNode, predicate: Predicate,
                 pushed: bool = False, countable_miss: bool = False) -> None:
        self.child = child
        self.predicate = predicate
        self.pushed = pushed
        self.countable_miss = countable_miss
        self.children = [child]

    def execute(self) -> Relation:
        if self.countable_miss:
            record_miss()
        return self.child.execute().select(self.predicate)

    def describe(self) -> str:
        note = " (pushed down)" if self.pushed else ""
        return f"select {self.predicate.describe()} via filter scan{note}"


class _IndexSelectNode(_PhysicalNode):
    def __init__(self, relation: Relation, kind: str, spec,
                 residual: Predicate | None, pushed: bool = False) -> None:
        self.relation = relation
        self.kind = kind
        self.spec = spec
        self.residual = residual
        self.pushed = pushed
        self.children = [_ScanNode(relation)]

    def execute(self) -> Relation:
        record_hit()
        ids = _conjunct_ids(self.relation, self.kind, self.spec)
        out = self.relation.subset(ids)
        if self.residual is not None:
            out = out.select(self.residual)
        return out

    def describe(self) -> str:
        access = (f"{_ACCESS_LABEL[self.kind]} on "
                  f"{self.relation.name}({self.spec.column})")
        shown = (self.spec.describe() if self.kind in
                 ("hash-eq", "sort-range")
                 else f"NOT ({self.spec.describe()})")
        note = f", residual: {self.residual.describe()}" if self.residual \
            else ""
        pushed = " (pushed down)" if self.pushed else ""
        return f"select {shown} via {access}{note}{pushed}"


class _HashJoinNode(_PhysicalNode):
    def __init__(self, left: _PhysicalNode, right: _PhysicalNode,
                 shared: list[str]) -> None:
        self.left = left
        self.right = right
        self.shared = shared
        self.children = [left, right]

    def execute(self) -> Relation:
        return self.left.execute().join(self.right.execute())

    def describe(self) -> str:
        return (f"join on ({', '.join(self.shared)}) — hash join "
                f"(ephemeral build on right)")


class _IndexJoinNode(_PhysicalNode):
    """Index-nested-loop: probe the right base relation's persistent
    hash index per left row. Output order matches the naive join (left
    order outer, ascending postings inner)."""

    def __init__(self, left: _PhysicalNode, right: Relation,
                 shared: list[str]) -> None:
        self.left = left
        self.right = right
        self.shared = shared
        self.children = [left, _ScanNode(right)]

    def execute(self) -> Relation:
        left = self.left.execute()
        right = self.right
        record_hit()
        index = right.indexes.hash_index(tuple(self.shared))
        my_shared = [left._col(c) for c in self.shared]
        other_only = [c for c in right.columns if c not in self.shared]
        their_rest = [right._col(c) for c in other_only]
        out_rows, out_annotations = [], []
        for row, annotation in zip(left.rows, left.annotations):
            key = tuple(row[i] for i in my_shared)
            for j in index.lookup(key):
                out_rows.append(
                    row + tuple(right.rows[j][i] for i in their_rest)
                )
                out_annotations.append(
                    left.semiring.times(annotation, right.annotations[j])
                )
        return Relation(left.columns + other_only, out_rows, left.semiring,
                        out_annotations, f"{left.name}⋈{right.name}")

    def describe(self) -> str:
        return (f"join on ({', '.join(self.shared)}) — index-nested-loop "
                f"(persistent hash index on "
                f"{self.right.name}({', '.join(self.shared)}))")


class _CartesianNode(_PhysicalNode):
    def __init__(self, left: _PhysicalNode, right: _PhysicalNode) -> None:
        self.left = left
        self.right = right
        self.children = [left, right]

    def execute(self) -> Relation:
        return self.left.execute().join(self.right.execute())

    def describe(self) -> str:
        return ("join on () — cartesian product "
                "(no shared columns, ⊗ on empty key)")


class _ProjectNode(_PhysicalNode):
    def __init__(self, child: _PhysicalNode, columns: list[str]) -> None:
        self.child = child
        self.columns = columns
        self.children = [child]

    def execute(self) -> Relation:
        return self.child.execute().project(self.columns)

    def describe(self) -> str:
        return (f"project [{', '.join(self.columns)}] "
                f"(duplicates merged by ⊕)")


class _UnionNode(_PhysicalNode):
    def __init__(self, left: _PhysicalNode, right: _PhysicalNode) -> None:
        self.left = left
        self.right = right
        self.children = [left, right]

    def execute(self) -> Relation:
        return self.left.execute().union(self.right.execute())

    def describe(self) -> str:
        return "union (set semantics, duplicates merged by ⊕)"


def _lower(node) -> _PhysicalNode:
    """Lower the rewritten logical tree to physical operators."""
    if isinstance(node, _Scan):
        return _ScanNode(node.relation)
    if isinstance(node, _Select):
        if isinstance(node.child, _Scan):
            relation = node.child.relation
            kind, spec, residual, structured = _access_path(
                relation, node.predicate
            )
            if kind is not None:
                return _IndexSelectNode(relation, kind, spec, residual,
                                        pushed=node.pushed)
            return _FilterNode(_ScanNode(relation), node.predicate,
                               pushed=node.pushed,
                               countable_miss=structured)
        return _FilterNode(_lower(node.child), node.predicate,
                           pushed=node.pushed)
    if isinstance(node, _Project):
        return _ProjectNode(_lower(node.child), node.columns)
    if isinstance(node, _Union):
        return _UnionNode(_lower(node.left), _lower(node.right))
    left_schema = node.left.schema()
    right_schema = node.right.schema()
    shared = [c for c in left_schema if c in right_schema]
    left = _lower(node.left)
    if not shared:
        return _CartesianNode(left, _lower(node.right))
    if isinstance(node.right, _Scan) and index_enabled():
        return _IndexJoinNode(left, node.right.relation, shared)
    return _HashJoinNode(left, _lower(node.right), shared)


def _render(node: _PhysicalNode) -> str:
    lines = [node.describe()]

    def walk(children: list, prefix: str) -> None:
        for at, child in enumerate(children):
            last = at == len(children) - 1
            branch = "└─ " if last else "├─ "
            lines.append(prefix + branch + child.describe())
            walk(child.children, prefix + ("   " if last else "│  "))

    walk(node.children, "")
    return "\n".join(lines)


# -- the query builder ---------------------------------------------------------


class Query:
    """A logical pipeline over relations, planned before execution.

    Build with chained ``select`` / ``project`` / ``join`` / ``union``
    (immutable — each returns a new query), then ``execute()`` for the
    planned result, ``explain_plan()`` for the physical-plan text, or
    ``legacy_execute()`` for the naive oracle path.
    """

    def __init__(self, relation: Relation | None = None, *, _root=None
                 ) -> None:
        if _root is not None:
            self._root = _root
        elif relation is not None:
            self._root = _Scan(relation)
        else:
            raise ValueError("Query needs a relation")

    def select(self, predicate) -> "Query":
        return Query(_root=_Select(self._root, as_predicate(predicate)))

    def project(self, columns: list[str]) -> "Query":
        return Query(_root=_Project(self._root, columns))

    def join(self, other) -> "Query":
        return Query(_root=_Join(self._root, self._as_node(other)))

    def union(self, other) -> "Query":
        return Query(_root=_Union(self._root, self._as_node(other)))

    @staticmethod
    def _as_node(other):
        return other._root if isinstance(other, Query) else _Scan(other)

    def plan(self) -> _PhysicalNode:
        return _lower(_push_selects(self._root))

    def execute(self) -> Relation:
        return self.plan().execute()

    def explain_plan(self) -> str:
        return _render(self.plan())

    def legacy_execute(self) -> Relation:
        """The unoptimized pipeline — the differential-test oracle."""
        return self._naive(self._root)

    @classmethod
    def _naive(cls, node) -> Relation:
        if isinstance(node, _Scan):
            return node.relation
        if isinstance(node, _Select):
            return cls._naive(node.child).select(node.predicate)
        if isinstance(node, _Project):
            return cls._naive(node.child).project(node.columns)
        if isinstance(node, _Union):
            return cls._naive(node.left).union(cls._naive(node.right))
        return cls._naive(node.left).join(cls._naive(node.right))
