"""Data-management side of XAI (§3): provenance, query explanation,
tuple Shapley, complaint-driven debugging."""

from .bias import (
    BiasReport,
    detect_simpsons_paradox,
    group_difference,
    stratified_difference,
)
from .complaints import (
    Complaint,
    ComplaintDebugger,
    legacy_scope_from_relation,
    scope_from_relation,
)
from .index import (
    HashIndex,
    IntervalIndex,
    LineageSupportIndex,
    ProvenanceDAG,
    RelationIndexes,
    SortIndex,
    index_enabled,
)
from .planner import (
    And,
    Eq,
    Not,
    Opaque,
    Predicate,
    Query,
    Range,
    as_predicate,
    matching_indices,
)
from .provenance import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    Semiring,
    WhySemiring,
)
from .query_explain import (
    PredicateExplanation,
    explain_aggregate,
    legacy_explain_aggregate,
)
from .repair import FunctionalDependency, greedy_repair, repair_responsibility
from .relation import Relation
from .tuple_shapley import shapley_of_tuples
from .why_not import QueryStep, WhyNotResult, legacy_why_not, why_not

__all__ = [
    "Relation",
    "RelationIndexes",
    "HashIndex",
    "SortIndex",
    "ProvenanceDAG",
    "IntervalIndex",
    "LineageSupportIndex",
    "index_enabled",
    "Query",
    "Predicate",
    "Eq",
    "Range",
    "And",
    "Not",
    "Opaque",
    "as_predicate",
    "matching_indices",
    "Semiring",
    "BooleanSemiring",
    "CountingSemiring",
    "WhySemiring",
    "LineageSemiring",
    "shapley_of_tuples",
    "FunctionalDependency",
    "repair_responsibility",
    "greedy_repair",
    "explain_aggregate",
    "legacy_explain_aggregate",
    "PredicateExplanation",
    "Complaint",
    "scope_from_relation",
    "legacy_scope_from_relation",
    "BiasReport",
    "detect_simpsons_paradox",
    "group_difference",
    "stratified_difference",
    "QueryStep",
    "WhyNotResult",
    "why_not",
    "legacy_why_not",
    "ComplaintDebugger",
]
