"""Data-management side of XAI (§3): provenance, query explanation,
tuple Shapley, complaint-driven debugging."""

from .bias import (
    BiasReport,
    detect_simpsons_paradox,
    group_difference,
    stratified_difference,
)
from .complaints import Complaint, ComplaintDebugger
from .provenance import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    Semiring,
    WhySemiring,
)
from .query_explain import PredicateExplanation, explain_aggregate
from .repair import FunctionalDependency, greedy_repair, repair_responsibility
from .relation import Relation
from .tuple_shapley import shapley_of_tuples
from .why_not import QueryStep, WhyNotResult, why_not

__all__ = [
    "Relation",
    "Semiring",
    "BooleanSemiring",
    "CountingSemiring",
    "WhySemiring",
    "LineageSemiring",
    "shapley_of_tuples",
    "FunctionalDependency",
    "repair_responsibility",
    "greedy_repair",
    "explain_aggregate",
    "PredicateExplanation",
    "Complaint",
    "BiasReport",
    "detect_simpsons_paradox",
    "group_difference",
    "stratified_difference",
    "QueryStep",
    "WhyNotResult",
    "why_not",
    "ComplaintDebugger",
]
