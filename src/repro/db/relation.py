"""A miniature provenance-aware relational engine.

Just enough of a database to exercise the Section-3 research directions
on real algorithmic structure: relations carry per-tuple annotations from
any :class:`repro.db.provenance.Semiring`, and the operators (selection,
projection, natural join, union, group-by aggregation) propagate them by
the standard semiring rules — selection keeps annotations, projection ⊕s
merged duplicates, join ⊗s the participants.

Rows are plain tuples over a named schema; values are arbitrary hashable
Python objects (strings, numbers).

Since the index/planner PR each relation also carries a lazy
:class:`repro.db.index.RelationIndexes` container (``.indexes``). The
invalidation protocol: ``insert``/``delete`` maintain built indexes
incrementally; any other in-place mutation of ``rows``/``annotations``
must call :meth:`Relation.invalidate_indexes`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from .index import RelationIndexes
from .provenance import Semiring, WhySemiring

__all__ = ["Relation"]


class Relation:
    """An annotated relation.

    Parameters
    ----------
    columns:
        Attribute names.
    rows:
        Tuples of values, one per attribute.
    semiring:
        Annotation domain (why-provenance by default).
    annotations:
        Per-row annotations; when omitted, rows are tagged as base tuples
        with ids ``name:i``.
    name:
        Relation name used in auto-generated tuple ids.
    """

    def __init__(
        self,
        columns: list[str],
        rows: list[tuple],
        semiring: Semiring | None = None,
        annotations: list | None = None,
        name: str = "R",
    ) -> None:
        self.columns = list(columns)
        self.rows = [tuple(r) for r in rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row {row} does not match schema {self.columns}"
                )
        self.semiring = semiring or WhySemiring()
        self.name = name
        if annotations is None:
            annotations = [
                self.semiring.tag(f"{name}:{i}") for i in range(len(self.rows))
            ]
        if len(annotations) != len(self.rows):
            raise ValueError("annotations do not match rows")
        self.annotations = list(annotations)
        self._indexes: RelationIndexes | None = None
        self._tag_counter = len(self.rows)

    # -- helpers ---------------------------------------------------------------

    def _col(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(
                f"relation {self.name!r} has no column {column!r}; "
                f"available columns: {self.columns}"
            ) from None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"Relation({self.name}, columns={self.columns}, n={len(self)})"

    # -- indexes & mutation ----------------------------------------------------

    @property
    def indexes(self) -> RelationIndexes:
        """Lazy per-relation index container (see :mod:`repro.db.index`)."""
        if self._indexes is None:
            self._indexes = RelationIndexes(self)
        return self._indexes

    def invalidate_indexes(self) -> None:
        """Drop built indexes after an out-of-band mutation."""
        if self._indexes is not None:
            self._indexes.invalidate()

    def insert(self, row, annotation=None) -> int:
        """Append one tuple, maintaining built indexes incrementally.

        Returns the new row id. When ``annotation`` is omitted the row
        is tagged as a fresh base tuple (ids never reuse a deleted
        tuple's tag).
        """
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row {row} does not match schema {self.columns}"
            )
        if annotation is None:
            annotation = self.semiring.tag(f"{self.name}:{self._tag_counter}")
        self._tag_counter += 1
        self.rows.append(row)
        self.annotations.append(annotation)
        if self._indexes is not None:
            self._indexes.on_insert(len(self.rows) - 1, row)
        return len(self.rows) - 1

    def delete(self, index: int) -> tuple:
        """Remove the tuple at ``index``; built indexes are patched in
        place (posting removal + id shifts), not rebuilt."""
        row = self.rows.pop(index)
        self.annotations.pop(index)
        if self._indexes is not None:
            self._indexes.on_delete(index, row)
        return row

    def subset(self, indices) -> "Relation":
        """O(k) sub-relation of the given row ids (shared schema and
        semiring, validation skipped — rows are already schema-checked)."""
        out = Relation.__new__(Relation)
        out.columns = list(self.columns)
        out.rows = [self.rows[i] for i in indices]
        out.semiring = self.semiring
        out.annotations = [self.annotations[i] for i in indices]
        out.name = self.name
        out._indexes = None
        out._tag_counter = len(out.rows)
        return out

    # -- operators ------------------------------------------------------------------

    def select(self, predicate: Callable[[dict], bool]) -> "Relation":
        """σ: keep rows satisfying ``predicate`` (given as a dict view)."""
        kept_rows, kept_annotations = [], []
        for row, annotation in zip(self.rows, self.annotations):
            if predicate(dict(zip(self.columns, row))):
                kept_rows.append(row)
                kept_annotations.append(annotation)
        return Relation(self.columns, kept_rows, self.semiring,
                        kept_annotations, self.name)

    def project(self, columns: list[str]) -> "Relation":
        """π with set semantics: duplicate results merge annotations by ⊕."""
        indices = [self._col(c) for c in columns]
        merged: dict[tuple, object] = {}
        order: list[tuple] = []
        for row, annotation in zip(self.rows, self.annotations):
            projected = tuple(row[i] for i in indices)
            if projected in merged:
                merged[projected] = self.semiring.plus(
                    merged[projected], annotation
                )
            else:
                merged[projected] = annotation
                order.append(projected)
        return Relation(columns, order, self.semiring,
                        [merged[r] for r in order], self.name)

    def join(self, other: "Relation") -> "Relation":
        """Natural join; matching pairs ⊗ their annotations."""
        shared = [c for c in self.columns if c in other.columns]
        other_only = [c for c in other.columns if c not in shared]
        my_shared = [self._col(c) for c in shared]
        their_shared = [other._col(c) for c in shared]
        their_rest = [other._col(c) for c in other_only]
        index: dict[tuple, list[int]] = defaultdict(list)
        for j, row in enumerate(other.rows):
            index[tuple(row[i] for i in their_shared)].append(j)
        out_rows, out_annotations = [], []
        for row, annotation in zip(self.rows, self.annotations):
            key = tuple(row[i] for i in my_shared)
            for j in index.get(key, []):
                out_rows.append(
                    row + tuple(other.rows[j][i] for i in their_rest)
                )
                out_annotations.append(
                    self.semiring.times(annotation, other.annotations[j])
                )
        return Relation(self.columns + other_only, out_rows, self.semiring,
                        out_annotations, f"{self.name}⋈{other.name}")

    def union(self, other: "Relation") -> "Relation":
        """∪ with set semantics: duplicates across operands merge by ⊕."""
        if self.columns != other.columns:
            raise ValueError("union requires identical schemas")
        combined = Relation(
            self.columns,
            self.rows + other.rows,
            self.semiring,
            self.annotations + other.annotations,
            f"{self.name}∪{other.name}",
        )
        return combined.project(self.columns)

    def group_by(
        self,
        keys: list[str],
        aggregate: str,
        column: str | None = None,
    ) -> "Relation":
        """γ: grouping with ``count``/``sum``/``avg``/``min``/``max``.

        The result's annotation per group is the ⊕ of member annotations
        — for why-provenance, the witnesses that put the group in the
        output. (Aggregate *values* need richer semimodule provenance;
        the tuple-Shapley module quantifies value contributions instead.)
        """
        if aggregate not in ("count", "sum", "avg", "min", "max"):
            raise ValueError(f"unknown aggregate {aggregate!r}")
        if aggregate != "count" and column is None:
            raise ValueError(f"{aggregate} needs a column")
        key_idx = [self._col(c) for c in keys]
        val_idx = self._col(column) if column is not None else None
        groups: dict[tuple, list[int]] = defaultdict(list)
        order: list[tuple] = []
        for i, row in enumerate(self.rows):
            key = tuple(row[j] for j in key_idx)
            if key not in groups:
                order.append(key)
            groups[key].append(i)
        out_rows, out_annotations = [], []
        for key in order:
            members = groups[key]
            if aggregate == "count":
                value = len(members)
            else:
                values = [self.rows[i][val_idx] for i in members]
                if aggregate == "sum":
                    value = sum(values)
                elif aggregate == "avg":
                    value = sum(values) / len(values)
                elif aggregate == "min":
                    value = min(values)
                else:
                    value = max(values)
            annotation = self.annotations[members[0]]
            for i in members[1:]:
                annotation = self.semiring.plus(annotation, self.annotations[i])
            out_rows.append(key + (value,))
            out_annotations.append(annotation)
        agg_name = f"{aggregate}({column or '*'})"
        return Relation(keys + [agg_name], out_rows, self.semiring,
                        out_annotations, f"γ({self.name})")
