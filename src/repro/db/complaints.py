"""Complaint-driven training-data debugging (Rain) [Wu et al. 2020].

The Section-3 system the tutorial highlights: a SQL aggregate is computed
over the *predictions* of an ML model ("Query 2.0"), a user files a
complaint — "this aggregate should be lower/higher" — and the system
ranks training points by their responsibility for the complaint, using
influence functions through the relaxed (probabilistic) query.

Pipeline reproduced here:

1. the aggregate ``Σ_{rows in scope} 1[f(x) = 1]`` is relaxed to
   ``Σ P_θ(y = 1 | x)``, making it differentiable in the model
   parameters θ;
2. the complaint gradient ∇_θ(aggregate) feeds the influence-function
   machinery: responsibility(z_i) = ∇aggᵀ H⁻¹ ∇ℓ(z_i) estimates how much
   deleting training point z_i moves the aggregate;
3. deleting the top-ranked points and retraining measures the fix rate —
   the paper's evaluation protocol, reproduced in E20.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..influence.influence_functions import InfluenceFunctions
from ..models.logistic import LogisticRegression, sigmoid
from .planner import matching_indices

__all__ = [
    "Complaint",
    "ComplaintDebugger",
    "scope_from_relation",
    "legacy_scope_from_relation",
]


def scope_from_relation(relation, predicate) -> np.ndarray:
    """Boolean scope mask over a serving :class:`Relation`.

    The SQL ``WHERE`` of the complained-about query, served through the
    planner's index access paths (:func:`repro.db.planner.matching_indices`)
    when the predicate is structured.
    """
    mask = np.zeros(len(relation), dtype=bool)
    mask[matching_indices(relation, predicate)] = True
    return mask


def legacy_scope_from_relation(relation, predicate) -> np.ndarray:
    """Full-scan scope mask — the differential-test oracle."""
    mask = np.zeros(len(relation), dtype=bool)
    for i, row in enumerate(relation.rows):
        mask[i] = bool(predicate(dict(zip(relation.columns, row))))
    return mask


@dataclass
class Complaint:
    """A user complaint about a count-style aggregate over predictions.

    ``scope`` selects the queried rows of the serving set; ``direction``
    says which way the aggregate should move ("lower": the count is too
    high, "higher": too low).
    """

    scope: np.ndarray
    direction: str = "lower"

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher"):
            raise ValueError("direction must be 'lower' or 'higher'")
        self.scope = np.asarray(self.scope, dtype=bool).ravel()

    @classmethod
    def from_relation(cls, relation, predicate,
                      direction: str = "lower") -> "Complaint":
        """Scope the complaint by a predicate over a serving relation
        (index-served for structured predicates)."""
        return cls(scope_from_relation(relation, predicate), direction)


class ComplaintDebugger:
    """Rank training points by responsibility for a complaint.

    Parameters
    ----------
    model:
        Fitted :class:`LogisticRegression` (the Query-2.0 model).
    X_train, y_train:
        Its training data — the debugging target.
    X_serve:
        The rows the SQL query runs over.
    """

    def __init__(
        self,
        model: LogisticRegression,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_serve: np.ndarray,
        damping: float = 0.0,
    ) -> None:
        self.model = model
        self.X_train = np.atleast_2d(np.asarray(X_train, dtype=float))
        self.y_train = np.asarray(y_train).ravel()
        self.X_serve = np.atleast_2d(np.asarray(X_serve, dtype=float))
        self._influence = InfluenceFunctions(
            model, self.X_train, self.y_train, damping=damping
        )

    def aggregate(self, complaint: Complaint, relaxed: bool = False) -> float:
        """The complained-about count (hard) or its relaxation (soft)."""
        rows = self.X_serve[complaint.scope]
        proba = self.model.predict_proba(rows)[:, 1]
        if relaxed:
            return float(proba.sum())
        return float((proba >= 0.5).sum())

    def _aggregate_gradient(self, complaint: Complaint) -> np.ndarray:
        """∇_θ Σ_scope σ(θᵀx) = Σ σ(1−σ)·[x, 1]."""
        rows = self.X_serve[complaint.scope]
        z = self.model.decision_function(rows)
        p = sigmoid(z)
        weights = p * (1.0 - p)
        Xb = np.hstack([rows, np.ones((rows.shape[0], 1))])
        return (weights[:, None] * Xb).sum(axis=0)

    def rank_training_points(self, complaint: Complaint) -> np.ndarray:
        """Training indices, most responsible first.

        Responsibility of z_i = predicted change of the relaxed aggregate
        if z_i were deleted, signed so that points whose deletion moves
        the aggregate in the complained direction rank first.
        """
        agg_grad = self._aggregate_gradient(complaint)
        s = self._influence.inverse_hvp(agg_grad)
        # Deleting i moves θ by +H⁻¹∇ℓ(z_i); aggregate change ≈ ∇aggᵀΔθ.
        deltas = self._influence._train_grads @ s
        if complaint.direction == "lower":
            return np.argsort(deltas)  # most negative effect first
        return np.argsort(-deltas)

    def fix_rate(
        self,
        complaint: Complaint,
        ranking: np.ndarray,
        k: int,
        model_factory,
    ) -> dict[str, float]:
        """Delete the top-k ranked points, retrain, re-evaluate.

        Returns the aggregate before/after and the achieved movement —
        the paper's headline measurement.
        """
        before = self.aggregate(complaint)
        keep = np.delete(np.arange(self.X_train.shape[0]), ranking[:k])
        retrained = model_factory().fit(self.X_train[keep], self.y_train[keep])
        rows = self.X_serve[complaint.scope]
        after = float((retrained.predict_proba(rows)[:, 1] >= 0.5).sum())
        moved = before - after if complaint.direction == "lower" else after - before
        return {"before": before, "after": after, "movement": moved, "k": k}
