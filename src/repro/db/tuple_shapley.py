"""The Shapley value of tuples in query answering [Livshits, Bertossi,
Kimelfeld & Sebag 2021].

Database tuples are split into *endogenous* (whose contribution we want
to quantify) and *exogenous* (fixed context). The value of a coalition S
of endogenous tuples is the query's answer on the database containing
S plus all exogenous tuples; the Shapley value of a tuple is then its
average marginal contribution to the answer — a numeric "responsibility"
for numerical and Boolean queries alike.

Exact computation enumerates sub-databases (exponential — the paper's
hardness results are about exactly this), and the permutation sampler
gives the FPRAS-style approximation the paper proposes for the hard
cases. E19 compares both.

The game itself is a :class:`repro.games.TupleProvenanceGame`; run
through the shared evaluator (``engine=True``, the default) coalition
values are memoized in the packed-bit cache, which matters because
exact enumeration and permutation walks revisit sub-databases
constantly. ``engine=False`` keeps the pre-games uncached path for the
E39 before/after comparison.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..games.adapters import TupleProvenanceGame
from ..games.engine import game_value_function
from ..shapley.exact import exact_shapley
from ..shapley.sampling import permutation_shapley
from .relation import Relation

__all__ = ["shapley_of_tuples"]


def _database_value_fn(
    relation: Relation,
    endogenous: list[int],
    query: Callable[[Relation], float],
):
    """Batched v(masks) rebuilding the relation per coalition."""
    endogenous_set = set(endogenous)
    exogenous = [i for i in range(len(relation)) if i not in endogenous_set]

    def v(masks: np.ndarray) -> np.ndarray:
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        out = np.zeros(masks.shape[0])
        for row, mask in enumerate(masks):
            keep = sorted(
                exogenous + [endogenous[j] for j in range(len(endogenous))
                             if mask[j]]
            )
            # subset() skips schema re-validation per coalition — the
            # hot allocation of exact enumeration / permutation walks.
            out[row] = float(query(relation.subset(keep)))
        return out

    return v


def shapley_of_tuples(
    relation: Relation,
    query: Callable[[Relation], float],
    endogenous: list[int] | None = None,
    method: str = "auto",
    n_permutations: int = 200,
    seed: int = 0,
    engine: bool = True,
    backend: str | None = None,
    n_procs: int | None = None,
) -> dict[int, float]:
    """Shapley value of each endogenous tuple for a numeric query.

    Parameters
    ----------
    relation:
        The (single-table) database; for multi-table queries, pass the
        fact table here and close over the dimension tables in ``query``.
    query:
        Maps a sub-relation to a number (a Boolean query returns 0/1).
    endogenous:
        Tuple indices to value; all tuples by default.
    method:
        ``"exact"`` (≤ 16 endogenous tuples), ``"sampling"``, or
        ``"auto"`` — exact when feasible.
    engine:
        ``True`` (default) evaluates coalitions through the shared games
        evaluator (packed-bit cache + telemetry); ``False`` keeps the
        pre-games uncached value function.
    backend:
        Execution backend (:mod:`repro.exec`); sub-database evaluations
        shard across workers on the engine path (bitwise-identical
        values), and the query re-evaluation loop is pure Python, so the
        ``process`` backend is where large relations actually scale.

    Returns
    -------
    ``{tuple_index: shapley_value}``. Values sum to
    query(full) − query(exogenous only) by efficiency.
    """
    if endogenous is None:
        endogenous = list(range(len(relation)))
    n = len(endogenous)
    if method == "auto":
        method = "exact" if n <= 16 else "sampling"
    if engine:
        # The estimators receive the game itself (not a pre-built value
        # function): the game carries the deterministic/shardable
        # capabilities the exec backend gates on, and resolves to the
        # identical evaluator path inside the estimator.
        v = TupleProvenanceGame(relation, query, endogenous)
    else:
        v = _database_value_fn(relation, endogenous, query)
    if method == "exact":
        phi = exact_shapley(v, n, backend=backend, n_procs=n_procs)
    elif method == "sampling":
        phi, __ = permutation_shapley(
            v, n, n_permutations=n_permutations, seed=seed,
            backend=backend, n_procs=n_procs,
        )
    else:
        raise ValueError(f"unknown method {method!r}")
    return {endogenous[j]: float(phi[j]) for j in range(n)}
