"""OLAP bias detection and resolution (HypDB-style) [Salimi et al. 2018,
cited as the §3 line on detecting and explaining bias in OLAP queries].

A group-by average ("what is the outcome rate per treatment group?") can
reverse sign once a confounder is controlled for — Simpson's paradox.
HypDB detects such bias, explains it by exhibiting the confounder, and
resolves it by reporting the *adjusted* (stratified, covariate-weighted)
estimate instead of the naive aggregate. Reproduced here:

* :func:`group_difference` — the naive aggregate contrast,
* :func:`stratified_difference` — per-stratum contrasts and the
  adjustment-formula estimate Σ_s P(s) · (E[y|t=1, s] − E[y|t=0, s]),
* :func:`detect_simpsons_paradox` — flags sign reversals between the
  naive and adjusted views and ranks candidate confounders by how much
  conditioning on them moves the estimate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .relation import Relation

__all__ = [
    "group_difference",
    "stratified_difference",
    "detect_simpsons_paradox",
    "BiasReport",
]


def _binary_groups(relation: Relation, treatment: str) -> tuple:
    values = sorted({row[treatment] for row in relation.to_dicts()},
                    key=repr)
    if len(values) != 2:
        raise ValueError(
            f"treatment {treatment!r} must be binary, found {values}"
        )
    return values[0], values[1]


def group_difference(
    relation: Relation, treatment: str, outcome: str
) -> float:
    """Naive contrast: E[outcome | t=high] − E[outcome | t=low]."""
    low, high = _binary_groups(relation, treatment)
    rows = relation.to_dicts()
    high_values = [r[outcome] for r in rows if r[treatment] == high]
    low_values = [r[outcome] for r in rows if r[treatment] == low]
    if not high_values or not low_values:
        raise ValueError("a treatment group is empty")
    return float(np.mean(high_values) - np.mean(low_values))


def stratified_difference(
    relation: Relation, treatment: str, outcome: str, confounder: str
) -> tuple[float, dict]:
    """Adjustment-formula contrast controlling for ``confounder``.

    Returns ``(adjusted, per_stratum)`` where ``per_stratum`` maps each
    confounder value to its within-stratum contrast (None when a stratum
    lacks one of the groups — such strata are excluded from the
    adjustment and their weight renormalized).
    """
    low, high = _binary_groups(relation, treatment)
    rows = relation.to_dicts()
    strata: dict = defaultdict(lambda: {"high": [], "low": []})
    for r in rows:
        bucket = "high" if r[treatment] == high else "low"
        strata[r[confounder]][bucket].append(r[outcome])
    per_stratum: dict = {}
    adjusted = 0.0
    total_weight = 0
    for value, groups in strata.items():
        size = len(groups["high"]) + len(groups["low"])
        if groups["high"] and groups["low"]:
            contrast = float(
                np.mean(groups["high"]) - np.mean(groups["low"])
            )
            per_stratum[value] = contrast
            adjusted += size * contrast
            total_weight += size
        else:
            per_stratum[value] = None
    if total_weight == 0:
        raise ValueError("no stratum contains both treatment groups")
    return adjusted / total_weight, per_stratum


@dataclass
class BiasReport:
    """Outcome of a Simpson's-paradox scan for one candidate confounder."""

    confounder: str
    naive: float
    adjusted: float
    reversal: bool
    shift: float
    per_stratum: dict

    def __str__(self) -> str:
        marker = "REVERSAL" if self.reversal else "shift"
        return (
            f"{self.confounder}: naive {self.naive:+.4g} -> adjusted "
            f"{self.adjusted:+.4g} ({marker}, |Δ|={self.shift:.4g})"
        )


def detect_simpsons_paradox(
    relation: Relation,
    treatment: str,
    outcome: str,
    candidate_confounders: list[str],
) -> list[BiasReport]:
    """Scan candidate confounders for sign reversals of the contrast.

    Returns one report per candidate, sorted reversals-first then by how
    far the adjusted estimate moved — HypDB's "explain the bias" output.
    """
    naive = group_difference(relation, treatment, outcome)
    reports = []
    for confounder in candidate_confounders:
        adjusted, per_stratum = stratified_difference(
            relation, treatment, outcome, confounder
        )
        reversal = bool(np.sign(adjusted) != np.sign(naive)
                        and abs(adjusted) > 1e-12 and abs(naive) > 1e-12)
        reports.append(BiasReport(
            confounder=confounder,
            naive=naive,
            adjusted=adjusted,
            reversal=reversal,
            shift=abs(adjusted - naive),
            per_stratum=per_stratum,
        ))
    return sorted(reports, key=lambda r: (not r.reversal, -r.shift))
