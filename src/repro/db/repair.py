"""Shapley-value explanations for data repair [Deutch, Frost, Gilad &
Sheffer 2021] (§3, "Explanations in Databases").

Given integrity constraints — here functional dependencies X → Y — a
dirty relation violates them through specific tuples. The cited work
ranks tuples by their Shapley contribution to the *inconsistency* of the
database, explaining "which tuples are responsible for the violations"
and prioritizing repairs. Reproduced pieces:

* :class:`FunctionalDependency` with violation counting (the
  inconsistency measure: number of violating tuple pairs),
* :func:`repair_responsibility` — Shapley value of each tuple in the
  inconsistency game (reusing the tuple-Shapley machinery),
* :func:`greedy_repair` — delete tuples in responsibility order until
  consistency, the repair policy the explanation motivates, compared in
  tests/benchmarks against naive orderings.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .index import index_enabled, record_hit
from .relation import Relation
from .tuple_shapley import shapley_of_tuples

__all__ = ["FunctionalDependency", "repair_responsibility", "greedy_repair"]


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``lhs → rhs`` over attribute names.

    Violation checks group tuples by their LHS key. The main path reads
    the relation's persistent hash index on the LHS columns (maintained
    incrementally across ``greedy_repair`` deletions); the original
    full-scan implementations are kept as ``legacy_*`` oracles.
    """

    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __str__(self) -> str:
        return f"{','.join(self.lhs)} -> {','.join(self.rhs)}"

    def _key_groups(self, relation: Relation):
        """LHS-key groups (ascending member row ids) via the hash index."""
        record_hit()
        return relation.indexes.hash_index(self.lhs).groups()

    def violations(self, relation: Relation) -> int:
        """Number of unordered tuple pairs violating the FD."""
        if not index_enabled():
            return self.legacy_violations(relation)
        rhs_idx = [relation._col(c) for c in self.rhs]
        total = 0
        for __, members in self._key_groups(relation):
            value_counts: dict[tuple, int] = defaultdict(int)
            for i in members:
                value_counts[
                    tuple(relation.rows[i][j] for j in rhs_idx)
                ] += 1
            counts = list(value_counts.values())
            group_size = sum(counts)
            same = sum(c * (c - 1) // 2 for c in counts)
            total += group_size * (group_size - 1) // 2 - same
        return total

    def violating_tuples(self, relation: Relation) -> set[int]:
        """Indices of tuples participating in at least one violation."""
        if not index_enabled():
            return self.legacy_violating_tuples(relation)
        rhs_idx = [relation._col(c) for c in self.rhs]
        out: set[int] = set()
        for __, members in self._key_groups(relation):
            distinct = {
                tuple(relation.rows[i][j] for j in rhs_idx)
                for i in members
            }
            if len(distinct) > 1:
                out.update(members)
        return out

    def legacy_violations(self, relation: Relation) -> int:
        """Full-scan violation count — the differential-test oracle."""
        lhs_idx = [relation._col(c) for c in self.lhs]
        rhs_idx = [relation._col(c) for c in self.rhs]
        groups: dict[tuple, dict[tuple, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for row in relation.rows:
            key = tuple(row[i] for i in lhs_idx)
            value = tuple(row[i] for i in rhs_idx)
            groups[key][value] += 1
        total = 0
        for value_counts in groups.values():
            counts = list(value_counts.values())
            group_size = sum(counts)
            same = sum(c * (c - 1) // 2 for c in counts)
            total += group_size * (group_size - 1) // 2 - same
        return total

    def legacy_violating_tuples(self, relation: Relation) -> set[int]:
        """Full-scan violating-tuple set — the differential-test oracle."""
        lhs_idx = [relation._col(c) for c in self.lhs]
        rhs_idx = [relation._col(c) for c in self.rhs]
        by_key: dict[tuple, list[int]] = defaultdict(list)
        for i, row in enumerate(relation.rows):
            by_key[tuple(row[j] for j in lhs_idx)].append(i)
        out: set[int] = set()
        for members in by_key.values():
            values = {
                i: tuple(relation.rows[i][j] for j in rhs_idx)
                for i in members
            }
            distinct = set(values.values())
            if len(distinct) > 1:
                out.update(members)
        return out


def _total_violations(relation: Relation,
                      dependencies: list[FunctionalDependency]) -> float:
    return float(sum(fd.violations(relation) for fd in dependencies))


def repair_responsibility(
    relation: Relation,
    dependencies: list[FunctionalDependency],
    method: str = "auto",
    n_permutations: int = 200,
    seed: int = 0,
    engine: bool = True,
) -> dict[int, float]:
    """Shapley value of each tuple in the inconsistency game.

    The game value of a sub-database is its total violation count, so a
    tuple's value is its average marginal contribution to inconsistency —
    high values mark the tuples whose removal pacifies the most
    violations. Values sum to the dirty database's violation count.
    Only tuples involved in some violation are endogenous (clean tuples
    provably have value 0 and are fixed as context). The inconsistency
    game runs through the shared games evaluator (``engine=True``), so
    repeated sub-databases hit the coalition cache instead of recounting
    violations.
    """
    involved: set[int] = set()
    for fd in dependencies:
        involved |= fd.violating_tuples(relation)
    if not involved:
        return {}
    values = shapley_of_tuples(
        relation,
        lambda sub: _total_violations(sub, dependencies),
        endogenous=sorted(involved),
        method=method,
        n_permutations=n_permutations,
        seed=seed,
        engine=engine,
    )
    return values


def greedy_repair(
    relation: Relation,
    dependencies: list[FunctionalDependency],
    ranking: list[int] | None = None,
    **responsibility_kwargs,
) -> tuple[Relation, list[int]]:
    """Delete tuples (most responsible first) until the FDs hold.

    Returns the repaired relation and the deleted tuple indices. A
    ``ranking`` may be supplied to evaluate alternative repair orders;
    by default the Shapley responsibility ordering is used, recomputed
    after each deletion is unnecessary because deletions only shrink the
    game (re-ranking is an easy extension).
    """
    if ranking is None:
        responsibility = repair_responsibility(
            relation, dependencies, **responsibility_kwargs
        )
        ranking = sorted(responsibility, key=lambda i: -responsibility[i])
    keep = list(range(len(relation)))
    deleted: list[int] = []
    # One O(k) copy up front; each deletion then mutates it in place and
    # the FD hash indexes are maintained incrementally (no rebuild).
    current = relation.subset(keep)

    for candidate in ranking:
        if _total_violations(current, dependencies) == 0:
            break
        # Deleting a tuple that no longer violates anything is wasted
        # repair budget: skip it (earlier deletions may have pacified it).
        position = {original: local for local, original in enumerate(keep)}
        if candidate not in position:
            continue
        still_violating: set[int] = set()
        for fd in dependencies:
            still_violating |= fd.violating_tuples(current)
        if position[candidate] not in still_violating:
            continue
        current.delete(position[candidate])
        keep = [i for i in keep if i != candidate]
        deleted.append(candidate)
    return current, deleted
