"""Relational and provenance indexes for the mini engine (ROADMAP item 2).

The XPath-accelerator idea applied to provenance: instead of answering
"which tuples support this output" with full lineage walks, derivation
forests are **interval-encoded** — every node occurrence gets a
``(pre, post)`` interval from a DFS numbering, so

* the descendant closure of a node (its *lineage*) is a contiguous
  slice of the pre-sorted occurrence table — a sorted-interval range
  scan instead of a recursive walk,
* ancestor/containment checks ("does output o depend on base tuple
  t?") are O(log n) binary searches instead of O(n) traversals, and
* "which outputs does this base tuple support" resolves each
  occurrence to its covering root by one ``bisect`` into the root
  interval table.

DAG nodes shared by several parents are handled by *occurrence
expansion*: each (node, parent-slot) pair receives its own interval,
and a node maps to the list of its occurrences. Closure queries prune
with ``subtree_size`` — leaf occurrences and occurrences whose interval
is already covered by a scanned window are skipped, which is the
window-shrinking trick of the accelerator papers.

Incremental maintenance keeps single-tuple changes cheap: a leaf insert
allocates a fresh interval inside its parent's remaining **gap** (pre /
post numbers are floats, so no renumbering pass), and a delete is a
tombstone plus an O(depth) ``subtree_size`` fixup — the index is never
rebuilt for a single-tuple change (``compact()`` reclaims tombstones
when fragmentation passes 50%). E45 measures incremental maintenance
against the full rebuild.

The relational side gets :class:`HashIndex` (equality postings) and
:class:`SortIndex` (bisect range scans), built lazily per
:class:`~repro.db.relation.Relation` through :class:`RelationIndexes`
and maintained through ``Relation.insert`` / ``Relation.delete``.
The rule-based planner (:mod:`repro.db.planner`) is the only consumer
that chooses between them and the naive scans.

Telemetry (``repro.obs`` counters): ``db.index.hits`` / ``misses``
(index-served vs fallback lookups), ``db.index.builds``,
``db.index.maintained`` (incremental updates applied),
``db.index.invalidations``, and ``db.index.tombstones``. Kill switch:
``REPRO_DB_INDEX=0`` makes every consumer take the naive path.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right

from ..obs import metrics

__all__ = [
    "index_enabled",
    "HashIndex",
    "SortIndex",
    "SortIndexUnavailable",
    "RelationIndexes",
    "ProvenanceDAG",
    "IntervalIndex",
    "IntervalBlowupError",
    "LineageSupportIndex",
    "legacy_descendants",
    "legacy_ancestors",
    "legacy_supports",
]

_HITS = "db.index.hits"
_MISSES = "db.index.misses"
_BUILDS = "db.index.builds"
_MAINTAINED = "db.index.maintained"
_INVALIDATIONS = "db.index.invalidations"
_TOMBSTONES = "db.index.tombstones"


def index_enabled() -> bool:
    """``REPRO_DB_INDEX=0`` disables every index acceleration path."""
    return os.environ.get("REPRO_DB_INDEX", "1") != "0"


def record_hit(n: int = 1) -> None:
    metrics.counter(_HITS).inc(n)


def record_miss(n: int = 1) -> None:
    metrics.counter(_MISSES).inc(n)


# -- relational indexes --------------------------------------------------------


class SortIndexUnavailable(TypeError):
    """The column's values are not mutually orderable (mixed types)."""


class HashIndex:
    """Equality postings ``key -> sorted row ids`` over one or more columns.

    Postings keep ascending row order, so index-served selections and
    index-nested-loop joins emit rows in exactly the order the naive
    scans would — the planner's equivalence contract.
    """

    __slots__ = ("columns", "_positions", "_postings")

    def __init__(self, relation, columns) -> None:
        self.columns = tuple(columns)
        self._positions = [relation._col(c) for c in self.columns]
        postings: dict = {}
        for i, row in enumerate(relation.rows):
            postings.setdefault(self.key_of(row), []).append(i)
        self._postings = postings
        metrics.counter(_BUILDS).inc()

    def key_of(self, row) -> tuple:
        return tuple(row[j] for j in self._positions)

    def lookup(self, key) -> list[int]:
        """Ascending row ids matching ``key`` (do not mutate)."""
        return self._postings.get(tuple(key), [])

    def groups(self):
        """``(key, ascending row ids)`` pairs, insertion-ordered."""
        return self._postings.items()

    # -- incremental maintenance (no re-hash of unaffected rows) -----------

    def on_insert(self, i: int, row) -> None:
        self._postings.setdefault(self.key_of(row), []).append(i)
        metrics.counter(_MAINTAINED).inc()

    def on_delete(self, i: int, row) -> None:
        key = self.key_of(row)
        ids = self._postings.get(key, [])
        at = bisect_left(ids, i)
        if at < len(ids) and ids[at] == i:
            ids.pop(at)
        if not ids:
            self._postings.pop(key, None)
        # Row ids after the deleted position shift down by one; fixing
        # pointers is cheaper than re-reading and re-hashing every row.
        for ids in self._postings.values():
            at = bisect_right(ids, i)
            for k in range(at, len(ids)):
                ids[k] -= 1
        metrics.counter(_MAINTAINED).inc()


class SortIndex:
    """Bisect range scans over one orderable column.

    Answers ``lo < x <= hi`` windows (any bound optional / closed) with
    two binary searches plus a slice; ids are re-sorted ascending so the
    output order matches the naive filter scan.
    """

    __slots__ = ("column", "_position", "_keys", "_ids")

    def __init__(self, relation, column: str) -> None:
        self.column = column
        self._position = relation._col(column)
        try:
            pairs = sorted(
                (row[self._position], i)
                for i, row in enumerate(relation.rows)
            )
        except TypeError as exc:
            raise SortIndexUnavailable(
                f"column {column!r} mixes unorderable types"
            ) from exc
        self._keys = [k for k, __ in pairs]
        self._ids = [i for __, i in pairs]
        metrics.counter(_BUILDS).inc()

    def range_ids(self, lo=None, hi=None, *, lo_closed: bool = False,
                  hi_closed: bool = True) -> list[int]:
        """Ascending row ids with value in the (lo, hi] style window."""
        left = 0
        if lo is not None and lo != float("-inf"):
            left = (bisect_left if lo_closed else bisect_right)(
                self._keys, lo
            )
        right = len(self._keys)
        if hi is not None and hi != float("inf"):
            right = (bisect_right if hi_closed else bisect_left)(
                self._keys, hi
            )
        return sorted(self._ids[left:right])

    def eq_ids(self, value) -> list[int]:
        return self.range_ids(value, value, lo_closed=True, hi_closed=True)

    def on_insert(self, i: int, row) -> None:
        value = row[self._position]
        try:
            at = bisect_right(self._keys, value)
        except TypeError as exc:
            raise SortIndexUnavailable(
                f"column {self.column!r} mixes unorderable types"
            ) from exc
        self._keys.insert(at, value)
        self._ids.insert(at, i)
        metrics.counter(_MAINTAINED).inc()

    def on_delete(self, i: int, row) -> None:
        value = row[self._position]
        at = bisect_left(self._keys, value)
        while at < len(self._keys) and self._ids[at] != i:
            at += 1
        if at < len(self._keys):
            self._keys.pop(at)
            self._ids.pop(at)
        self._ids = [k - 1 if k > i else k for k in self._ids]
        metrics.counter(_MAINTAINED).inc()


class RelationIndexes:
    """Lazy index container attached to one :class:`Relation`.

    Indexes are built on first use, kept across queries, and maintained
    incrementally by ``Relation.insert`` / ``Relation.delete``. Any
    out-of-band mutation must call ``Relation.invalidate_indexes()`` —
    that is the invalidation protocol, and it is counted
    (``db.index.invalidations``).
    """

    def __init__(self, relation) -> None:
        self._relation = relation
        self._hash: dict[tuple, HashIndex] = {}
        self._sort: dict[str, SortIndex] = {}
        self._sort_failed: set[str] = set()

    def hash_index(self, columns) -> HashIndex:
        key = tuple(columns)
        found = self._hash.get(key)
        if found is None:
            found = self._hash[key] = HashIndex(self._relation, key)
        return found

    def sort_index(self, column: str) -> SortIndex | None:
        """The column's sort index, or None when values are unorderable."""
        if column in self._sort_failed:
            return None
        found = self._sort.get(column)
        if found is None:
            try:
                found = self._sort[column] = SortIndex(
                    self._relation, column
                )
            except SortIndexUnavailable:
                self._sort_failed.add(column)
                return None
        return found

    def on_insert(self, i: int, row) -> None:
        for index in self._hash.values():
            index.on_insert(i, row)
        for column in list(self._sort):
            try:
                self._sort[column].on_insert(i, row)
            except SortIndexUnavailable:
                del self._sort[column]
                self._sort_failed.add(column)
                metrics.counter(_INVALIDATIONS).inc()

    def on_delete(self, i: int, row) -> None:
        for index in self._hash.values():
            index.on_delete(i, row)
        for index in self._sort.values():
            index.on_delete(i, row)

    def invalidate(self) -> None:
        n = len(self._hash) + len(self._sort)
        self._hash.clear()
        self._sort.clear()
        self._sort_failed.clear()
        if n:
            metrics.counter(_INVALIDATIONS).inc(n)


# -- provenance / lineage ------------------------------------------------------


class ProvenanceDAG:
    """A derivation DAG: derived nodes point at the nodes they consume.

    Node ids are arbitrary hashables (base tuples use the ``"R:i"`` tag
    convention). Acyclic by construction: a node's children must already
    be registered (unknown children are auto-registered as leaves).
    """

    def __init__(self) -> None:
        self._children: dict = {}
        self._parents: dict = {}
        self._order: list = []

    def add_node(self, node, children=()) -> None:
        if node in self._children:
            raise ValueError(f"duplicate node {node!r}")
        children = tuple(children)
        for child in children:
            if child not in self._children:
                self._children[child] = ()
                self._parents[child] = []
                self._order.append(child)
            self._parents[child].append(node)
        self._children[node] = children
        self._parents.setdefault(node, [])
        self._order.append(node)

    def children(self, node) -> tuple:
        return self._children[node]

    def parents(self, node) -> list:
        return self._parents.get(node, [])

    @property
    def nodes(self) -> list:
        return list(self._order)

    def __contains__(self, node) -> bool:
        return node in self._children

    def __len__(self) -> int:
        return len(self._order)

    def is_leaf(self, node) -> bool:
        return not self._children[node]

    def roots(self) -> list:
        return [n for n in self._order if not self._parents.get(n)]

    @classmethod
    def from_relation(cls, relation, prefix: str = "out") -> "ProvenanceDAG":
        """Two-level forest: one node per output row over its lineage.

        Annotations must carry base-tuple ids — the Why semiring
        (witness sets) or the Lineage semiring (flat sets). Output row
        ``i`` becomes node ``"<prefix>:i"``.
        """
        dag = cls()
        for i, annotation in enumerate(relation.annotations):
            dag.add_node(f"{prefix}:{i}", _lineage_ids(annotation))
        return dag


def _lineage_ids(annotation) -> list:
    """Sorted base ids of a Why or Lineage annotation.

    Pure why-provenance (every member a witness frozenset) flattens to
    the union of witnesses; anything else keeps members as-is, matching
    the naive tracer's ``set(annotation)`` membership semantics exactly
    (mixed-semiring joins can interleave ids with witness sets).
    """
    if not annotation:
        return []
    members = list(annotation)
    if members and all(isinstance(m, frozenset) for m in members):
        flat: set = set()
        for witness in members:
            flat |= witness
        members = list(flat)
    try:
        return sorted(members)
    except TypeError:
        return sorted(members, key=repr)


class IntervalBlowupError(RuntimeError):
    """Occurrence expansion exceeded the configured cap (pathological
    DAG sharing); callers should fall back to the naive walks."""


class _Occ:
    """One occurrence of a node in the expanded derivation forest."""

    __slots__ = ("node", "pre", "post", "parent", "subtree", "alloc",
                 "alive")

    def __init__(self, node, pre, post, parent) -> None:
        self.node = node
        self.pre = pre
        self.post = post
        self.parent = parent       # occurrence id of the parent, or -1
        self.subtree = 1           # alive occurrences in this subtree
        self.alloc = pre           # high-water mark for gap allocation
        self.alive = True


def _default_max_occurrences(n_nodes: int) -> int:
    raw = os.environ.get("REPRO_DB_INTERVAL_MAX_OCC")
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return max(8 * n_nodes, 1024)


class IntervalIndex:
    """Pre/post-order interval encoding of a :class:`ProvenanceDAG`.

    The DAG is expanded into a forest (one occurrence per parent slot,
    capped at ``max_occurrences``), DFS-numbered with float coordinates
    so single-tuple inserts allocate inside gaps instead of renumbering.
    All queries skip tombstoned occurrences.
    """

    def __init__(self, dag: ProvenanceDAG, max_occurrences: int | None = None
                 ) -> None:
        self.dag = dag
        self._cap = (max_occurrences if max_occurrences is not None
                     else _default_max_occurrences(len(dag)))
        self._build()
        metrics.counter(_BUILDS).inc()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        self._occs: list[_Occ] = []
        self._node_occs: dict = {}
        self._by_pre: list[tuple[float, int]] = []
        self._dead = 0
        counter = 0.0
        for root in self.dag.roots():
            counter = self._number(root, -1, counter)
        self._by_pre = sorted(
            (occ.pre, oid) for oid, occ in enumerate(self._occs)
        )
        self._roots = sorted(
            (occ.pre, oid) for oid, occ in enumerate(self._occs)
            if occ.parent == -1
        )

    def _number(self, node, parent: int, counter: float) -> float:
        """Recursive-free DFS assigning pre/post and subtree sizes."""
        # (node, parent occurrence id, state) explicit stack; state is
        # the iterator over remaining children.
        oid = self._new_occ(node, counter, parent)
        counter += 1.0
        stack = [(oid, iter(self.dag.children(node)))]
        while stack:
            top_oid, children = stack[-1]
            child = next(children, None)
            if child is None:
                occ = self._occs[top_oid]
                occ.post = counter
                # Free float region for future leaf inserts: past every
                # existing child's post, strictly before our own post.
                occ.alloc = counter - 1.0
                counter += 1.0
                stack.pop()
                if occ.parent >= 0:
                    self._occs[occ.parent].subtree += occ.subtree
                continue
            child_oid = self._new_occ(child, counter, top_oid)
            counter += 1.0
            stack.append((child_oid, iter(self.dag.children(child))))
        return counter

    def _new_occ(self, node, pre: float, parent: int) -> int:
        if len(self._occs) >= self._cap:
            raise IntervalBlowupError(
                f"occurrence expansion exceeded {self._cap} "
                f"(REPRO_DB_INTERVAL_MAX_OCC) for a DAG of "
                f"{len(self.dag)} nodes"
            )
        oid = len(self._occs)
        occ = _Occ(node, pre, pre, parent)
        self._occs.append(occ)
        self._node_occs.setdefault(node, []).append(oid)
        return oid

    # -- introspection -----------------------------------------------------

    @property
    def n_occurrences(self) -> int:
        return len(self._occs) - self._dead

    @property
    def fragmentation(self) -> float:
        return self._dead / max(len(self._occs), 1)

    def interval_of(self, node) -> list[tuple[float, float]]:
        """The (pre, post] windows of the node's alive occurrences."""
        return [
            (self._occs[oid].pre, self._occs[oid].post)
            for oid in self._node_occs.get(node, [])
            if self._occs[oid].alive
        ]

    def subtree_size(self, node) -> int:
        return sum(
            self._occs[oid].subtree
            for oid in self._node_occs.get(node, [])
            if self._occs[oid].alive
        )

    # -- queries (sorted-interval range scans) -----------------------------

    def _alive_occs(self, node) -> list[_Occ]:
        return [
            self._occs[oid] for oid in self._node_occs.get(node, [])
            if self._occs[oid].alive
        ]

    def descendants(self, node) -> set:
        """Every node strictly below ``node`` — one contiguous range
        scan per occurrence, with ``subtree_size`` pruning (leaf
        occurrences skipped, windows covered by an earlier scan
        skipped)."""
        out: set = set()
        covered: list[tuple[float, float]] = []
        occs = sorted(self._alive_occs(node), key=lambda o: -o.subtree)
        for occ in occs:
            if occ.subtree <= 1:
                continue  # leaf occurrence: nothing below
            if any(lo < occ.pre and occ.post <= hi for lo, hi in covered):
                continue  # window already scanned
            lo = bisect_right(self._by_pre, (occ.pre, len(self._occs)))
            hi = bisect_left(self._by_pre, (occ.post, -1))
            for __, oid in self._by_pre[lo:hi]:
                sub = self._occs[oid]
                if sub.alive:
                    out.add(sub.node)
            covered.append((occ.pre, occ.post))
        out.discard(node)
        return out

    def lineage(self, node) -> set:
        """Base (leaf) nodes supporting ``node``."""
        found = self.descendants(node)
        if not found and self._alive_occs(node) and self.dag.is_leaf(node):
            return set()
        return {n for n in found if self.dag.is_leaf(n)}

    def ancestors(self, node) -> set:
        """Every node strictly above any occurrence of ``node``."""
        out: set = set()
        for occ in self._alive_occs(node):
            parent = occ.parent
            while parent >= 0:
                above = self._occs[parent]
                if above.alive:
                    out.add(above.node)
                parent = above.parent
        out.discard(node)
        return out

    def is_ancestor(self, above, below) -> bool:
        """Interval containment: some occurrence of ``below`` falls in
        some (pre, post] window of ``above`` — two binary searches."""
        below_pres = sorted(
            occ.pre for occ in self._alive_occs(below)
        )
        if not below_pres:
            return False
        for occ in self._alive_occs(above):
            if occ.subtree <= 1:
                continue
            at = bisect_right(below_pres, occ.pre)
            if at < len(below_pres) and below_pres[at] < occ.post:
                return True
        return False

    def supports(self, base_node) -> list:
        """Roots (query outputs) whose derivation uses ``base_node``.

        Each occurrence binary-searches the root interval table for its
        covering root — O(occurrences x log roots), no DAG walk.
        """
        out: list = []
        seen: set = set()
        for occ in self._alive_occs(base_node):
            at = bisect_right(self._roots, (occ.pre, len(self._occs))) - 1
            if at < 0:
                continue
            __, root_oid = self._roots[at]
            root = self._occs[root_oid]
            if root.alive and root.pre <= occ.pre < root.post:
                if root.node not in seen:
                    seen.add(root.node)
                    out.append(root.node)
        return out

    # -- incremental maintenance ------------------------------------------

    def insert_leaf(self, parent, node) -> None:
        """Attach a new base tuple under ``parent`` without renumbering.

        Every alive occurrence of ``parent`` receives a child interval
        allocated inside its remaining (alloc, post) gap — O(depth +
        log n) per parent occurrence, against the O(n) full rebuild.
        """
        if node in self.dag:
            raise ValueError(f"node {node!r} already indexed")
        occs = self._node_occs.get(parent)
        if not occs:
            raise KeyError(f"unknown parent {parent!r}")
        self.dag._children[parent] = self.dag.children(parent) + (node,)
        self.dag._children[node] = ()
        self.dag._parents.setdefault(node, []).append(parent)
        self.dag._parents.setdefault(parent, [])
        self.dag._order.append(node)
        # Gap exhaustion: repeated inserts under one parent shrink its
        # float gap geometrically; once it nears ulp, renumber (the
        # accelerator papers renumber locally — a full compact keeps
        # this simple and stays amortized O(1) per ~25 inserts).
        for oid in occs:
            occ = self._occs[oid]
            if occ.alive and (occ.post - occ.alloc) < max(
                abs(occ.post), 1.0
            ) * 1e-12:
                self.compact()
                metrics.counter(_MAINTAINED).inc()
                return
        for oid in list(occs):
            occ = self._occs[oid]
            if not occ.alive:
                continue
            gap = occ.post - occ.alloc
            pre = occ.alloc + gap / 3.0
            post = occ.alloc + 2.0 * gap / 3.0
            occ.alloc = post
            child_oid = len(self._occs)
            child = _Occ(node, pre, post, oid)
            self._occs.append(child)
            self._node_occs.setdefault(node, []).append(child_oid)
            at = bisect_left(self._by_pre, (pre, child_oid))
            self._by_pre.insert(at, (pre, child_oid))
            walk = oid
            while walk >= 0:
                self._occs[walk].subtree += 1
                walk = self._occs[walk].parent
        metrics.counter(_MAINTAINED).inc()

    def delete_leaf(self, node) -> None:
        """Tombstone a base tuple's occurrences (no renumbering)."""
        if not self.dag.is_leaf(node):
            raise ValueError(f"{node!r} is not a leaf; delete its "
                             "subtree instead")
        occs = self._node_occs.get(node, [])
        for oid in occs:
            occ = self._occs[oid]
            if not occ.alive:
                continue
            occ.alive = False
            self._dead += 1
            walk = occ.parent
            while walk >= 0:
                self._occs[walk].subtree -= 1
                walk = self._occs[walk].parent
        for parent in self.dag.parents(node):
            self.dag._children[parent] = tuple(
                c for c in self.dag.children(parent) if c != node
            )
        self.dag._children.pop(node, None)
        self.dag._parents.pop(node, None)
        self.dag._order.remove(node)
        metrics.counter(_TOMBSTONES).inc(len(occs))
        if self.fragmentation > 0.5:
            self.compact()

    def compact(self) -> None:
        """Rebuild from the (mutated) DAG, reclaiming tombstones."""
        self._build()


class LineageSupportIndex:
    """Interval index over one relation's output-to-base derivations.

    The ``why_not`` tracer asks, per pipeline stage, "does base tuple i
    still support some output?" — here that is a sorted-interval lookup
    (:meth:`supports`) instead of unioning every annotation.
    """

    def __init__(self, relation, prefix: str = "out") -> None:
        self._interval = IntervalIndex(
            ProvenanceDAG.from_relation(relation, prefix=prefix)
        )

    def supports(self, base_id) -> list:
        """Output node ids whose lineage contains ``base_id``."""
        return self._interval.supports(base_id)

    def alive(self, base_id) -> bool:
        return bool(self._interval.supports(base_id))


# -- naive oracles (kept forever for the differential tests / E45) -------------


def legacy_descendants(dag: ProvenanceDAG, node) -> set:
    """Recursive set-building walk — the pre-index implementation."""
    out: set = set()
    stack = list(dag.children(node))
    while stack:
        current = stack.pop()
        if current in out:
            continue
        out.add(current)
        stack.extend(dag.children(current))
    return out


def legacy_ancestors(dag: ProvenanceDAG, node) -> set:
    """Full walk over parent edges."""
    out: set = set()
    stack = list(dag.parents(node))
    while stack:
        current = stack.pop()
        if current in out:
            continue
        out.add(current)
        stack.extend(dag.parents(current))
    return out


def legacy_supports(dag: ProvenanceDAG, base_node) -> list:
    """O(n) scan: DFS every root's subtree looking for the base tuple."""
    out: list = []
    for root in dag.roots():
        if root == base_node or base_node in legacy_descendants(dag, root):
            out.append(root)
    return out
