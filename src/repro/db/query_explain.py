"""Intervention-based explanations for aggregate query answers
[Roy & Suciu 2014; Meliou et al. 2010].

"Why is this aggregate so high?" is answered with *predicate
interventions*: candidate explanations are simple predicates over the
input relation; an explanation's score is how much removing the tuples it
selects moves the aggregate in the asked direction — high-scoring
predicates identify the tuple subpopulations responsible for the answer.

Candidates are generated automatically: equality predicates on
low-cardinality (categorical) attributes and quartile-range predicates on
numeric ones, plus optional pairwise conjunctions, following the
candidate spaces of the cited systems.

Candidates are **structured** planner predicates
(:class:`repro.db.planner.Eq` / :class:`~repro.db.planner.Range`), so the
anti-selection of each intervention ("every tuple the predicate does
*not* remove") runs through the planner's index access paths — a hash
probe complement or sort-index window per candidate instead of a full
row scan each. :func:`legacy_explain_aggregate` keeps the naive path as
the differential-test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable

from .planner import And, Eq, Not, Query, Range
from .relation import Relation

__all__ = [
    "PredicateExplanation",
    "explain_aggregate",
    "legacy_explain_aggregate",
]


@dataclass
class PredicateExplanation:
    """One intervention explanation for an aggregate answer."""

    description: str
    predicate: Callable[[dict], bool]
    n_removed: int
    original: float
    after_removal: float
    score: float

    def __str__(self) -> str:
        return (
            f"{self.description}: removing {self.n_removed} tuples moves "
            f"the answer {self.original:.4g} → {self.after_removal:.4g} "
            f"(score {self.score:+.4g})"
        )


def _candidate_predicates(
    relation: Relation, max_categories: int = 12
) -> list[tuple[str, Callable[[dict], bool]]]:
    """Equality predicates on categorical-looking columns and quartile
    ranges on numeric ones — structured, so the planner can index them."""
    candidates: list[tuple[str, Callable[[dict], bool]]] = []
    dicts = relation.to_dicts()
    for column in relation.columns:
        values = [row[column] for row in dicts]
        distinct = sorted(set(values), key=repr)
        numeric = all(isinstance(v, (int, float)) and not isinstance(v, bool)
                      for v in values)
        if len(distinct) <= max_categories:
            for value in distinct:
                predicate = Eq(column, value)
                candidates.append((predicate.describe(), predicate))
        elif numeric:
            ordered = sorted(values)
            quartiles = [
                ordered[int(q * (len(ordered) - 1))]
                for q in (0.25, 0.5, 0.75)
            ]
            edges = [float("-inf"), *quartiles, float("inf")]
            for lo, hi in zip(edges[:-1], edges[1:]):
                predicate = Range(column, lo, hi)
                candidates.append((predicate.describe(), predicate))
    return candidates


def _rank_interventions(
    relation: Relation,
    query: Callable[[Relation], float],
    direction: str,
    top_k: int,
    use_conjunctions: bool,
    min_tuples: int,
    normalize: bool,
    anti_select: Callable[[Relation, Callable], Relation],
) -> list[PredicateExplanation]:
    if direction not in ("lower", "higher"):
        raise ValueError("direction must be 'lower' or 'higher'")
    original = float(query(relation))
    singles = _candidate_predicates(relation)
    candidates = list(singles)
    if use_conjunctions:
        for (d1, p1), (d2, p2) in combinations(singles, 2):
            conjunction = And(p1, p2)
            candidates.append((conjunction.describe(), conjunction))
    explanations: list[PredicateExplanation] = []
    for description, predicate in candidates:
        remaining = anti_select(relation, predicate)
        n_removed = len(relation) - len(remaining)
        if n_removed < min_tuples or n_removed == len(relation):
            continue
        after = float(query(remaining))
        delta = original - after if direction == "lower" else after - original
        score = delta / n_removed if normalize else delta
        explanations.append(PredicateExplanation(
            description, predicate, n_removed, original, after, score
        ))
    explanations.sort(key=lambda e: -e.score)
    return explanations[:top_k]


def _planned_anti_select(relation: Relation, predicate) -> Relation:
    """Rows the intervention keeps, through the planner's index paths."""
    return Query(relation).select(Not(predicate)).execute()


def _naive_anti_select(relation: Relation, predicate) -> Relation:
    return relation.select(lambda row, p=predicate: not p(row))


def explain_aggregate(
    relation: Relation,
    query: Callable[[Relation], float],
    direction: str = "lower",
    top_k: int = 5,
    use_conjunctions: bool = False,
    min_tuples: int = 1,
    normalize: bool = False,
) -> list[PredicateExplanation]:
    """Rank predicate interventions by their effect on the aggregate.

    Parameters
    ----------
    query:
        Maps a sub-relation to the aggregate value being explained.
    direction:
        ``"lower"`` scores interventions by how much they *decrease* the
        answer (explaining "why so high"); ``"higher"`` the reverse.
    use_conjunctions:
        Also try pairwise conjunctions of single predicates.
    normalize:
        Divide scores by the number of removed tuples (explanations
        should not win merely by deleting everything).
    """
    return _rank_interventions(
        relation, query, direction, top_k, use_conjunctions, min_tuples,
        normalize, anti_select=_planned_anti_select,
    )


def legacy_explain_aggregate(
    relation: Relation,
    query: Callable[[Relation], float],
    direction: str = "lower",
    top_k: int = 5,
    use_conjunctions: bool = False,
    min_tuples: int = 1,
    normalize: bool = False,
) -> list[PredicateExplanation]:
    """The pre-planner path: every anti-selection is a full row scan.

    Kept forever as the differential-test oracle for
    :func:`explain_aggregate` (identical candidates, scores, and
    ordering; only the access path differs).
    """
    return _rank_interventions(
        relation, query, direction, top_k, use_conjunctions, min_tuples,
        normalize, anti_select=_naive_anti_select,
    )
