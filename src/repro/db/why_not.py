"""Why-not provenance: explaining *missing* query answers
(§3, "Explanations in Databases" [49, 55]-adjacent; the picky-operator
method of Chapman & Jagadish).

"Why is tuple t not in the result?" is answered by replaying the query
pipeline and finding the operator at which t's lineage disappears — the
*picky* operator. A query here is an explicit sequence of named
operators over a :class:`Relation`; the tracer follows the candidate
tuples (those matching the user's description in the *input*) through
each stage and reports where each was eliminated and why (filtered out,
failed to join, projected away from the description).

Since the index/planner PR the per-stage survival check is served by a
:class:`repro.db.index.LineageSupportIndex`: each stage's output is
interval-encoded once, and "does candidate i still support some output"
becomes a sorted-interval lookup instead of unioning every output
annotation. Candidate discovery goes through
:func:`repro.db.planner.matching_indices`, so structured candidate
predicates hit the relation's indexes. :func:`legacy_why_not` keeps the
naive path as the differential-test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .index import LineageSupportIndex
from .planner import matching_indices
from .provenance import LineageSemiring
from .relation import Relation

__all__ = ["QueryStep", "WhyNotResult", "why_not", "legacy_why_not"]


@dataclass
class QueryStep:
    """One named operator: ``apply(relation) -> relation``."""

    name: str
    apply: Callable[[Relation], Relation]

    @staticmethod
    def select(name: str, predicate) -> "QueryStep":
        return QueryStep(name, lambda r: r.select(predicate))

    @staticmethod
    def project(name: str, columns: list[str]) -> "QueryStep":
        return QueryStep(name, lambda r: r.project(columns))

    @staticmethod
    def join(name: str, other: Relation) -> "QueryStep":
        return QueryStep(name, lambda r: r.join(other))


@dataclass
class WhyNotResult:
    """Explanation for one missing candidate tuple."""

    candidate_index: int
    candidate: tuple
    picky_step: str | None
    detail: str

    def __str__(self) -> str:
        if self.picky_step is None:
            return (f"tuple {self.candidate} survives the whole query "
                    f"({self.detail})")
        return (f"tuple {self.candidate} was eliminated by "
                f"{self.picky_step!r}: {self.detail}")


def _tracked(relation: Relation) -> Relation:
    """Re-annotate with lineage so tuple survival is a set membership."""
    semiring = LineageSemiring()
    return Relation(
        relation.columns,
        relation.rows,
        semiring,
        [semiring.tag(i) for i in range(len(relation))],
        relation.name,
    )


def _trace(
    source: Relation,
    steps: list[QueryStep],
    candidates: list[int],
) -> list[WhyNotResult]:
    """Replay the pipeline, attributing each candidate's elimination."""
    current = _tracked(source)
    alive: dict[int, bool] = {i: True for i in candidates}
    results: dict[int, WhyNotResult] = {}
    for step in steps:
        nxt = step.apply(current)
        # Interval-encode this stage's derivations once; per-candidate
        # survival is then a sorted-interval lookup, not an O(outputs)
        # union of annotations.
        support = LineageSupportIndex(nxt)
        for i in candidates:
            if alive[i] and not support.alive(i):
                alive[i] = False
                results[i] = WhyNotResult(
                    candidate_index=i,
                    candidate=source.rows[i],
                    picky_step=step.name,
                    detail=f"lineage lost at operator {step.name!r} "
                           f"({len(current)} -> {len(nxt)} tuples)",
                )
        current = nxt
    for i in candidates:
        if alive[i]:
            results[i] = WhyNotResult(
                candidate_index=i,
                candidate=source.rows[i],
                picky_step=None,
                detail="its lineage reaches the final result",
            )
    return [results[i] for i in candidates]


def why_not(
    source: Relation,
    steps: list[QueryStep],
    candidate_predicate: Callable[[dict], bool],
) -> list[WhyNotResult]:
    """Trace why source tuples matching a description miss the output.

    Parameters
    ----------
    source:
        The query's input relation.
    steps:
        The operator pipeline, applied in order.
    candidate_predicate:
        Describes the expected-but-missing answer in terms of the
        *source* schema — a plain callable, or a structured
        :class:`repro.db.planner.Predicate` served by the source's
        indexes.

    Returns
    -------
    One :class:`WhyNotResult` per matching source tuple: the first
    operator whose output no longer carries the tuple's lineage, or a
    note that the tuple actually survives (the answer isn't missing).
    """
    candidates = matching_indices(source, candidate_predicate)
    if not candidates:
        raise ValueError("no source tuple matches the candidate description")
    return _trace(source, steps, candidates)


def legacy_why_not(
    source: Relation,
    steps: list[QueryStep],
    candidate_predicate: Callable[[dict], bool],
) -> list[WhyNotResult]:
    """The pre-index tracer — the differential-test oracle.

    Candidate discovery scans every source row, and each stage's
    survival set is the union of all output annotations (O(total
    lineage) per stage). Must agree with :func:`why_not` exactly.
    """
    candidates = [
        i for i, row in enumerate(source.rows)
        if candidate_predicate(dict(zip(source.columns, row)))
    ]
    if not candidates:
        raise ValueError("no source tuple matches the candidate description")
    current = _tracked(source)
    alive: dict[int, bool] = {i: True for i in candidates}
    results: dict[int, WhyNotResult] = {}
    for step in steps:
        nxt = step.apply(current)
        surviving: set[int] = set()
        for annotation in nxt.annotations:
            if annotation:
                surviving |= set(annotation)
        for i in candidates:
            if alive[i] and i not in surviving:
                alive[i] = False
                results[i] = WhyNotResult(
                    candidate_index=i,
                    candidate=source.rows[i],
                    picky_step=step.name,
                    detail=f"lineage lost at operator {step.name!r} "
                           f"({len(current)} -> {len(nxt)} tuples)",
                )
        current = nxt
    for i in candidates:
        if alive[i]:
            results[i] = WhyNotResult(
                candidate_index=i,
                candidate=source.rows[i],
                picky_step=None,
                detail="its lineage reaches the final result",
            )
    return [results[i] for i in candidates]
