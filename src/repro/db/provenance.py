"""Provenance semirings [Green, Karvounarakis & Tannen 2007].

The provenance machinery the tutorial's Section 3 proposes to harness for
ML explanations. Relational operators compute annotations in any
commutative semiring (K, ⊕, ⊗, 0, 1): joint use of tuples multiplies
(⊗), alternative derivations add (⊕). Specializing K recovers the
classic provenance notions:

* :class:`BooleanSemiring` — set semantics (does the answer exist?),
* :class:`CountingSemiring` — bag semantics / number of derivations,
* :class:`WhySemiring` — why-provenance: the set of *witness sets* of
  base-tuple ids, each witness a set of tuples jointly deriving the
  answer,
* :class:`LineageSemiring` — the flat set of all contributing tuples.

Base-table tuples are injected via ``semiring.tag(tuple_id)``.
"""

from __future__ import annotations

__all__ = [
    "Semiring",
    "BooleanSemiring",
    "CountingSemiring",
    "WhySemiring",
    "LineageSemiring",
]


class Semiring:
    """Abstract commutative semiring over annotation values."""

    zero = None
    one = None

    def plus(self, a, b):
        """⊕ — combine alternative derivations."""
        raise NotImplementedError

    def times(self, a, b):
        """⊗ — combine jointly used annotations."""
        raise NotImplementedError

    def tag(self, tuple_id):
        """Annotation of a base tuple with the given id."""
        raise NotImplementedError


class BooleanSemiring(Semiring):
    """({False, True}, ∨, ∧): plain set semantics."""

    zero = False
    one = True

    def plus(self, a, b):
        return a or b

    def times(self, a, b):
        return a and b

    def tag(self, tuple_id):
        return True


class CountingSemiring(Semiring):
    """(ℕ, +, ×): bag semantics — number of derivations."""

    zero = 0
    one = 1

    def plus(self, a, b):
        return a + b

    def times(self, a, b):
        return a * b

    def tag(self, tuple_id):
        return 1


class WhySemiring(Semiring):
    """Why-provenance: sets of witness sets of base-tuple ids.

    Annotations are frozensets of frozensets. ⊕ unions the alternatives;
    ⊗ pairs up witnesses (union of each pair). Absorption (dropping
    supersets of existing witnesses) keeps annotations minimal, matching
    the standard minimal-witness definition.
    """

    zero = frozenset()
    one = frozenset([frozenset()])

    @staticmethod
    def _minimize(witnesses: frozenset) -> frozenset:
        minimal = [
            w for w in witnesses
            if not any(other < w for other in witnesses)
        ]
        return frozenset(minimal)

    def plus(self, a, b):
        return self._minimize(frozenset(a) | frozenset(b))

    def times(self, a, b):
        return self._minimize(
            frozenset(wa | wb for wa in a for wb in b)
        )

    def tag(self, tuple_id):
        return frozenset([frozenset([tuple_id])])


class LineageSemiring(Semiring):
    """Lineage: the flat set of every base tuple involved in any derivation.

    The standard lineage semiring (Lin(X), ⊕, ⊗, ⊥, ∅) needs a bottom
    element distinct from the empty set; ``None`` plays ⊥ (⊕-identity and
    ⊗-annihilator).
    """

    zero = None
    one = frozenset()

    def plus(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return frozenset(a) | frozenset(b)

    def times(self, a, b):
        if a is None or b is None:
            return None
        return frozenset(a) | frozenset(b)

    def tag(self, tuple_id):
        return frozenset([tuple_id])
