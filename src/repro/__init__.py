"""repro — a from-scratch reproduction of the XAI landscape surveyed in
"Explainable AI: Foundations, Applications, Opportunities for Data
Management Research" (SIGMOD 2022).

Subpackages
-----------
core
    Dataset abstraction, explanation objects, samplers, explainer bases.
models
    From-scratch ML substrate (linear, logistic, trees, forests, GBM,
    kNN, naive Bayes, MLP) with white-box gradient access.
datasets
    SCM-backed synthetic data with known ground truth.
games
    The cooperative-game layer: the Game protocol, the shared evaluator
    (caching/chunking/budgets/telemetry) and the estimator suite every
    Shapley-style computation runs through.
shapley
    Exact/sampled/Kernel/Tree SHAP, QII, global aggregation (§2.1.2).
surrogate
    LIME and surrogate-model explainability plus stability indices (§2.1.1).
causal
    SCMs, asymmetric/causal Shapley, Shapley flow, necessity/sufficiency
    (§2.1.3).
counterfactual
    DiCE-, GeCo- and recourse-style contrastive explanations (§2.1.4).
rules
    Anchors, decision sets, association-rule mining (§2.2).
logic
    Boolean-circuit compilation, sufficient reasons, tractable SHAP (§2.2.2).
datavalue
    Data Shapley, KNN-Shapley, distributional Shapley, LOO (§2.3.1).
influence
    Influence functions, group influence, tree influence (§2.3.2).
adversarial
    Fooling-LIME/SHAP adversarial scaffolding.
unstructured
    Gradient attributions and sanity checks on grids/text (§2.4).
db
    Mini relational engine, provenance, Shapley of tuples, complaints (§3).
unlearning
    PrIU incremental updates and tree unlearning (§3).
pipelines
    Provenance-tracked data-prep pipelines and stage blame (§3).
obs
    Observability: spans, model-query metering, benchmark telemetry.
robust
    Fault tolerance: typed errors, guarded predict functions (retry,
    budgets, output validation), deterministic fault injection.
serve
    Fault-contained explanation service: admission control, request
    coalescing, warm caching, a load-shedding degradation ladder, and
    per-model circuit breakers over stdlib HTTP.
"""

__version__ = "1.0.0"

from . import obs
from . import robust
from . import games
from . import io, render, report
from . import (
    adversarial,
    evaluation,
    causal,
    core,
    counterfactual,
    datasets,
    datavalue,
    db,
    influence,
    logic,
    models,
    pipelines,
    rules,
    shapley,
    surrogate,
    unlearning,
    unstructured,
)
from . import serve  # after the explainer packages it composes

__all__ = [
    "core",
    "models",
    "datasets",
    "games",
    "shapley",
    "surrogate",
    "causal",
    "counterfactual",
    "rules",
    "logic",
    "datavalue",
    "influence",
    "adversarial",
    "evaluation",
    "unstructured",
    "db",
    "unlearning",
    "pipelines",
    "io",
    "obs",
    "robust",
    "serve",
    "render",
    "report",
    "__version__",
]
