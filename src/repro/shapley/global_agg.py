"""Global model understanding from local explanations (§2.1.2, [46]).

TreeSHAP's headline data-management contribution is that *many local
explanations compose into global ones*: averaging |SHAP| over a dataset
yields a global importance ranking that, unlike single-number importances,
retains individualized detail. This module provides that aggregation for
any attribution explainer, plus classic permutation importance as the
baseline the E24 experiment compares orderings against.
"""

from __future__ import annotations

import numpy as np

from ..core.base import as_predict_fn
from ..core.explanation import FeatureAttribution
from ..models.metrics import accuracy

__all__ = ["GlobalAttribution", "aggregate_attributions", "permutation_importance"]


class GlobalAttribution:
    """Summary of per-instance attributions over a dataset.

    Attributes
    ----------
    mean_abs:
        Mean |attribution| per feature — the SHAP summary-plot ordering.
    mean_signed:
        Mean signed attribution (direction of average influence).
    matrix:
        The raw ``(n_instances, n_features)`` attribution matrix.
    """

    def __init__(self, matrix: np.ndarray, feature_names: list[str]) -> None:
        self.matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        self.feature_names = list(feature_names)
        self.mean_abs = np.abs(self.matrix).mean(axis=0)
        self.mean_signed = self.matrix.mean(axis=0)

    def ranking(self) -> list[int]:
        """Feature indices ordered by global importance (descending)."""
        return list(np.argsort(-self.mean_abs))

    def top(self, k: int = 5) -> list[tuple[str, float]]:
        return [
            (self.feature_names[i], float(self.mean_abs[i]))
            for i in self.ranking()[:k]
        ]


def aggregate_attributions(
    explainer, X: np.ndarray, feature_names: list[str] | None = None, **kwargs
) -> GlobalAttribution:
    """Explain every row and aggregate.

    Any explainer with the standard ``explain(x) -> FeatureAttribution``
    interface works, so global LIME and global SHAP come from the same
    call. Explainers offering ``explain_batch`` are aggregated through
    it, so amortized batch paths (shared coalition plans, TreeSHAP
    precompute) kick in — the attributions are identical either way.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    rows = []
    names = feature_names
    batch_fn = getattr(explainer, "explain_batch", None)
    if batch_fn is not None:
        for attribution in batch_fn(X, **kwargs):
            rows.append(attribution.values)
            names = names or attribution.feature_names
        return GlobalAttribution(np.stack(rows), names or [])
    for x in X:  # batch: allow
        attribution: FeatureAttribution = explainer.explain(x, **kwargs)
        rows.append(attribution.values)
        names = names or attribution.feature_names
    return GlobalAttribution(np.stack(rows), names or [])


def permutation_importance(
    model,
    X: np.ndarray,
    y: np.ndarray,
    metric=accuracy,
    n_repeats: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Breiman-style permutation importance of each feature.

    Importance of feature j = baseline score − mean score after shuffling
    column j, averaged over ``n_repeats`` shuffles.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y)
    rng = np.random.default_rng(seed)
    baseline = metric(y, model.predict(X))
    importances = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        drops = []
        for __ in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, j] = shuffled[rng.permutation(X.shape[0]), j]
            drops.append(baseline - metric(y, model.predict(shuffled)))
        importances[j] = float(np.mean(drops))
    return importances
