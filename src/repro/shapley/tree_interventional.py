"""Interventional TreeSHAP: exact Shapley values against a background
distribution [Lundberg et al. 2020, "Independent TreeSHAP"].

Path-dependent TreeSHAP explains the tree's own cover-weighted
conditional-expectation game, which inherits the training data's feature
correlations. The *interventional* variant explains the marginal game

    v(S) = E_z[ T(x_S, z_{N∖S}) ]

against explicit background rows, the same game Kernel SHAP approximates
— but exactly and in O(L·D) per (instance, background) pair.

The closed form per background row z: a leaf ℓ is reachable under
coalition S iff every path feature whose conditions only **x** satisfies
is in S (call them A, |A| = a) and every path feature whose conditions
only **z** satisfies is out of S (B, |B| = b); features satisfying both
ways are free, features satisfying neither kill the leaf. The Shapley
value of that reachability indicator is

    φ_i = (a−1)!·b!/(a+b)!   for i ∈ A,
    φ_j = −a!·(b−1)!/(a+b)!  for j ∈ B,

so each leaf contributes its value times these weights — summed over
leaves and averaged over the background.
"""

from __future__ import annotations

from collections import defaultdict
from math import factorial

import numpy as np

from ..core.explanation import FeatureAttribution
from ..obs import instrument_explainer
from ..models.tree import TreeStructure
from .tree import TreeShapExplainer, _leaf_scalar

__all__ = ["interventional_tree_shap", "InterventionalTreeShapExplainer"]


def _leaf_paths(tree: TreeStructure):
    """Yield ``(leaf, conditions)`` with per-feature condition lists.

    Each condition is ``(threshold, went_left)``: satisfied by value v
    iff ``v <= threshold`` when left else ``v > threshold``.
    """
    out = []

    def walk(node: int, conditions: dict[int, list[tuple[float, bool]]]):
        if tree.is_leaf(node):
            out.append((node, {k: list(v) for k, v in conditions.items()}))
            return
        feature = tree.feature[node]
        threshold = tree.threshold[node]
        conditions.setdefault(feature, []).append((threshold, True))
        walk(tree.children_left[node], conditions)
        conditions[feature][-1] = (threshold, False)
        walk(tree.children_right[node], conditions)
        conditions[feature].pop()
        if not conditions[feature]:
            del conditions[feature]

    walk(0, {})
    return out


def _satisfies(value: float, conditions: list[tuple[float, bool]]) -> bool:
    return all(
        (value <= threshold) if went_left else (value > threshold)
        for threshold, went_left in conditions
    )


def interventional_tree_shap(
    tree: TreeStructure,
    x: np.ndarray,
    background: np.ndarray,
    n_features: int,
    class_index: int | None = None,
) -> tuple[np.ndarray, float]:
    """Exact Shapley values of the marginal game; returns ``(phi, base)``.

    ``base`` is the mean tree output over the background (v(∅)).
    """
    x = np.asarray(x, dtype=float).ravel()
    background = np.atleast_2d(np.asarray(background, dtype=float))
    paths = _leaf_paths(tree)
    phi = np.zeros(n_features)
    base = 0.0
    for z in background:
        for leaf, conditions in paths:
            value = _leaf_scalar(tree, leaf, class_index)
            x_only, z_only = [], []
            dead = False
            for feature, terms in conditions.items():
                x_ok = _satisfies(x[feature], terms)
                z_ok = _satisfies(z[feature], terms)
                if x_ok and not z_ok:
                    x_only.append(feature)
                elif z_ok and not x_ok:
                    z_only.append(feature)
                elif not x_ok and not z_ok:
                    dead = True
                    break
            if dead:
                continue
            a, b = len(x_only), len(z_only)
            if a == 0:
                base += value  # reachable with the empty coalition
            if a + b == 0:
                continue  # constant contribution, no attribution
            total = factorial(a + b)
            if a > 0:
                weight = factorial(a - 1) * factorial(b) / total
                for feature in x_only:
                    phi[feature] += value * weight
            if b > 0:
                weight = factorial(a) * factorial(b - 1) / total
                for feature in z_only:
                    phi[feature] -= value * weight
    n_background = background.shape[0]
    return phi / n_background, base / n_background


@instrument_explainer
class InterventionalTreeShapExplainer:
    """Background-based exact SHAP for any tree model in the library.

    Same ensemble decomposition as :class:`TreeShapExplainer`; the games
    add across trees, so per-tree values are combined with the ensemble
    weights.
    """

    method_name = "interventional_tree_shap"

    def __init__(self, model, background: np.ndarray,
                 max_background: int = 50, seed: int = 0) -> None:
        background = np.atleast_2d(np.asarray(background, dtype=float))
        if background.shape[0] > max_background:
            rng = np.random.default_rng(seed)
            idx = rng.choice(background.shape[0], max_background, replace=False)
            background = background[idx]
        self.background = background
        self._delegate = TreeShapExplainer(model)
        self.model = model

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = np.asarray(x, dtype=float).ravel()
        n = x.shape[0]
        phi = np.zeros(n)
        base = 0.0
        for tree, weight, class_index in self._delegate._components:
            tree_phi, tree_base = interventional_tree_shap(
                tree, x, self.background, n, class_index
            )
            phi += weight * tree_phi
            base += weight * tree_base
        from ..models.boosting import (
            GradientBoostingClassifier,
            GradientBoostingRegressor,
        )

        if isinstance(self.model,
                      (GradientBoostingClassifier, GradientBoostingRegressor)):
            base += self.model.init_raw_
        names = feature_names or [f"x{i}" for i in range(n)]
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=self._delegate._model_output(x),
            method=self.method_name,
            meta={"n_background": self.background.shape[0]},
        )
