"""Shapley-value-based feature attribution (§2.1.2)."""

from .conditional import (
    ConditionalShapExplainer,
    empirical_conditional_value_function,
)
from .exact import ExactShapleyExplainer, all_coalitions, exact_shapley
from .interaction import InteractionExplainer, shapley_interaction_values
from .global_agg import (
    GlobalAttribution,
    aggregate_attributions,
    permutation_importance,
)
from .kernel import KernelShapExplainer, kernel_shap, shapley_kernel_weight
from .qii import QIIExplainer, set_qii, shapley_qii, unary_qii
from .sampling import SamplingShapleyExplainer, permutation_shapley
from .tree import TreeShapExplainer, tree_expected_value, tree_shap_values
from .tree_interventional import (
    InterventionalTreeShapExplainer,
    interventional_tree_shap,
)

__all__ = [
    "ConditionalShapExplainer",
    "empirical_conditional_value_function",
    "exact_shapley",
    "all_coalitions",
    "ExactShapleyExplainer",
    "InteractionExplainer",
    "shapley_interaction_values",
    "permutation_shapley",
    "SamplingShapleyExplainer",
    "kernel_shap",
    "shapley_kernel_weight",
    "KernelShapExplainer",
    "tree_shap_values",
    "tree_expected_value",
    "TreeShapExplainer",
    "InterventionalTreeShapExplainer",
    "interventional_tree_shap",
    "unary_qii",
    "set_qii",
    "shapley_qii",
    "QIIExplainer",
    "GlobalAttribution",
    "aggregate_attributions",
    "permutation_importance",
]
