"""Conditional (on-manifold) SHAP via empirical neighbor conditioning.

The tutorial's §2.1.2 criticisms of Shapley methods (Kumar et al. 2020)
center on the choice of value function: the *interventional/marginal*
v(S) = E[f(x_S, X̄_{N∖S})] breaks feature dependence and evaluates the
model off-manifold, while the *conditional* v(S) = E[f(X) | X_S = x_S]
respects the data distribution but lets attribution leak onto correlated
— even model-unused — features. Both behaviours are real and the
disagreement is the point; E26 measures it.

Conditioning on arbitrary subsets of an empirical sample has no clean
closed form, so the standard practical estimator is used: conditional
expectations are Monte-Carlo averages over the k nearest training rows
*in the conditioned coordinates* (distances standardized per column),
with the conditioned coordinates pinned to x.
"""

from __future__ import annotations

import numpy as np

from ..core.base import AttributionExplainer
from ..core.coalition_engine import CoalitionValueCache, batched_predict
from ..core.explanation import FeatureAttribution
from ..games.engine import amortized_plan_values
from ..games.plan import mean_walks_reduce, permutation_plan, shared_plan
from ..robust.guard import check_instance
from .sampling import permutation_shapley

__all__ = ["empirical_conditional_value_function", "ConditionalShapExplainer"]


def empirical_conditional_value_function(
    predict_fn,
    data: np.ndarray,
    x: np.ndarray,
    k: int = 30,
    cache: bool = True,
    max_batch_rows: int | None = None,
):
    """Batched v(S) = Ê[f(X) | X_S = x_S] by k-NN conditioning on ``data``.

    For the empty coalition this is the plain mean prediction; for the
    full coalition it is exactly f(x).

    The estimator is deterministic in the mask (stable-sorted neighbor
    selection, no sampling), so repeated masks are served from a
    packed-bit coalition-value cache by default — permutation walks
    re-visit the same prefixes constantly. Fresh masks have their k
    neighbor rows stacked into one memory-bounded model call. Pass
    ``cache=False`` for a stochastic variant of this value function.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    x = np.asarray(x, dtype=float).ravel()
    scale = np.maximum(data.std(axis=0), 1e-12)
    k = min(k, data.shape[0])
    store = CoalitionValueCache() if cache else None

    def _neighbor_rows(mask: np.ndarray) -> np.ndarray:
        deltas = (data[:, mask] - x[mask]) / scale[mask]
        distances = np.sqrt((deltas ** 2).sum(axis=1))
        neighbors = np.argsort(distances, kind="stable")[:k]
        rows = data[neighbors].copy()
        rows[:, mask] = x[mask]
        return rows

    def v(masks: np.ndarray) -> np.ndarray:
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        n_m = masks.shape[0]
        keys = np.packbits(masks, axis=1)
        out = np.zeros(n_m)
        blocks: list[np.ndarray] = []
        # Rows each pending block must fill: a shared (mutable) follower
        # list in cached mode so intra-call duplicates ride along, a
        # singleton per occurrence when caching is off.
        block_targets: list[list[int]] = []
        block_keys: list[bytes] = []
        followers: dict[bytes, list[int]] = {}
        hits = 0
        for row, mask in enumerate(masks):
            key = keys[row].tobytes()
            if store is not None:
                known = store.values.get(key)
                if known is not None:
                    out[row] = known
                    hits += 1
                    continue
                if key in followers:
                    followers[key].append(row)
                    hits += 1
                    continue
            targets = [row]
            if store is not None:
                followers[key] = targets
            if not mask.any():
                value = float(
                    np.mean(batched_predict(predict_fn, data, max_batch_rows))
                )
                out[row] = value
                if store is not None:
                    store.values[key] = value
                continue
            if mask.all():
                value = float(predict_fn(x[None, :])[0])
                out[row] = value
                if store is not None:
                    store.values[key] = value
                continue
            blocks.append(_neighbor_rows(mask))
            block_targets.append(targets)
            block_keys.append(key)
        if blocks:
            preds = batched_predict(
                predict_fn, np.concatenate(blocks), max_batch_rows
            )
            means = preds.reshape(len(blocks), k).mean(axis=1)
            for targets, key, value in zip(block_targets, block_keys, means):
                out[targets] = float(value)
                if store is not None:
                    store.values[key] = float(value)
        if store is not None:
            store.record(hits, n_m - hits)
        return out

    v.cache = store
    return v


class ConditionalShapExplainer(AttributionExplainer):
    """Shapley values of the empirical conditional-expectation game.

    Parameters
    ----------
    data:
        Reference sample defining the manifold/conditionals.
    k:
        Neighbors per conditional expectation.
    n_permutations:
        Permutation-sampling budget for the Shapley average.
    """

    method_name = "conditional_shap"

    def __init__(
        self,
        model,
        data: np.ndarray,
        k: int = 30,
        n_permutations: int = 100,
        output: str = "auto",
        seed: int = 0,
        max_batch_rows: int | None = None,
        guard=None,
    ) -> None:
        super().__init__(model, output, guard=guard)
        self.data = np.atleast_2d(np.asarray(data, dtype=float))
        self.k = k
        self.n_permutations = n_permutations
        self.seed = seed
        self.max_batch_rows = max_batch_rows

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = check_instance(x, self.data.shape[1])
        n = x.shape[0]
        v = empirical_conditional_value_function(
            self.predict_fn, self.data, x, k=self.k,
            max_batch_rows=self.max_batch_rows,
        )
        # Prediction and base value first, so a budget exhausted during
        # sampling still yields a reportable partial estimate.
        prediction = float(self.predict_fn(x[None, :])[0])
        base = float(v(np.zeros((1, n), dtype=bool))[0])
        phi, std_err, convergence = permutation_shapley(
            v, n, n_permutations=self.n_permutations, seed=self.seed,
            return_diagnostics=True,
        )
        names = feature_names or [f"x{i}" for i in range(n)]
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=prediction,
            method=self.method_name,
            meta={"std_err": std_err, "k": self.k, "convergence": convergence},
        )

    # -- amortized batch path (shared coalition plan) ----------------------

    def _amortized_context(self, X: np.ndarray, feature_names=None):
        """Shared walk plan plus the row-independent ∅ value.

        v(∅) is the mean prediction over the reference sample — the
        same number for every row — so it is computed once here and
        seeded into each row's value cache instead of re-averaging the
        whole dataset per row.
        """
        n = X.shape[1]
        key = ("permutation", n, self.n_permutations, True, self.seed)
        plan = shared_plan(
            self,
            key,
            lambda: permutation_plan(
                n, n_permutations=self.n_permutations, seed=self.seed
            ),
            X.shape[0],
        )
        empty_value = float(np.mean(
            batched_predict(self.predict_fn, self.data, self.max_batch_rows)
        ))
        return plan, empty_value

    def _amortized_rows(self, X, lo, hi, ctx, feature_names=None):
        """Rows ``[lo, hi)``: every unique coalition in one fused call.

        The conditional value function is deterministic in the mask, so
        evaluating the plan's deduplicated masks once per row and
        gathering through ``value_index`` reproduces exactly the cached
        per-walk values the serial estimator saw.
        """
        plan, empty_value = ctx
        rows = X[lo:hi]
        n = X.shape[1]
        names = feature_names or [f"x{i}" for i in range(n)]
        empty_key = np.packbits(np.zeros(n, dtype=bool)).tobytes()
        pair = self.n_permutations > 1
        n_batches = self.n_permutations // 2 if pair else self.n_permutations
        convergence = {
            "converged": True,
            "n_walks_completed": plan.n_walks,
            "n_walks_requested": n_batches * (2 if pair else 1),
            "budget_error": None,
        }
        out = []
        for r in range(rows.shape[0]):
            x = rows[r]
            v = empirical_conditional_value_function(
                self.predict_fn, self.data, x, k=self.k,
                max_batch_rows=self.max_batch_rows,
            )
            v.cache.values[empty_key] = empty_value
            prediction = float(self.predict_fn(x[None, :])[0])
            vals = amortized_plan_values(v, plan)
            walk_values = vals[plan.value_index]
            phi, std_err = mean_walks_reduce(walk_values, plan.walk_perms)
            out.append(FeatureAttribution(
                values=phi,
                feature_names=names,
                base_value=float(vals[plan.empty_index]),
                prediction=prediction,
                method=self.method_name,
                meta={"std_err": std_err, "k": self.k,
                      "convergence": dict(convergence)},
            ))
        return out
