"""Exact Shapley values by exhaustive subset enumeration.

The Shapley value of feature ``i`` for value function ``v`` is

    φ_i = Σ_{S ⊆ N\\{i}} |S|!(n−|S|−1)!/n! · (v(S ∪ {i}) − v(S)),

computed here literally over all 2^n coalitions. Exponential by design —
this is the ground-truth oracle the approximation experiments (E2, E3,
E16) compare against, and it doubles as the reference implementation for
the Shapley axioms in the property-based tests.

The default value function is the interventional ("off-manifold") one used
by Kernel SHAP: v(S) = E_b[f(x_S, b_{N\\S})] over a background sample.

The enumeration itself lives in the shared estimator suite
(:func:`repro.games.estimators.exact_enumeration`); this module keeps
the historical names and the explainer on top.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.base import AttributionExplainer, as_predict_fn
from ..core.explanation import FeatureAttribution
from ..core.sampling import MaskingSampler
from ..games.estimators import all_coalitions, exact_enumeration

__all__ = ["exact_shapley", "all_coalitions", "ExactShapleyExplainer"]


def exact_shapley(
    value_fn: Callable[[np.ndarray], np.ndarray],
    n_players: int,
    backend: str | None = None,
    n_procs: int | None = None,
) -> np.ndarray:
    """Exact Shapley values of a coalitional game.

    Parameters
    ----------
    value_fn:
        Maps a binary coalition matrix ``(n_coalitions, n_players)`` to a
        vector of coalition values (the batched convention used throughout
        the library). A :class:`~repro.games.base.Game` is also accepted —
        required for ``backend`` to shard (bare callables promise no
        determinism and always run serially).
    n_players:
        Number of players n; the call evaluates all 2^n coalitions.
    backend:
        Execution backend (:mod:`repro.exec`); the enumeration is
        bitwise-identical whichever backend evaluates it.

    Returns
    -------
    Array of n Shapley values.
    """
    return exact_enumeration(
        value_fn, n_players=n_players, backend=backend, n_procs=n_procs
    )


class ExactShapleyExplainer(AttributionExplainer):
    """Model-agnostic exact SHAP with the interventional value function.

    Parameters
    ----------
    model:
        Callable or fitted model (normalized via :func:`as_predict_fn`).
    background:
        Background sample defining the marginal distribution features are
        integrated out against.
    max_background:
        Cap on background rows (subsampled beyond it).
    """

    method_name = "exact_shap"

    def __init__(self, model, background: np.ndarray,
                 max_background: int = 100, output: str = "auto") -> None:
        super().__init__(model, output)
        self.sampler = MaskingSampler(background, max_background=max_background)
        self.feature_names: list[str] | None = None

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = np.asarray(x, dtype=float).ravel()
        n = x.shape[0]
        v = self.sampler.value_function(self.predict_fn, x)
        phi = exact_shapley(v, n)
        base = float(v(np.zeros((1, n), dtype=bool))[0])
        prediction = float(self.predict_fn(x[None, :])[0])
        names = feature_names or self.feature_names or [f"x{i}" for i in range(n)]
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=prediction,
            method=self.method_name,
            meta={"n_evaluations": 2 ** n},
        )
