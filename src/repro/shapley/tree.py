"""TreeSHAP: polynomial-time exact Shapley values for tree ensembles.

Implements the path-dependent algorithm of Lundberg et al. (2020, "From
local explanations to global understanding with explainable AI for
trees"): Shapley values of the *tree conditional expectation* game

    v(S) = EXPVALUE(x, S) — follow the tree; at a split on a feature
    outside S, average both children weighted by training cover,

computed for all features simultaneously in O(L·D²) per tree by carrying
the EXTEND/UNWIND summary of feature-subset proportions down each
root-to-leaf path. :func:`tree_expected_value` is the direct (exponential
when combined with subset enumeration) oracle of the same game; the test
suite checks the fast algorithm against exact enumeration through it.

Supported models: both CART trees, :class:`RandomForestClassifier`
(explains the averaged class-1 probability) and the gradient boosting
models (explains the raw additive score — log-odds for the classifier).

Amortization (PR 7): the recursion's *structure* — node arrays, leaf
scalars, per-child cover fractions, the ensemble expected value — does
not depend on the instance, so :class:`TreePrecompute` extracts it once
per model (cached across explainer instances, inherited read-only by
process-backend shards via fork) and
:func:`batch_tree_shap_values` then runs one traversal with the numeric
path state held as per-row *vectors*: the whole batch is explained in a
single O(nodes · depth²) pass instead of a full re-traversal per row.
Hot/cold asymmetry between instances lives entirely in the
``one_fraction`` entries (the ``zero_fraction`` chain is cover-only and
row-independent), so every elementwise operation reproduces the scalar
algorithm's arithmetic exactly; the fused pass visits children in fixed
left-then-right order (the scalar path recurses hot-first), which can
differ from :func:`tree_shap_values` in the last ulp of the leaf
accumulation. Since the kernel is elementwise per row, fused results are
bitwise-identical across backends, batch splits and batch sizes; only
the scalar-vs-fused comparison carries the ulp caveat. Single-row
``explain`` stays on the scalar kernel (numpy per-node overhead only
amortizes across rows); ``explain_batch`` uses the fused kernel, and
``REPRO_PRECOMPUTE=0`` restores the per-instance scalar path there too.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass

import numpy as np

from ..core.explanation import FeatureAttribution
from ..exec import map_shards, plan_shards, resolve_backend, resolve_n_procs
from ..obs import instrument_explainer
from ..obs.trace import current_span
from ..models.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from ..models.forest import RandomForestClassifier
from ..models.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeStructure

__all__ = [
    "tree_shap_values",
    "tree_expected_value",
    "batch_tree_shap_values",
    "resolve_precompute",
    "TreePrecompute",
    "TreeShapExplainer",
]


def resolve_precompute(value: bool = True) -> bool:
    """Whether the per-model TreeSHAP precompute path is enabled.

    ``REPRO_PRECOMPUTE=0`` (or ``false``/``off``/``no``) force-disables
    it, restoring the per-instance scalar recursion — the A/B lever the
    E42 benchmark uses to separate precompute cost from per-instance
    cost. An explicit ``value=False`` at a call site always wins.
    """
    if not value:
        return False
    env = os.environ.get("REPRO_PRECOMPUTE", "").strip().lower()
    return env not in ("0", "false", "off", "no")


def _leaf_scalar(tree: TreeStructure, node: int, class_index: int | None) -> float:
    value = tree.value[node]
    if class_index is None:
        return float(value[0])
    return float(value[class_index])


def tree_expected_value(
    tree: TreeStructure,
    x: np.ndarray,
    mask: np.ndarray,
    class_index: int | None = None,
) -> float:
    """EXPVALUE: conditional expectation of the tree with features S fixed.

    ``mask[j]`` true means feature ``j`` is *present* (follows ``x``);
    absent features are integrated out by cover-weighted averaging.
    """
    x = np.asarray(x, dtype=float).ravel()
    mask = np.asarray(mask, dtype=bool).ravel()

    def recurse(node: int) -> float:
        if tree.is_leaf(node):
            return _leaf_scalar(tree, node, class_index)
        feature = tree.feature[node]
        left, right = tree.children_left[node], tree.children_right[node]
        if mask[feature]:
            child = left if x[feature] <= tree.threshold[node] else right
            return recurse(child)
        w_left = tree.n_node_samples[left]
        w_right = tree.n_node_samples[right]
        total = w_left + w_right
        return (w_left * recurse(left) + w_right * recurse(right)) / total

    return recurse(0)


class _PathElement:
    """One entry of the TreeSHAP path summary."""

    __slots__ = ("feature", "zero_fraction", "one_fraction", "pweight")

    def __init__(self, feature: int = -1, zero_fraction: float = 0.0,
                 one_fraction: float = 0.0, pweight: float = 0.0) -> None:
        self.feature = feature
        self.zero_fraction = zero_fraction
        self.one_fraction = one_fraction
        self.pweight = pweight

    def copy(self) -> "_PathElement":
        return _PathElement(
            self.feature, self.zero_fraction, self.one_fraction, self.pweight
        )


def _extend(path: list[_PathElement], depth: int, zero_fraction: float,
            one_fraction: float, feature: int) -> None:
    path[depth].feature = feature
    path[depth].zero_fraction = zero_fraction
    path[depth].one_fraction = one_fraction
    path[depth].pweight = 1.0 if depth == 0 else 0.0
    for i in range(depth - 1, -1, -1):
        path[i + 1].pweight += (
            one_fraction * path[i].pweight * (i + 1) / (depth + 1)
        )
        path[i].pweight = (
            zero_fraction * path[i].pweight * (depth - i) / (depth + 1)
        )


def _unwind(path: list[_PathElement], depth: int, index: int) -> None:
    one_fraction = path[index].one_fraction
    zero_fraction = path[index].zero_fraction
    next_one = path[depth].pweight
    for i in range(depth - 1, -1, -1):
        if one_fraction != 0.0:
            tmp = path[i].pweight
            path[i].pweight = next_one * (depth + 1) / ((i + 1) * one_fraction)
            next_one = tmp - path[i].pweight * zero_fraction * (depth - i) / (depth + 1)
        else:
            path[i].pweight = path[i].pweight * (depth + 1) / (
                zero_fraction * (depth - i)
            )
    for i in range(index, depth):
        path[i].feature = path[i + 1].feature
        path[i].zero_fraction = path[i + 1].zero_fraction
        path[i].one_fraction = path[i + 1].one_fraction


def _unwound_sum(path: list[_PathElement], depth: int, index: int) -> float:
    one_fraction = path[index].one_fraction
    zero_fraction = path[index].zero_fraction
    next_one = path[depth].pweight
    total = 0.0
    for i in range(depth - 1, -1, -1):
        if one_fraction != 0.0:
            tmp = next_one * (depth + 1) / ((i + 1) * one_fraction)
            total += tmp
            next_one = path[i].pweight - tmp * zero_fraction * (depth - i) / (depth + 1)
        else:
            total += path[i].pweight * (depth + 1) / (zero_fraction * (depth - i))
    return total


def tree_shap_values(
    tree: TreeStructure,
    x: np.ndarray,
    n_features: int,
    class_index: int | None = None,
) -> np.ndarray:
    """Exact Shapley values of one tree's conditional-expectation game."""
    x = np.asarray(x, dtype=float).ravel()
    phi = np.zeros(n_features)
    max_depth = tree.depth(0) + 2

    def recurse(
        node: int,
        parent_path: list[_PathElement],
        depth: int,
        zero_fraction: float,
        one_fraction: float,
        feature: int,
    ) -> None:
        path = [el.copy() for el in parent_path]
        while len(path) <= depth + max_depth:
            path.append(_PathElement())
        _extend(path, depth, zero_fraction, one_fraction, feature)
        if tree.is_leaf(node):
            leaf_value = _leaf_scalar(tree, node, class_index)
            for i in range(1, depth + 1):
                w = _unwound_sum(path, depth, i)
                phi[path[i].feature] += (
                    w * (path[i].one_fraction - path[i].zero_fraction) * leaf_value
                )
            return
        split_feature = tree.feature[node]
        left, right = tree.children_left[node], tree.children_right[node]
        hot, cold = (
            (left, right) if x[split_feature] <= tree.threshold[node] else (right, left)
        )
        incoming_zero, incoming_one = 1.0, 1.0
        new_depth = depth
        # A repeat split on the same feature must first undo its previous
        # path entry (the path tracks *unique* features).
        for i in range(1, depth + 1):
            if path[i].feature == split_feature:
                incoming_zero = path[i].zero_fraction
                incoming_one = path[i].one_fraction
                _unwind(path, depth, i)
                new_depth = depth - 1
                break
        cover = tree.n_node_samples[node]
        recurse(
            hot, path, new_depth + 1,
            incoming_zero * tree.n_node_samples[hot] / cover,
            incoming_one, split_feature,
        )
        recurse(
            cold, path, new_depth + 1,
            incoming_zero * tree.n_node_samples[cold] / cover,
            0.0, split_feature,
        )

    recurse(0, [], 0, 1.0, 1.0, -1)
    return phi


def _tree_base_value(tree: TreeStructure, class_index: int | None) -> float:
    """Cover-weighted mean leaf value = EXPVALUE with the empty set."""

    def recurse(node: int) -> float:
        if tree.is_leaf(node):
            return _leaf_scalar(tree, node, class_index)
        left, right = tree.children_left[node], tree.children_right[node]
        w_left, w_right = tree.n_node_samples[left], tree.n_node_samples[right]
        return (w_left * recurse(left) + w_right * recurse(right)) / (w_left + w_right)

    return recurse(0)


# -- per-model precompute + fused batch kernel --------------------------------


class _TreeArrays:
    """One tree's instance-independent structure, flattened for the kernel.

    ``frac[c]`` is child ``c``'s cover fraction of its parent — the
    multiplier the scalar algorithm recomputes as
    ``n_node_samples[c] / n_node_samples[parent]`` at every visit.
    ``value`` holds each leaf's explained scalar (the ``class_index``
    column already selected); internal nodes carry 0.
    """

    __slots__ = ("feature", "threshold", "left", "right", "is_leaf",
                 "value", "frac")

    def __init__(self, tree: TreeStructure, class_index: int | None) -> None:
        self.feature = np.asarray(tree.feature, dtype=np.intp)
        self.threshold = np.asarray(tree.threshold, dtype=float)
        self.left = np.asarray(tree.children_left, dtype=np.intp)
        self.right = np.asarray(tree.children_right, dtype=np.intp)
        self.is_leaf = self.feature == -1
        n_nodes = self.feature.shape[0]
        self.value = np.zeros(n_nodes)
        for node in range(n_nodes):
            if self.is_leaf[node]:
                self.value[node] = _leaf_scalar(tree, node, class_index)
        cover = np.asarray(tree.n_node_samples, dtype=float)
        self.frac = np.ones(n_nodes)
        for node in range(n_nodes):
            if not self.is_leaf[node]:
                self.frac[self.left[node]] = cover[self.left[node]] / cover[node]
                self.frac[self.right[node]] = (
                    cover[self.right[node]] / cover[node]
                )


def _vec_unwind(feats, zeros, ones, ws, depth, index) -> None:
    """Vectorized UNWIND: remove path entry ``index``, rebinding only.

    The scalar algorithm branches on ``one_fraction != 0`` per instance;
    here both branch expressions are computed over the whole batch with
    masked (division-safe) denominators and selected per row — the
    arithmetic of each selected element is literally the scalar
    branch's. Entry fields shift down exactly as the scalar version
    does: feature/zero/one slide, pweights do not.
    """
    one = ones[index]
    zero = zeros[index]
    hot = one != 0.0
    next_one = ws[depth]
    for i in range(depth - 1, -1, -1):
        safe = np.where(hot, (i + 1) * one, 1.0)
        cand_hot = next_one * (depth + 1) / safe
        cand_cold = ws[i] * (depth + 1) / (zero * (depth - i))
        next_one = np.where(
            hot, ws[i] - cand_hot * zero * (depth - i) / (depth + 1), next_one
        )
        ws[i] = np.where(hot, cand_hot, cand_cold)
    for i in range(index, depth):
        feats[i] = feats[i + 1]
        zeros[i] = zeros[i + 1]
        ones[i] = ones[i + 1]


def _vec_unwound_sum(zeros, ones, ws, depth, index):
    """Vectorized UNWOUND-SUM: entry ``index``'s total unwound weight."""
    one = ones[index]
    zero = zeros[index]
    hot = one != 0.0
    next_one = ws[depth]
    total = np.zeros(next_one.shape[0])
    for i in range(depth - 1, -1, -1):
        safe = np.where(hot, (i + 1) * one, 1.0)
        tmp = next_one * (depth + 1) / safe
        total = total + np.where(
            hot, tmp, ws[i] * (depth + 1) / (zero * (depth - i))
        )
        next_one = np.where(
            hot, ws[i] - tmp * zero * (depth - i) / (depth + 1), next_one
        )
    return total


def batch_tree_shap_values(arrays: _TreeArrays, X: np.ndarray) -> np.ndarray:
    """Path-dependent TreeSHAP of one tree for every row of ``X`` at once.

    One traversal of the tree explains the whole batch: the path's
    ``one_fraction`` and ``pweight`` entries are ``(n_rows,)`` vectors
    (``zero_fraction`` is cover-only, hence a scalar), children are
    visited in fixed left-then-right order, and each row's hot/cold
    role is encoded by zeroing its ``one_fraction`` on the cold side —
    exactly the scalar EXTEND/UNWIND arithmetic, elementwise. Path
    state is copy-on-descend with rebind-only updates, so sibling
    subtrees never alias each other's vectors.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    n_rows, n_features = X.shape
    phi = np.zeros((n_rows, n_features))

    def recurse(node, feats, zeros, ones, ws, depth,
                zero_fraction, one_fraction, split_feature):
        feats = list(feats)
        zeros = list(zeros)
        ones = list(ones)
        ws = list(ws)
        while len(feats) <= depth:
            feats.append(-1)
            zeros.append(0.0)
            ones.append(None)
            ws.append(None)
        # EXTEND
        feats[depth] = split_feature
        zeros[depth] = zero_fraction
        ones[depth] = one_fraction
        ws[depth] = np.ones(n_rows) if depth == 0 else np.zeros(n_rows)
        for i in range(depth - 1, -1, -1):
            ws[i + 1] = ws[i + 1] + one_fraction * ws[i] * (i + 1) / (depth + 1)
            ws[i] = zero_fraction * ws[i] * (depth - i) / (depth + 1)
        if arrays.is_leaf[node]:
            leaf_value = arrays.value[node]
            for i in range(1, depth + 1):
                w = _vec_unwound_sum(zeros, ones, ws, depth, i)
                phi[:, feats[i]] += w * (ones[i] - zeros[i]) * leaf_value
            return
        f = int(arrays.feature[node])
        left, right = int(arrays.left[node]), int(arrays.right[node])
        goes_left = X[:, f] <= arrays.threshold[node]
        incoming_zero = 1.0
        incoming_one = one_ones
        new_depth = depth
        for i in range(1, depth + 1):
            if feats[i] == f:
                incoming_zero = zeros[i]
                incoming_one = ones[i]
                _vec_unwind(feats, zeros, ones, ws, depth, i)
                new_depth = depth - 1
                break
        recurse(
            left, feats, zeros, ones, ws, new_depth + 1,
            incoming_zero * arrays.frac[left],
            np.where(goes_left, incoming_one, 0.0), f,
        )
        recurse(
            right, feats, zeros, ones, ws, new_depth + 1,
            incoming_zero * arrays.frac[right],
            np.where(goes_left, 0.0, incoming_one), f,
        )

    one_ones = np.ones(n_rows)
    recurse(0, [], [], [], [], 0, 1.0, one_ones, -1)
    return phi


# Per-model precompute store: one TreePrecompute per live model object,
# shared by every explainer built on it (and by forked process-backend
# workers, which inherit it copy-on-write). Weak keys keep the store
# from pinning models in memory.
_PRECOMPUTE_STORE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


@dataclass
class TreePrecompute:
    """Everything instance-independent about one tree model's TreeSHAP.

    Built once per model (see :func:`tree_precompute`): the flattened
    node arrays with leaf scalars and cover fractions per component
    tree, the per-component ensemble weights, and the cover-weighted
    expected value. ``shap_values`` is then O(nodes · depth²) for an
    entire batch.
    """

    trees: list
    weights: list
    expected_value: float

    def shap_values(self, X: np.ndarray) -> np.ndarray:
        """Ensemble Shapley values for every row of ``X``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        phi = np.zeros((X.shape[0], X.shape[1]))
        for arrays, weight in zip(self.trees, self.weights):
            phi += weight * batch_tree_shap_values(arrays, X)
        return phi


def tree_precompute(model, components, expected_value: float) -> TreePrecompute:
    """The model's cached :class:`TreePrecompute`, built on first use."""
    try:
        cached = _PRECOMPUTE_STORE.get(model)
    except TypeError:
        cached = None
    if cached is not None:
        return cached
    pre = TreePrecompute(
        trees=[_TreeArrays(tree, ci) for tree, __, ci in components],
        weights=[weight for __, weight, __ci in components],
        expected_value=float(expected_value),
    )
    try:
        _PRECOMPUTE_STORE[model] = pre
    except TypeError:
        pass
    return pre


@instrument_explainer
class TreeShapExplainer:
    """Path-dependent TreeSHAP over any tree model in :mod:`repro.models`.

    For ensembles, per-tree Shapley values add (the game value functions
    add), so the explainer sums stage contributions — scaled by the
    learning rate for boosting, averaged for forests.
    """

    method_name = "tree_shap"

    def __init__(self, model) -> None:
        self.model = model
        self._components = self._decompose(model)
        # Hoisted init-time precompute: the ensemble expected value used
        # to be recomputed by full recursion on every explain call.
        base = sum(
            weight * _tree_base_value(tree, ci)
            for tree, weight, ci in self._components
        )
        if isinstance(model, (GradientBoostingClassifier,
                              GradientBoostingRegressor)):
            base += model.init_raw_
        self._expected_value = float(base)
        self._precompute: TreePrecompute | None = None

    @staticmethod
    def _decompose(model) -> list[tuple[TreeStructure, float, int | None]]:
        """Flatten a model into ``(structure, weight, class_index)`` terms."""
        if isinstance(model, (DecisionTreeRegressor,)):
            return [(model.tree_, 1.0, None)]
        if isinstance(model, DecisionTreeClassifier):
            return [(model.tree_, 1.0, int(np.argmax(model.classes_)))]
        if isinstance(model, RandomForestClassifier):
            weight = 1.0 / len(model.estimators_)
            out = []
            for tree in model.estimators_:
                # Positive class column within this tree's own class order.
                pos = int(np.searchsorted(tree.classes_, model.classes_[-1]))
                if tree.classes_[pos] != model.classes_[-1]:
                    raise ValueError("tree missing the ensemble's positive class")
                out.append((tree.tree_, weight, pos))
            return out
        if isinstance(model, (GradientBoostingClassifier, GradientBoostingRegressor)):
            return [
                (stage.tree_, model.learning_rate, None)
                for stage in model.estimators_
            ]
        raise TypeError(
            f"TreeShapExplainer does not support {type(model).__name__}"
        )

    @property
    def expected_value(self) -> float:
        """Base value: the ensemble's cover-weighted expected output.

        Computed once at construction (it is a pure function of the
        fitted trees), not re-derived per explanation.
        """
        return self._expected_value

    def precompute(self) -> TreePrecompute:
        """This model's shared :class:`TreePrecompute`, built lazily."""
        if self._precompute is None:
            self._precompute = tree_precompute(
                self.model, self._components, self._expected_value
            )
        return self._precompute

    def _model_output(self, x: np.ndarray) -> float:
        return float(self._model_output_batch(x[None, :])[0])

    def _model_output_batch(self, X: np.ndarray) -> np.ndarray:
        if isinstance(self.model, GradientBoostingClassifier):
            return np.asarray(self.model.decision_function(X), dtype=float)
        if isinstance(self.model, (DecisionTreeRegressor,
                                   GradientBoostingRegressor)):
            return np.asarray(self.model.predict(X), dtype=float)
        return np.asarray(self.model.predict_proba(X)[:, -1], dtype=float)

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        """One instance through the scalar per-tree recursion.

        Single rows deliberately stay on the scalar kernel: the
        vectorized batch kernel pays numpy per-node overhead that only
        amortizes across many rows (it is ~8× slower at ``n_rows=1``).
        Batches go through :meth:`explain_batch` for the fused path.
        """
        x = np.asarray(x, dtype=float).ravel()
        n = x.shape[0]
        phi = np.zeros(n)
        for tree, weight, class_index in self._components:
            phi += weight * tree_shap_values(tree, x, n, class_index)
        names = feature_names or [f"x{i}" for i in range(n)]
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=self.expected_value,
            prediction=self._model_output(x),
            method=self.method_name,
            meta={"n_trees": len(self._components)},
        )

    def explain_batch(
        self,
        X: np.ndarray,
        feature_names: list[str] | None = None,
        backend: str | None = None,
        n_procs: int | None = None,
    ) -> list[FeatureAttribution]:
        """Explain every row through one fused traversal per tree.

        The precompute is built (or fetched) once; each component tree
        is then walked a single time with vectorized path state, so the
        per-row marginal cost is the O(depth²) leaf bookkeeping rather
        than a full recursion. ``backend="process"``/``"thread"``
        shards contiguous row ranges — the precompute ships to forked
        workers once via copy-on-write, not per shard. Results are
        bitwise-identical across backends and batch splits (the kernel
        is elementwise per row); against per-row ``explain`` they agree
        to float accumulation order (the fused kernel visits children
        left-then-right, the scalar recursion hot-child-first). With
        ``REPRO_PRECOMPUTE=0`` this degrades to the plain per-row
        scalar loop.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        use_pre = resolve_precompute()
        sp = current_span()
        if sp is not None:
            sp.set_attr("amortized", bool(use_pre))
        if not use_pre:
            return [self.explain(x, feature_names=feature_names) for x in X]  # batch: allow
        pre = self.precompute()
        names = feature_names or [f"x{i}" for i in range(X.shape[1])]
        n_trees = len(self._components)

        def run_rows(bounds):
            lo, hi = bounds
            phi = pre.shap_values(X[lo:hi])
            preds = self._model_output_batch(X[lo:hi])
            return [
                FeatureAttribution(
                    values=phi[r],
                    feature_names=names,
                    base_value=self._expected_value,
                    prediction=float(preds[r]),
                    method=self.method_name,
                    meta={"n_trees": n_trees},
                )
                for r in range(hi - lo)
            ]

        backend_name = resolve_backend(backend)
        n_rows = X.shape[0]
        if backend_name == "serial" or n_rows < 2:
            return run_rows((0, n_rows))
        plan = plan_shards(n_rows, resolve_n_procs(n_procs))
        if plan.n_shards < 2:
            return run_rows((0, n_rows))
        outcomes = map_shards(
            run_rows, list(plan.slices), backend=backend_name,
            n_procs=n_procs, split_scope=False,
        )
        results: list[FeatureAttribution] = []
        for outcome in outcomes:
            if not outcome.ok:
                raise outcome.error
            results.extend(outcome.value)
        return results

    def value_function(self, x: np.ndarray):
        """The ensemble's EXPVALUE game as a batched coalition function.

        Exponential when fed to :func:`repro.shapley.exact.exact_shapley`;
        exists for cross-validation of the fast algorithm.
        """
        x = np.asarray(x, dtype=float).ravel()

        def v(masks: np.ndarray) -> np.ndarray:
            masks = np.atleast_2d(masks)
            out = np.zeros(masks.shape[0])
            for row, mask in enumerate(masks):
                total = sum(
                    weight * tree_expected_value(tree, x, mask, ci)
                    for tree, weight, ci in self._components
                )
                if isinstance(
                    self.model,
                    (GradientBoostingClassifier, GradientBoostingRegressor),
                ):
                    total += self.model.init_raw_
                out[row] = total
            return out

        return v
