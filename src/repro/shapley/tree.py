"""TreeSHAP: polynomial-time exact Shapley values for tree ensembles.

Implements the path-dependent algorithm of Lundberg et al. (2020, "From
local explanations to global understanding with explainable AI for
trees"): Shapley values of the *tree conditional expectation* game

    v(S) = EXPVALUE(x, S) — follow the tree; at a split on a feature
    outside S, average both children weighted by training cover,

computed for all features simultaneously in O(L·D²) per tree by carrying
the EXTEND/UNWIND summary of feature-subset proportions down each
root-to-leaf path. :func:`tree_expected_value` is the direct (exponential
when combined with subset enumeration) oracle of the same game; the test
suite checks the fast algorithm against exact enumeration through it.

Supported models: both CART trees, :class:`RandomForestClassifier`
(explains the averaged class-1 probability) and the gradient boosting
models (explains the raw additive score — log-odds for the classifier).
"""

from __future__ import annotations

import numpy as np

from ..core.explanation import FeatureAttribution
from ..obs import instrument_explainer
from ..models.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from ..models.forest import RandomForestClassifier
from ..models.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeStructure

__all__ = ["tree_shap_values", "tree_expected_value", "TreeShapExplainer"]


def _leaf_scalar(tree: TreeStructure, node: int, class_index: int | None) -> float:
    value = tree.value[node]
    if class_index is None:
        return float(value[0])
    return float(value[class_index])


def tree_expected_value(
    tree: TreeStructure,
    x: np.ndarray,
    mask: np.ndarray,
    class_index: int | None = None,
) -> float:
    """EXPVALUE: conditional expectation of the tree with features S fixed.

    ``mask[j]`` true means feature ``j`` is *present* (follows ``x``);
    absent features are integrated out by cover-weighted averaging.
    """
    x = np.asarray(x, dtype=float).ravel()
    mask = np.asarray(mask, dtype=bool).ravel()

    def recurse(node: int) -> float:
        if tree.is_leaf(node):
            return _leaf_scalar(tree, node, class_index)
        feature = tree.feature[node]
        left, right = tree.children_left[node], tree.children_right[node]
        if mask[feature]:
            child = left if x[feature] <= tree.threshold[node] else right
            return recurse(child)
        w_left = tree.n_node_samples[left]
        w_right = tree.n_node_samples[right]
        total = w_left + w_right
        return (w_left * recurse(left) + w_right * recurse(right)) / total

    return recurse(0)


class _PathElement:
    """One entry of the TreeSHAP path summary."""

    __slots__ = ("feature", "zero_fraction", "one_fraction", "pweight")

    def __init__(self, feature: int = -1, zero_fraction: float = 0.0,
                 one_fraction: float = 0.0, pweight: float = 0.0) -> None:
        self.feature = feature
        self.zero_fraction = zero_fraction
        self.one_fraction = one_fraction
        self.pweight = pweight

    def copy(self) -> "_PathElement":
        return _PathElement(
            self.feature, self.zero_fraction, self.one_fraction, self.pweight
        )


def _extend(path: list[_PathElement], depth: int, zero_fraction: float,
            one_fraction: float, feature: int) -> None:
    path[depth].feature = feature
    path[depth].zero_fraction = zero_fraction
    path[depth].one_fraction = one_fraction
    path[depth].pweight = 1.0 if depth == 0 else 0.0
    for i in range(depth - 1, -1, -1):
        path[i + 1].pweight += (
            one_fraction * path[i].pweight * (i + 1) / (depth + 1)
        )
        path[i].pweight = (
            zero_fraction * path[i].pweight * (depth - i) / (depth + 1)
        )


def _unwind(path: list[_PathElement], depth: int, index: int) -> None:
    one_fraction = path[index].one_fraction
    zero_fraction = path[index].zero_fraction
    next_one = path[depth].pweight
    for i in range(depth - 1, -1, -1):
        if one_fraction != 0.0:
            tmp = path[i].pweight
            path[i].pweight = next_one * (depth + 1) / ((i + 1) * one_fraction)
            next_one = tmp - path[i].pweight * zero_fraction * (depth - i) / (depth + 1)
        else:
            path[i].pweight = path[i].pweight * (depth + 1) / (
                zero_fraction * (depth - i)
            )
    for i in range(index, depth):
        path[i].feature = path[i + 1].feature
        path[i].zero_fraction = path[i + 1].zero_fraction
        path[i].one_fraction = path[i + 1].one_fraction


def _unwound_sum(path: list[_PathElement], depth: int, index: int) -> float:
    one_fraction = path[index].one_fraction
    zero_fraction = path[index].zero_fraction
    next_one = path[depth].pweight
    total = 0.0
    for i in range(depth - 1, -1, -1):
        if one_fraction != 0.0:
            tmp = next_one * (depth + 1) / ((i + 1) * one_fraction)
            total += tmp
            next_one = path[i].pweight - tmp * zero_fraction * (depth - i) / (depth + 1)
        else:
            total += path[i].pweight * (depth + 1) / (zero_fraction * (depth - i))
    return total


def tree_shap_values(
    tree: TreeStructure,
    x: np.ndarray,
    n_features: int,
    class_index: int | None = None,
) -> np.ndarray:
    """Exact Shapley values of one tree's conditional-expectation game."""
    x = np.asarray(x, dtype=float).ravel()
    phi = np.zeros(n_features)
    max_depth = tree.depth(0) + 2

    def recurse(
        node: int,
        parent_path: list[_PathElement],
        depth: int,
        zero_fraction: float,
        one_fraction: float,
        feature: int,
    ) -> None:
        path = [el.copy() for el in parent_path]
        while len(path) <= depth + max_depth:
            path.append(_PathElement())
        _extend(path, depth, zero_fraction, one_fraction, feature)
        if tree.is_leaf(node):
            leaf_value = _leaf_scalar(tree, node, class_index)
            for i in range(1, depth + 1):
                w = _unwound_sum(path, depth, i)
                phi[path[i].feature] += (
                    w * (path[i].one_fraction - path[i].zero_fraction) * leaf_value
                )
            return
        split_feature = tree.feature[node]
        left, right = tree.children_left[node], tree.children_right[node]
        hot, cold = (
            (left, right) if x[split_feature] <= tree.threshold[node] else (right, left)
        )
        incoming_zero, incoming_one = 1.0, 1.0
        new_depth = depth
        # A repeat split on the same feature must first undo its previous
        # path entry (the path tracks *unique* features).
        for i in range(1, depth + 1):
            if path[i].feature == split_feature:
                incoming_zero = path[i].zero_fraction
                incoming_one = path[i].one_fraction
                _unwind(path, depth, i)
                new_depth = depth - 1
                break
        cover = tree.n_node_samples[node]
        recurse(
            hot, path, new_depth + 1,
            incoming_zero * tree.n_node_samples[hot] / cover,
            incoming_one, split_feature,
        )
        recurse(
            cold, path, new_depth + 1,
            incoming_zero * tree.n_node_samples[cold] / cover,
            0.0, split_feature,
        )

    recurse(0, [], 0, 1.0, 1.0, -1)
    return phi


def _tree_base_value(tree: TreeStructure, class_index: int | None) -> float:
    """Cover-weighted mean leaf value = EXPVALUE with the empty set."""

    def recurse(node: int) -> float:
        if tree.is_leaf(node):
            return _leaf_scalar(tree, node, class_index)
        left, right = tree.children_left[node], tree.children_right[node]
        w_left, w_right = tree.n_node_samples[left], tree.n_node_samples[right]
        return (w_left * recurse(left) + w_right * recurse(right)) / (w_left + w_right)

    return recurse(0)


@instrument_explainer
class TreeShapExplainer:
    """Path-dependent TreeSHAP over any tree model in :mod:`repro.models`.

    For ensembles, per-tree Shapley values add (the game value functions
    add), so the explainer sums stage contributions — scaled by the
    learning rate for boosting, averaged for forests.
    """

    method_name = "tree_shap"

    def __init__(self, model) -> None:
        self.model = model
        self._components = self._decompose(model)

    @staticmethod
    def _decompose(model) -> list[tuple[TreeStructure, float, int | None]]:
        """Flatten a model into ``(structure, weight, class_index)`` terms."""
        if isinstance(model, (DecisionTreeRegressor,)):
            return [(model.tree_, 1.0, None)]
        if isinstance(model, DecisionTreeClassifier):
            return [(model.tree_, 1.0, int(np.argmax(model.classes_)))]
        if isinstance(model, RandomForestClassifier):
            weight = 1.0 / len(model.estimators_)
            out = []
            for tree in model.estimators_:
                # Positive class column within this tree's own class order.
                pos = int(np.searchsorted(tree.classes_, model.classes_[-1]))
                if tree.classes_[pos] != model.classes_[-1]:
                    raise ValueError("tree missing the ensemble's positive class")
                out.append((tree.tree_, weight, pos))
            return out
        if isinstance(model, (GradientBoostingClassifier, GradientBoostingRegressor)):
            return [
                (stage.tree_, model.learning_rate, None)
                for stage in model.estimators_
            ]
        raise TypeError(
            f"TreeShapExplainer does not support {type(model).__name__}"
        )

    @property
    def expected_value(self) -> float:
        """Base value: the ensemble's cover-weighted expected output."""
        base = sum(
            weight * _tree_base_value(tree, ci)
            for tree, weight, ci in self._components
        )
        if isinstance(self.model, (GradientBoostingClassifier, GradientBoostingRegressor)):
            base += self.model.init_raw_
        return float(base)

    def _model_output(self, x: np.ndarray) -> float:
        if isinstance(self.model, GradientBoostingClassifier):
            return float(self.model.decision_function(x[None, :])[0])
        if isinstance(self.model, (DecisionTreeRegressor, GradientBoostingRegressor)):
            return float(self.model.predict(x[None, :])[0])
        proba = self.model.predict_proba(x[None, :])[0]
        return float(proba[-1])

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = np.asarray(x, dtype=float).ravel()
        n = x.shape[0]
        phi = np.zeros(n)
        for tree, weight, class_index in self._components:
            phi += weight * tree_shap_values(tree, x, n, class_index)
        names = feature_names or [f"x{i}" for i in range(n)]
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=self.expected_value,
            prediction=self._model_output(x),
            method=self.method_name,
            meta={"n_trees": len(self._components)},
        )

    def value_function(self, x: np.ndarray):
        """The ensemble's EXPVALUE game as a batched coalition function.

        Exponential when fed to :func:`repro.shapley.exact.exact_shapley`;
        exists for cross-validation of the fast algorithm.
        """
        x = np.asarray(x, dtype=float).ravel()

        def v(masks: np.ndarray) -> np.ndarray:
            masks = np.atleast_2d(masks)
            out = np.zeros(masks.shape[0])
            for row, mask in enumerate(masks):
                total = sum(
                    weight * tree_expected_value(tree, x, mask, ci)
                    for tree, weight, ci in self._components
                )
                if isinstance(
                    self.model,
                    (GradientBoostingClassifier, GradientBoostingRegressor),
                ):
                    total += self.model.init_raw_
                out[row] = total
            return out

        return v
