"""Quantitative Input Influence (Datta, Sen & Zick 2016).

QII measures the influence of inputs on a *quantity of interest* by
randomized interventions: replace the feature(s) of interest with draws
from their marginal distribution while holding the rest of the instance
fixed, and record how much the quantity changes.

Three estimators from the paper:

* :func:`unary_qii` — ι(i) = E|f(x) − f(x with X_i resampled)| for one
  feature (the paper's unary influence for an individual outcome).
* :func:`set_qii` — the same with a *set* of features resampled jointly,
  which captures joint influence that unary QII misses.
* :func:`shapley_qii` — the Shapley value of the set-influence game,
  the paper's "marginal influence averaged across coalitions".
"""

from __future__ import annotations

import numpy as np

from ..core.base import AttributionExplainer
from ..core.coalition_engine import batched_predict
from ..core.explanation import FeatureAttribution
from ..games.base import walk_masks
from ..games.plan import mean_walks_reduce, permutation_plan, shared_plan
from ..robust.guard import check_instance
from .sampling import permutation_shapley

__all__ = ["unary_qii", "set_qii", "shapley_qii", "QIIExplainer"]


def _resample_features(
    x: np.ndarray,
    background: np.ndarray,
    features: list[int],
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Rows equal to ``x`` with ``features`` replaced by background draws.

    Each feature is drawn independently (the paper's fully factorized
    intervention distribution).
    """
    rows = np.tile(x, (n_samples, 1))
    for j in features:
        rows[:, j] = background[rng.integers(0, background.shape[0], n_samples), j]
    return rows


def set_qii(
    predict_fn,
    x: np.ndarray,
    background: np.ndarray,
    features: list[int],
    n_samples: int = 300,
    seed: int = 0,
) -> float:
    """Influence of jointly resampling a feature set on the prediction.

    Defined as E[f(x)] − E[f(x with S resampled)] for the explained
    output, so positive influence means the features support the current
    prediction.
    """
    x = np.asarray(x, dtype=float).ravel()
    if not features:
        return 0.0
    rng = np.random.default_rng(seed)
    rows = _resample_features(x, np.atleast_2d(background), list(features),
                              n_samples, rng)
    original = float(predict_fn(x[None, :])[0])
    return original - float(np.mean(predict_fn(rows)))


def unary_qii(
    predict_fn,
    x: np.ndarray,
    background: np.ndarray,
    n_samples: int = 300,
    seed: int = 0,
) -> np.ndarray:
    """Unary QII of every feature (one-at-a-time resampling)."""
    x = np.asarray(x, dtype=float).ravel()
    return np.array([
        set_qii(predict_fn, x, background, [j], n_samples, seed + j)
        for j in range(x.shape[0])
    ])


def shapley_qii(
    predict_fn,
    x: np.ndarray,
    background: np.ndarray,
    n_permutations: int = 60,
    n_samples: int = 100,
    seed: int = 0,
    max_batch_rows: int | None = None,
    return_diagnostics: bool = False,
) -> np.ndarray | tuple[np.ndarray, dict]:
    """Shapley value of the set-QII game, by permutation sampling.

    The game value of coalition S is the *negative* set influence of the
    complement (equivalently, the expected output with only S fixed),
    which makes the grand-coalition value f(x) and recovers the
    Datta et al. aggregate marginal influence.

    The value function is *stochastic* — every evaluation consumes fresh
    draws from the shared generator — so the coalition engine's value
    cache must be bypassed; only its memory-bounded batching is used.
    Intervention rows are still generated mask-by-mask in the historical
    order, so seeded results are identical to the pre-engine loop.

    With ``return_diagnostics=True`` the sampler's convergence record is
    returned alongside ``phi`` (see :func:`permutation_shapley`): a
    budget exhausted mid-estimate yields the partial estimate with
    ``converged=False`` instead of raising.
    """
    x = np.asarray(x, dtype=float).ravel()
    n = x.shape[0]
    background = np.atleast_2d(background)
    rng = np.random.default_rng(seed)

    def value_fn(masks: np.ndarray) -> np.ndarray:
        masks = np.atleast_2d(masks)
        out = np.zeros(masks.shape[0])
        blocks: list[np.ndarray] = []
        block_rows: list[int] = []
        for row, mask in enumerate(masks):
            absent = [j for j in range(n) if not mask[j]]
            if not absent:
                out[row] = float(predict_fn(x[None, :])[0])
                continue
            blocks.append(
                _resample_features(x, background, absent, n_samples, rng)
            )
            block_rows.append(row)
        if blocks:
            preds = batched_predict(
                predict_fn, np.concatenate(blocks), max_batch_rows
            )
            means = preds.reshape(len(block_rows), n_samples).mean(axis=1)
            out[block_rows] = means
        return out

    phi, __, diagnostics = permutation_shapley(
        value_fn, n, n_permutations=n_permutations, seed=seed,
        return_diagnostics=True,
    )
    return (phi, diagnostics) if return_diagnostics else phi


class QIIExplainer(AttributionExplainer):
    """Feature attribution via Shapley QII.

    Numerically this coincides with sampling SHAP under a factorized
    background; it is kept as a distinct explainer because QII predates
    SHAP and the tutorial lists it separately (§2.1.2).
    """

    method_name = "shapley_qii"

    def __init__(self, model, background: np.ndarray,
                 n_permutations: int = 60, n_samples: int = 100,
                 output: str = "auto", seed: int = 0,
                 max_batch_rows: int | None = None, guard=None) -> None:
        super().__init__(model, output, guard=guard)
        self.background = np.atleast_2d(np.asarray(background, dtype=float))
        self.n_permutations = n_permutations
        self.n_samples = n_samples
        self.seed = seed
        self.max_batch_rows = max_batch_rows

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = check_instance(x, self.background.shape[1])
        prediction = float(self.predict_fn(x[None, :])[0])
        phi, convergence = shapley_qii(
            self.predict_fn, x, self.background,
            n_permutations=self.n_permutations,
            n_samples=self.n_samples,
            seed=self.seed,
            max_batch_rows=self.max_batch_rows,
            return_diagnostics=True,
        )
        names = feature_names or [f"x{i}" for i in range(x.shape[0])]
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=prediction - float(phi.sum()),
            prediction=prediction,
            method=self.method_name,
            meta={"convergence": convergence},
        )

    # -- amortized batch path (shared coalition plan) ----------------------

    def _amortized_context(self, X: np.ndarray, feature_names=None):
        """Share the walk schedule; interventions stay per-row.

        QII's value function is *stochastic* — each row's evaluation
        consumes draws from its own ``default_rng(seed)`` in mask order
        — so masks are never deduplicated here. The plan contributes
        the shared permutation draws; the rows replay the intervention
        stream exactly and fuse all model calls into one batch.
        """
        n = X.shape[1]
        key = ("permutation", n, self.n_permutations, True, self.seed)
        plan = shared_plan(
            self,
            key,
            lambda: permutation_plan(
                n, n_permutations=self.n_permutations, seed=self.seed
            ),
            X.shape[0],
        )
        # The per-occurrence mask sequence, in the serial estimator's
        # exact walk order (dedup would desynchronize the rng stream).
        walk_mask_seq = [walk_masks(p) for p in plan.walk_perms]
        return plan, walk_mask_seq

    def _amortized_rows(self, X, lo, hi, ctx, feature_names=None):
        plan, walk_mask_seq = ctx
        rows = X[lo:hi]
        n = X.shape[1]
        names = feature_names or [f"x{i}" for i in range(n)]
        pair = self.n_permutations > 1
        n_batches = self.n_permutations // 2 if pair else self.n_permutations
        convergence = {
            "converged": True,
            "n_walks_completed": plan.n_walks,
            "n_walks_requested": n_batches * (2 if pair else 1),
            "budget_error": None,
        }
        out = []
        for r in range(rows.shape[0]):
            x = rows[r]
            prediction = float(self.predict_fn(x[None, :])[0])
            # Fresh per-row generator, consumed in the serial mask
            # order: every walk's masks, each mask's absent features in
            # index order — the exact stream `shapley_qii` would draw.
            rng = np.random.default_rng(self.seed)
            values = np.empty((plan.n_walks, n + 1))
            blocks: list[np.ndarray] = []
            slots: list[tuple[int, int]] = []
            for w, masks in enumerate(walk_mask_seq):
                for k, mask in enumerate(masks):
                    absent = [j for j in range(n) if not mask[j]]
                    if not absent:
                        values[w, k] = prediction
                        continue
                    blocks.append(_resample_features(
                        x, self.background, absent, self.n_samples, rng
                    ))
                    slots.append((w, k))
            if blocks:
                preds = batched_predict(
                    self.predict_fn, np.concatenate(blocks),
                    self.max_batch_rows,
                )
                means = preds.reshape(len(slots), self.n_samples).mean(axis=1)
                for (w, k), m in zip(slots, means):
                    values[w, k] = m
            phi, __ = mean_walks_reduce(values, plan.walk_perms)
            out.append(FeatureAttribution(
                values=phi,
                feature_names=names,
                base_value=prediction - float(phi.sum()),
                prediction=prediction,
                method=self.method_name,
                meta={"convergence": dict(convergence)},
            ))
        return out
