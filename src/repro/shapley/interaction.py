"""Shapley interaction values — beyond additive attributions (§2.1.2).

A recurring criticism the tutorial records against additive feature
attributions [40] is their "inability to capture the indirect influences
of features": purely interactional signal (XOR) is invisible to any
additive score. The Shapley *interaction index* (Grabisch & Roubens;
used by TreeSHAP's interaction values) fixes this by attributing to
pairs:

    φ_{ij} = Σ_{S ⊆ N∖{i,j}} w(|S|) · Δ_{ij}v(S),
    Δ_{ij}v(S) = v(S∪{i,j}) − v(S∪{i}) − v(S∪{j}) + v(S),
    w(s) = s!(n−s−2)! / (2·(n−1)!),

with the diagonal defined so each row sums to the ordinary Shapley value:
φ_{ii} = φ_i − Σ_{j≠i} φ_{ij}. Exact enumeration here (2^n coalition
evaluations — fine at tabular widths); the matrix is symmetric and
satisfies the efficiency identity Σ_{ij} φ_{ij} = v(N) − v(∅).
"""

from __future__ import annotations

from itertools import combinations
from math import factorial

import numpy as np

from ..core.base import AttributionExplainer
from ..core.explanation import FeatureAttribution
from ..core.sampling import MaskingSampler
from .exact import all_coalitions, exact_shapley

__all__ = ["shapley_interaction_values", "InteractionExplainer"]


def shapley_interaction_values(value_fn, n_players: int) -> np.ndarray:
    """Exact Shapley interaction matrix of a coalitional game.

    Returns the symmetric ``(n, n)`` matrix with pairwise interaction
    indices off-diagonal and main effects on the diagonal; rows sum to
    the ordinary Shapley values and the total sums to v(N) − v(∅).
    """
    if n_players > 16:
        raise ValueError(
            f"exact interaction values over {n_players} players need "
            f"2^{n_players} evaluations"
        )
    subsets = all_coalitions(n_players)
    masks = np.zeros((len(subsets), n_players), dtype=bool)
    for row, subset in enumerate(subsets):
        masks[row, list(subset)] = True
    values = np.asarray(value_fn(masks), dtype=float)
    value_of = {subset: values[row] for row, subset in enumerate(subsets)}

    phi = exact_shapley(value_fn, n_players)
    matrix = np.zeros((n_players, n_players))
    if n_players >= 2:
        for i, j in combinations(range(n_players), 2):
            others = [p for p in range(n_players) if p not in (i, j)]
            total = 0.0
            for size in range(len(others) + 1):
                weight = (
                    factorial(size) * factorial(n_players - size - 2)
                    / (2.0 * factorial(n_players - 1))
                )
                for subset in combinations(others, size):
                    s = tuple(sorted(subset))
                    s_i = tuple(sorted(subset + (i,)))
                    s_j = tuple(sorted(subset + (j,)))
                    s_ij = tuple(sorted(subset + (i, j)))
                    delta = (
                        value_of[s_ij] - value_of[s_i]
                        - value_of[s_j] + value_of[s]
                    )
                    total += weight * delta
            matrix[i, j] = matrix[j, i] = total
    for i in range(n_players):
        matrix[i, i] = phi[i] - (matrix[i].sum() - matrix[i, i])
    return matrix


class InteractionExplainer(AttributionExplainer):
    """Model-agnostic exact Shapley interaction values.

    Uses the same interventional value function as
    :class:`repro.shapley.exact.ExactShapleyExplainer`; the returned
    attribution's ``values`` are the main effects (diagonal) and the full
    matrix sits in ``meta["interactions"]``.
    """

    method_name = "shapley_interactions"

    def __init__(self, model, background: np.ndarray,
                 max_background: int = 100, output: str = "auto") -> None:
        super().__init__(model, output)
        self.sampler = MaskingSampler(background, max_background=max_background)

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = np.asarray(x, dtype=float).ravel()
        n = x.shape[0]
        v = self.sampler.value_function(self.predict_fn, x)
        matrix = shapley_interaction_values(v, n)
        base = float(v(np.zeros((1, n), dtype=bool))[0])
        names = feature_names or [f"x{i}" for i in range(n)]
        return FeatureAttribution(
            values=np.diag(matrix).copy(),
            feature_names=names,
            base_value=base,
            prediction=float(self.predict_fn(x[None, :])[0]),
            method=self.method_name,
            meta={"interactions": matrix},
        )

    def strongest_interactions(self, x: np.ndarray, k: int = 3,
                               feature_names: list[str] | None = None
                               ) -> list[tuple[str, str, float]]:
        """The k largest |pairwise interaction| terms at ``x``."""
        att = self.explain(x, feature_names)
        matrix = att.meta["interactions"]
        n = matrix.shape[0]
        pairs = [
            (att.feature_names[i], att.feature_names[j], float(matrix[i, j]))
            for i in range(n) for j in range(i + 1, n)
        ]
        return sorted(pairs, key=lambda p: -abs(p[2]))[:k]
