"""Monte-Carlo Shapley estimation by permutation sampling.

The Shapley value is the expectation, over a uniformly random permutation
π of the players, of the marginal contribution of player i to the set of
players preceding it:

    φ_i = E_π[ v(pre_π(i) ∪ {i}) − v(pre_π(i)) ].

Sampling permutations (Castro et al. 2009) gives an unbiased estimator
whose error decays as O(1/√m); the antithetic variant pairs each
permutation with its reverse, which cancels much of the variance for
roughly symmetric games. E2 plots exactly this convergence.

The walk loop itself lives in the shared estimator suite
(:func:`repro.games.estimators.permutation_estimator`, ``mean_walks``
mode) — this module keeps the historical ``(phi, std_err)`` API and the
explainer on top. The pre-games loop is retained as
:func:`legacy_permutation_shapley` for the seeded-parity tests.

Graceful degradation: when the guarded runtime's deadline or model-query
budget runs out mid-estimate (:class:`repro.robust.BudgetExceededError`),
the walks already completed still form an unbiased — just noisier —
estimator, so the sampler stops early and returns it instead of raising.
``return_diagnostics=True`` exposes the convergence record the explainers
surface in ``meta["convergence"]``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.base import AttributionExplainer
from ..core.explanation import FeatureAttribution
from ..core.sampling import MaskingSampler
from ..games.adapters import FeatureMaskingGame
from ..games.estimators import permutation_estimator
from ..games.plan import mean_walks_reduce, permutation_plan, shared_plan
from ..robust.errors import BudgetExceededError
from ..robust.guard import check_instance

__all__ = [
    "permutation_shapley",
    "legacy_permutation_shapley",
    "SamplingShapleyExplainer",
]


def permutation_shapley(
    value_fn: Callable[[np.ndarray], np.ndarray],
    n_players: int,
    n_permutations: int = 100,
    antithetic: bool = True,
    seed: int = 0,
    return_diagnostics: bool = False,
    backend: str | None = None,
    n_procs: int | None = None,
) -> tuple[np.ndarray, np.ndarray] | tuple[np.ndarray, np.ndarray, dict]:
    """Estimate Shapley values from random permutations.

    Returns ``(phi, std_err)`` — the estimates and their per-player
    standard errors over sampled permutations. With
    ``return_diagnostics=True`` a third element records convergence:
    ``{"converged", "n_walks_completed", "n_walks_requested",
    "budget_error"}``. A :class:`BudgetExceededError` raised by the
    value function stops sampling early; if at least one walk finished,
    the partial estimate is returned (``converged=False``), otherwise
    the error propagates. ``backend`` selects the execution backend
    (:mod:`repro.exec`) — sharding only applies when ``value_fn`` is a
    shard-eligible :class:`~repro.games.base.Game`, and the estimate is
    bitwise-identical whichever backend runs it.
    """
    est = permutation_estimator(
        value_fn,
        n_players=n_players,
        n_permutations=n_permutations,
        antithetic=antithetic,
        seed=seed,
        aggregate="mean_walks",
        backend=backend,
        n_procs=n_procs,
    )
    if not return_diagnostics:
        return est.values, est.std_err
    return est.values, est.std_err, est.diagnostics


def legacy_permutation_shapley(
    value_fn: Callable[[np.ndarray], np.ndarray],
    n_players: int,
    n_permutations: int = 100,
    antithetic: bool = True,
    seed: int = 0,
    return_diagnostics: bool = False,
) -> tuple[np.ndarray, np.ndarray] | tuple[np.ndarray, np.ndarray, dict]:
    """The pre-games walk loop, kept for the seeded bitwise-parity tests."""
    rng = np.random.default_rng(seed)
    contributions: list[np.ndarray] = []
    n_batches = (
        n_permutations // 2 if antithetic and n_permutations > 1 else n_permutations
    )
    walks_per_batch = 2 if antithetic and n_permutations > 1 else 1
    budget_error: BudgetExceededError | None = None
    for __ in range(n_batches):
        perm = rng.permutation(n_players)  # games: allow
        perms = [perm, perm[::-1]] if antithetic else [perm]
        try:
            for p in perms:
                # One walk through the permutation = n+1 coalition evaluations.
                masks = np.zeros((n_players + 1, n_players), dtype=bool)
                for pos, player in enumerate(p):
                    masks[pos + 1] = masks[pos]
                    masks[pos + 1, player] = True
                values = np.asarray(value_fn(masks), dtype=float)
                contrib = np.zeros(n_players)
                contrib[p] = values[1:] - values[:-1]
                contributions.append(contrib)
        except BudgetExceededError as e:
            if not contributions:
                raise
            budget_error = e
            break
    stacked = np.stack(contributions)
    phi = stacked.mean(axis=0)
    std_err = stacked.std(axis=0, ddof=1) / np.sqrt(stacked.shape[0]) \
        if stacked.shape[0] > 1 else np.zeros(n_players)
    if not return_diagnostics:
        return phi, std_err
    diagnostics = {
        "converged": budget_error is None,
        "n_walks_completed": len(contributions),
        "n_walks_requested": n_batches * walks_per_batch,
        "budget_error": None if budget_error is None else str(budget_error),
    }
    return phi, std_err, diagnostics


class SamplingShapleyExplainer(AttributionExplainer):
    """Model-agnostic sampled SHAP with the interventional value function.

    Coalition evaluation runs through the shared coalition engine by
    default (as a :class:`repro.games.FeatureMaskingGame`): permutation
    walks re-visit many coalitions (every walk hits ∅ and N; antithetic
    pairs and short prefixes collide constantly on small feature
    counts), and the packed-bit value cache turns those repeats into
    dictionary lookups instead of model queries.
    """

    method_name = "sampling_shap"

    def __init__(
        self,
        model,
        background: np.ndarray,
        n_permutations: int = 100,
        antithetic: bool = True,
        max_background: int = 100,
        output: str = "auto",
        seed: int = 0,
        max_batch_rows: int | None = None,
        engine: bool = True,
        guard=None,
        backend: str | None = None,
        n_procs: int | None = None,
    ) -> None:
        super().__init__(model, output, guard=guard)
        self.sampler = MaskingSampler(
            background, max_background=max_background, max_batch_rows=max_batch_rows
        )
        self.n_permutations = n_permutations
        self.antithetic = antithetic
        self.seed = seed
        self.engine = engine
        self.backend = backend
        self.n_procs = n_procs

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = check_instance(x, self.sampler.background.shape[1])
        n = x.shape[0]
        # The engine path hands the *game object* to the estimator (not
        # its bound value method): the estimator resolves either to the
        # identical value path, but only the game form carries the
        # deterministic/shardable capabilities the exec backend gates on.
        game = (
            FeatureMaskingGame(self.predict_fn, x, engine=self.sampler)
            if self.engine
            else None
        )
        v = (
            game.value
            if game is not None
            else self.sampler.legacy_value_function(self.predict_fn, x)
        )
        # Prediction and base value come first: if the query budget runs
        # out mid-sampling, the partial estimate is still reportable.
        prediction = float(self.predict_fn(x[None, :])[0])
        base = float(v(np.zeros((1, n), dtype=bool))[0])
        phi, std_err, convergence = permutation_shapley(
            game if game is not None else v, n,
            n_permutations=self.n_permutations,
            antithetic=self.antithetic,
            seed=self.seed,
            return_diagnostics=True,
            backend=self.backend,
            n_procs=self.n_procs,
        )
        names = feature_names or [f"x{i}" for i in range(n)]
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=prediction,
            method=self.method_name,
            meta={"std_err": std_err, "n_permutations": self.n_permutations,
                  "convergence": convergence},
        )

    # -- amortized batch path (shared coalition plan) ----------------------

    def _amortized_supported(self) -> bool:
        # The legacy (engine-off) value path predates the coalition
        # cache whose dedup semantics the plan mirrors; keep it per-row.
        return bool(self.engine)

    def _amortized_context(self, X: np.ndarray, feature_names=None):
        """One shared permutation plan per (n, budget, seed) design."""
        n = X.shape[1]
        key = ("permutation", n, self.n_permutations, self.antithetic,
               self.seed)
        return shared_plan(
            self,
            key,
            lambda: permutation_plan(
                n,
                n_permutations=self.n_permutations,
                antithetic=self.antithetic,
                seed=self.seed,
            ),
            X.shape[0],
        )

    def _amortized_rows(self, X, lo, hi, plan, feature_names=None):
        """Rows ``[lo, hi)`` against the shared plan, fused per shard.

        Every distinct coalition the walk schedule visits is evaluated
        once per row through the engine's fused ``rows × coalitions``
        grid; gathering through ``plan.value_index`` then reproduces the
        per-walk value sequences the serial estimator saw — including
        its cache-dedup semantics — so the reduction is bitwise the
        serial ``explain``.
        """
        rows = X[lo:hi]
        n = X.shape[1]
        values = self.sampler.batch_value_matrix(
            self.predict_fn, rows, plan.unique_masks
        )
        names = feature_names or [f"x{i}" for i in range(n)]
        # Same requested-walk arithmetic as the estimator's diagnostics
        # (completed is the actual walk count, which exceeds requested
        # in the lone-antithetic-permutation edge case there too).
        pair = self.antithetic and self.n_permutations > 1
        n_batches = self.n_permutations // 2 if pair else self.n_permutations
        convergence = {
            "converged": True,
            "n_walks_completed": plan.n_walks,
            "n_walks_requested": n_batches * (2 if pair else 1),
            "budget_error": None,
        }
        out = []
        for r in range(rows.shape[0]):
            prediction = float(self.predict_fn(rows[r][None, :])[0])
            walk_values = values[r][plan.value_index]
            phi, std_err = mean_walks_reduce(walk_values, plan.walk_perms)
            out.append(FeatureAttribution(
                values=phi,
                feature_names=names,
                base_value=float(values[r][plan.empty_index]),
                prediction=prediction,
                method=self.method_name,
                meta={"std_err": std_err,
                      "n_permutations": self.n_permutations,
                      "convergence": dict(convergence)},
            ))
        return out
