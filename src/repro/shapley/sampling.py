"""Monte-Carlo Shapley estimation by permutation sampling.

The Shapley value is the expectation, over a uniformly random permutation
π of the players, of the marginal contribution of player i to the set of
players preceding it:

    φ_i = E_π[ v(pre_π(i) ∪ {i}) − v(pre_π(i)) ].

Sampling permutations (Castro et al. 2009) gives an unbiased estimator
whose error decays as O(1/√m); the antithetic variant pairs each
permutation with its reverse, which cancels much of the variance for
roughly symmetric games. E2 plots exactly this convergence.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.base import AttributionExplainer
from ..core.explanation import FeatureAttribution
from ..core.sampling import MaskingSampler

__all__ = ["permutation_shapley", "SamplingShapleyExplainer"]


def permutation_shapley(
    value_fn: Callable[[np.ndarray], np.ndarray],
    n_players: int,
    n_permutations: int = 100,
    antithetic: bool = True,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Estimate Shapley values from random permutations.

    Returns ``(phi, std_err)`` — the estimates and their per-player
    standard errors over sampled permutations.
    """
    rng = np.random.default_rng(seed)
    contributions: list[np.ndarray] = []
    n_batches = (
        n_permutations // 2 if antithetic and n_permutations > 1 else n_permutations
    )
    for __ in range(n_batches):
        perm = rng.permutation(n_players)
        perms = [perm, perm[::-1]] if antithetic else [perm]
        for p in perms:
            # One walk through the permutation = n+1 coalition evaluations.
            masks = np.zeros((n_players + 1, n_players), dtype=bool)
            for pos, player in enumerate(p):
                masks[pos + 1] = masks[pos]
                masks[pos + 1, player] = True
            values = np.asarray(value_fn(masks), dtype=float)
            contrib = np.zeros(n_players)
            contrib[p] = values[1:] - values[:-1]
            contributions.append(contrib)
    stacked = np.stack(contributions)
    phi = stacked.mean(axis=0)
    std_err = stacked.std(axis=0, ddof=1) / np.sqrt(stacked.shape[0]) \
        if stacked.shape[0] > 1 else np.zeros(n_players)
    return phi, std_err


class SamplingShapleyExplainer(AttributionExplainer):
    """Model-agnostic sampled SHAP with the interventional value function.

    Coalition evaluation runs through the shared coalition engine by
    default: permutation walks re-visit many coalitions (every walk hits
    ∅ and N; antithetic pairs and short prefixes collide constantly on
    small feature counts), and the packed-bit value cache turns those
    repeats into dictionary lookups instead of model queries.
    """

    method_name = "sampling_shap"

    def __init__(
        self,
        model,
        background: np.ndarray,
        n_permutations: int = 100,
        antithetic: bool = True,
        max_background: int = 100,
        output: str = "auto",
        seed: int = 0,
        max_batch_rows: int | None = None,
        engine: bool = True,
    ) -> None:
        super().__init__(model, output)
        self.sampler = MaskingSampler(
            background, max_background=max_background, max_batch_rows=max_batch_rows
        )
        self.n_permutations = n_permutations
        self.antithetic = antithetic
        self.seed = seed
        self.engine = engine

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = np.asarray(x, dtype=float).ravel()
        n = x.shape[0]
        v = (
            self.sampler.value_function(self.predict_fn, x)
            if self.engine
            else self.sampler.legacy_value_function(self.predict_fn, x)
        )
        phi, std_err = permutation_shapley(
            v, n,
            n_permutations=self.n_permutations,
            antithetic=self.antithetic,
            seed=self.seed,
        )
        base = float(v(np.zeros((1, n), dtype=bool))[0])
        prediction = float(self.predict_fn(x[None, :])[0])
        names = feature_names or [f"x{i}" for i in range(n)]
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=prediction,
            method=self.method_name,
            meta={"std_err": std_err, "n_permutations": self.n_permutations},
        )
