"""Kernel SHAP: Shapley values via weighted linear regression [Lundberg & Lee].

Kernel SHAP recovers Shapley values as the solution of a weighted least
squares problem over coalitions z ∈ {0,1}^n:

    min_φ Σ_S π(S) (v(S) − φ_0 − Σ_{i∈S} φ_i)²,
    π(S) = (n − 1) / (C(n,|S|) · |S| · (n − |S|)),

with the efficiency constraint φ_0 = v(∅), Σφ_i = v(N) − v(∅) imposed
exactly by variable elimination. Coalition enumeration follows the
reference implementation: subset sizes are filled from both ends (size 1
and n−1 first, which carry the most kernel weight) and enumerated
completely while the budget allows; any leftover budget samples the
remaining sizes proportionally to their weight.

The solver lives in the shared estimator suite
(:func:`repro.games.estimators.kernel_wls_estimator`); this module
keeps the historical names and the explainer on top.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.base import AttributionExplainer
from ..core.explanation import FeatureAttribution
from ..core.sampling import MaskingSampler
from ..games.adapters import FeatureMaskingGame
from ..games.estimators import (
    kernel_wls_estimator,
    shapley_kernel_weight,
    solve_kernel_wls,
)
from ..games.plan import kernel_plan, shared_plan
from ..robust.guard import check_instance

__all__ = ["kernel_shap", "shapley_kernel_weight", "KernelShapExplainer"]


def kernel_shap(
    value_fn: Callable[[np.ndarray], np.ndarray],
    n_players: int,
    n_samples: int = 2048,
    seed: int = 0,
    backend: str | None = None,
    n_procs: int | None = None,
) -> tuple[np.ndarray, float]:
    """Kernel SHAP estimate; returns ``(phi, base_value)``.

    ``n_samples`` bounds the number of coalition evaluations (in addition
    to the empty and grand coalitions, which are always evaluated).
    ``backend`` (:mod:`repro.exec`) shards the coalition evaluations
    when ``value_fn`` is a shard-eligible game — bitwise-identical
    output either way.
    """
    return kernel_wls_estimator(
        value_fn, n_players=n_players, n_samples=n_samples, seed=seed,
        backend=backend, n_procs=n_procs,
    )


class KernelShapExplainer(AttributionExplainer):
    """Model-agnostic Kernel SHAP with the interventional value function.

    Parameters
    ----------
    background:
        Background sample; absent features are imputed from it.
    n_samples:
        Coalition evaluation budget per explanation.
    max_batch_rows:
        Memory bound on rows per model call (see the coalition engine).
    engine:
        ``True`` (default) evaluates coalitions through the vectorized,
        cached coalition engine; ``False`` keeps the pre-engine loop path
        (used by E37 for the old-vs-new comparison).
    """

    method_name = "kernel_shap"

    def __init__(
        self,
        model,
        background: np.ndarray,
        n_samples: int = 2048,
        max_background: int = 100,
        output: str = "auto",
        seed: int = 0,
        max_batch_rows: int | None = None,
        engine: bool = True,
        guard=None,
        backend: str | None = None,
        n_procs: int | None = None,
    ) -> None:
        super().__init__(model, output, guard=guard)
        self.sampler = MaskingSampler(
            background, max_background=max_background, max_batch_rows=max_batch_rows
        )
        self.n_samples = n_samples
        self.seed = seed
        self.engine = engine
        self.backend = backend
        self.n_procs = n_procs

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = check_instance(x, self.sampler.background.shape[1])
        n = x.shape[0]
        # Engine path: hand the game object to the estimator so the exec
        # backend can read its shardability; it evaluates through the
        # exact same engine value function as the bare callable did.
        game = (
            FeatureMaskingGame(self.predict_fn, x, engine=self.sampler)
            if self.engine
            else None
        )
        v = (
            game.value
            if game is not None
            else self.sampler.legacy_value_function(self.predict_fn, x)
        )
        prediction = float(self.predict_fn(x[None, :])[0])
        phi, base = kernel_shap(
            game if game is not None else v, n,
            n_samples=self.n_samples, seed=self.seed,
            backend=self.backend, n_procs=self.n_procs,
        )
        names = feature_names or [f"x{i}" for i in range(n)]
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=prediction,
            method=self.method_name,
            meta={"n_samples": self.n_samples},
        )

    # -- amortized batch path (shared coalition plan) ----------------------

    def _amortized_supported(self) -> bool:
        # n == 1 takes the estimator's closed-form two-point shortcut,
        # and the legacy (engine-off) path predates the cache semantics
        # the plan mirrors — both stay per-row.
        return bool(self.engine) and self.sampler.background.shape[1] > 1

    def _amortized_context(self, X: np.ndarray, feature_names=None):
        """One shared Kernel SHAP design per (n, budget, seed)."""
        n = X.shape[1]
        key = ("kernel", n, self.n_samples, self.seed)
        return shared_plan(
            self,
            key,
            lambda: kernel_plan(n, n_samples=self.n_samples, seed=self.seed),
            X.shape[0],
        )

    def _amortized_rows(self, X, lo, hi, plan, feature_names=None):
        """Rows ``[lo, hi)``: one fused value grid, one WLS solve per row.

        The coalition design (rows *and* kernel weights) is the per-row
        estimator's own seeded draw, so feeding each row's fused values
        into the identical :func:`solve_kernel_wls` step reproduces the
        serial ``explain`` bitwise.
        """
        rows = X[lo:hi]
        n = X.shape[1]
        values = self.sampler.batch_value_matrix(
            self.predict_fn, rows, plan.unique_masks
        )
        names = feature_names or [f"x{i}" for i in range(n)]
        idx = plan.value_index
        out = []
        for r in range(rows.shape[0]):
            prediction = float(self.predict_fn(rows[r][None, :])[0])
            row_vals = values[r]
            v_empty = float(row_vals[idx[0]])
            v_full = float(row_vals[idx[1]])
            phi = solve_kernel_wls(
                plan.masks, plan.weights, row_vals[idx[2:]], v_empty, v_full
            )
            out.append(FeatureAttribution(
                values=phi,
                feature_names=names,
                base_value=v_empty,
                prediction=prediction,
                method=self.method_name,
                meta={"n_samples": self.n_samples},
            ))
        return out
