"""Kernel SHAP: Shapley values via weighted linear regression [Lundberg & Lee].

Kernel SHAP recovers Shapley values as the solution of a weighted least
squares problem over coalitions z ∈ {0,1}^n:

    min_φ Σ_S π(S) (v(S) − φ_0 − Σ_{i∈S} φ_i)²,
    π(S) = (n − 1) / (C(n,|S|) · |S| · (n − |S|)),

with the efficiency constraint φ_0 = v(∅), Σφ_i = v(N) − v(∅) imposed
exactly by variable elimination. Coalition enumeration follows the
reference implementation: subset sizes are filled from both ends (size 1
and n−1 first, which carry the most kernel weight) and enumerated
completely while the budget allows; any leftover budget samples the
remaining sizes proportionally to their weight.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from math import comb
from typing import Callable

import numpy as np

from ..core.base import AttributionExplainer
from ..core.explanation import FeatureAttribution
from ..core.sampling import MaskingSampler
from ..robust.guard import check_instance

__all__ = ["kernel_shap", "shapley_kernel_weight", "KernelShapExplainer"]

# Coalition enumeration asks for the same C(n, s) several times per size
# (budget check, weight, sampling probabilities); memoize both lookups.
_comb = lru_cache(maxsize=None)(comb)


@lru_cache(maxsize=None)
def shapley_kernel_weight(n: int, size: int) -> float:
    """The Shapley kernel π(S) for |S| = size (infinite at 0 and n)."""
    if size == 0 or size == n:
        return float("inf")
    return (n - 1) / (_comb(n, size) * size * (n - size))


def _enumerate_coalitions(
    n: int, budget: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Choose coalition rows and kernel weights under an evaluation budget.

    Returns ``(masks, weights)`` excluding the empty and grand coalitions.
    """
    masks: list[np.ndarray] = []
    weights: list[float] = []
    remaining = budget
    # Pair sizes (1, n−1), (2, n−2), ...; each pair shares a kernel weight.
    sizes = []
    for s in range(1, n // 2 + 1):
        sizes.append(s)
        if s != n - s:
            sizes.append(n - s)
    fully_enumerated: set[int] = set()
    for s in sizes:
        count = _comb(n, s)
        if count <= remaining:
            for subset in combinations(range(n), s):
                row = np.zeros(n, dtype=bool)
                row[list(subset)] = True
                masks.append(row)
                weights.append(shapley_kernel_weight(n, s))
            remaining -= count
            fully_enumerated.add(s)
        else:
            break
    leftover_sizes = [s for s in sizes if s not in fully_enumerated]
    if leftover_sizes and remaining > 0:
        probs = np.array([shapley_kernel_weight(n, s) * _comb(n, s)
                          for s in leftover_sizes])
        probs /= probs.sum()
        drawn = rng.choice(len(leftover_sizes), size=remaining, p=probs)
        for k in drawn:
            s = leftover_sizes[k]
            subset = rng.choice(n, size=s, replace=False)
            row = np.zeros(n, dtype=bool)
            row[subset] = True
            masks.append(row)
            # Sampled rows share equal weight within the leftover pool: the
            # sampling distribution already encodes the kernel.
            weights.append(1.0)
    return np.array(masks, dtype=bool), np.asarray(weights, dtype=float)


def kernel_shap(
    value_fn: Callable[[np.ndarray], np.ndarray],
    n_players: int,
    n_samples: int = 2048,
    seed: int = 0,
) -> tuple[np.ndarray, float]:
    """Kernel SHAP estimate; returns ``(phi, base_value)``.

    ``n_samples`` bounds the number of coalition evaluations (in addition
    to the empty and grand coalitions, which are always evaluated).
    """
    rng = np.random.default_rng(seed)
    if n_players == 1:
        ends = value_fn(np.array([[False], [True]]))
        return np.array([float(ends[1] - ends[0])]), float(ends[0])
    masks, weights = _enumerate_coalitions(n_players, n_samples, rng)
    ends = value_fn(
        np.vstack([np.zeros(n_players, dtype=bool), np.ones(n_players, dtype=bool)])
    )
    v_empty, v_full = float(ends[0]), float(ends[1])
    values = np.asarray(value_fn(masks), dtype=float)

    # Impose Σφ = v_full − v_empty by eliminating the last player:
    # model y − z_last·(v_full − v_empty) = (Z_front − z_last)·φ_front.
    Z = masks.astype(float)
    y = values - v_empty
    total = v_full - v_empty
    z_last = Z[:, -1]
    A = Z[:, :-1] - z_last[:, None]
    b = y - z_last * total
    W = weights
    lhs = A.T @ (W[:, None] * A)
    rhs = A.T @ (W * b)
    phi_front = np.linalg.solve(lhs + 1e-12 * np.eye(n_players - 1), rhs)
    phi = np.append(phi_front, total - phi_front.sum())
    return phi, v_empty


class KernelShapExplainer(AttributionExplainer):
    """Model-agnostic Kernel SHAP with the interventional value function.

    Parameters
    ----------
    background:
        Background sample; absent features are imputed from it.
    n_samples:
        Coalition evaluation budget per explanation.
    max_batch_rows:
        Memory bound on rows per model call (see the coalition engine).
    engine:
        ``True`` (default) evaluates coalitions through the vectorized,
        cached coalition engine; ``False`` keeps the pre-engine loop path
        (used by E37 for the old-vs-new comparison).
    """

    method_name = "kernel_shap"

    def __init__(
        self,
        model,
        background: np.ndarray,
        n_samples: int = 2048,
        max_background: int = 100,
        output: str = "auto",
        seed: int = 0,
        max_batch_rows: int | None = None,
        engine: bool = True,
        guard=None,
    ) -> None:
        super().__init__(model, output, guard=guard)
        self.sampler = MaskingSampler(
            background, max_background=max_background, max_batch_rows=max_batch_rows
        )
        self.n_samples = n_samples
        self.seed = seed
        self.engine = engine

    def explain(self, x: np.ndarray, feature_names: list[str] | None = None
                ) -> FeatureAttribution:
        x = check_instance(x, self.sampler.background.shape[1])
        n = x.shape[0]
        v = (
            self.sampler.value_function(self.predict_fn, x)
            if self.engine
            else self.sampler.legacy_value_function(self.predict_fn, x)
        )
        prediction = float(self.predict_fn(x[None, :])[0])
        phi, base = kernel_shap(v, n, n_samples=self.n_samples, seed=self.seed)
        names = feature_names or [f"x{i}" for i in range(n)]
        return FeatureAttribution(
            values=phi,
            feature_names=names,
            base_value=base,
            prediction=prediction,
            method=self.method_name,
            meta={"n_samples": self.n_samples},
        )
