"""PrIU: provenance-based incremental model updates [Wu, Tannen &
Davidson 2020].

PrIU answers deletion-based what-if queries — "what would the model be if
these training rows were removed?" — *incrementally*, from provenance-style
intermediate state captured at training time, instead of retraining:

* **Linear/ridge regression** — the optimum is θ = A⁻¹ b with sufficient
  statistics A = XᵀX + λI and b = Xᵀy. Deleting rows subtracts their
  outer-product contributions (a rank-k downdate), so the updated optimum
  is *exact* at the cost of one solve.
* **Logistic regression** — no closed form; PrIU-style approximation
  takes Newton steps from the cached full-data optimum on the reduced
  objective, which converges in one or two steps because the optimum
  moves little (quantified against full retraining in E18).

This is the incremental-view-maintenance idea of §3 applied to model
training, and the engine behind fast data-deletion what-ifs in
data-debugging loops.
"""

from __future__ import annotations

import time

import numpy as np

from ..models.linear import RidgeRegression
from ..models.logistic import LogisticRegression, sigmoid

__all__ = ["IncrementalRidge", "IncrementalLogistic"]


class IncrementalRidge:
    """Exact deletion updates for ridge regression via sufficient statistics."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha

    def fit(self, X: np.ndarray, y: np.ndarray) -> "IncrementalRidge":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        n, d = X.shape
        self._Xb = np.hstack([X, np.ones((n, 1))])
        self._y = y
        reg = self.alpha * np.eye(d + 1)
        reg[d, d] = 0.0
        # The provenance state PrIU caches: A and b.
        self._A = self._Xb.T @ self._Xb + reg
        self._b = self._Xb.T @ y
        self._deleted: set[int] = set()
        self._solve()
        return self

    def _solve(self) -> None:
        theta = np.linalg.solve(self._A, self._b)
        self.coef_ = theta[:-1]
        self.intercept_ = float(theta[-1])

    def delete(self, indices) -> "IncrementalRidge":
        """Remove training rows and update the optimum exactly.

        The rank-k downdate is a single matrix product, so the cost is
        O(k·d²) + one (d+1)×(d+1) solve, independent of n.
        """
        indices = np.asarray(indices, dtype=int).ravel()
        for i in indices:
            if int(i) in self._deleted:
                raise ValueError(f"row {int(i)} already deleted")
        self._deleted.update(int(i) for i in indices)
        rows = self._Xb[indices]
        self._A -= rows.T @ rows
        self._b -= rows.T @ self._y[indices]
        self._solve()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X @ self.coef_ + self.intercept_

    def matches_retrain(self, tol: float = 1e-8) -> bool:
        """Exactness check: compare against a from-scratch refit."""
        keep = [i for i in range(self._Xb.shape[0]) if i not in self._deleted]
        reference = RidgeRegression(alpha=self.alpha).fit(
            self._Xb[keep, :-1], self._y[keep]
        )
        return bool(
            np.allclose(reference.coef_, self.coef_, atol=tol)
            and abs(reference.intercept_ - self.intercept_) < tol
        )


class IncrementalLogistic:
    """Approximate deletion updates for logistic regression.

    Caches the fitted parameters and applies ``n_newton_steps`` Newton
    iterations of the *reduced* objective starting from them. One step is
    the classic certified-removal update; the default two steps are
    effectively exact at our scales (E18 measures the residual parameter
    error against full retraining).
    """

    def __init__(self, alpha: float = 1.0, n_newton_steps: int = 2) -> None:
        self.alpha = alpha
        self.n_newton_steps = n_newton_steps

    def fit(self, X: np.ndarray, y: np.ndarray) -> "IncrementalLogistic":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y).ravel()
        self._X = X
        self._y = y
        self._base = LogisticRegression(alpha=self.alpha).fit(X, y)
        self.classes_ = self._base.classes_
        self._theta = self._base.params
        self._mask = np.ones(X.shape[0], dtype=bool)
        return self

    def delete(self, indices) -> "IncrementalLogistic":
        """Remove training rows and take Newton steps from cached params."""
        indices = np.asarray(indices, dtype=int).ravel()
        if not self._mask[indices].all():
            raise ValueError("some rows already deleted")
        self._mask[indices] = False
        X = self._X[self._mask]
        y = self._y[self._mask]
        d = X.shape[1]
        Xb = np.hstack([X, np.ones((X.shape[0], 1))])
        t = np.zeros(y.shape[0])
        t[y == self.classes_[1]] = 1.0
        reg = self.alpha * np.eye(d + 1)
        reg[d, d] = 0.0
        theta = self._theta
        for __ in range(self.n_newton_steps):
            p = sigmoid(Xb @ theta)
            g = Xb.T @ (p - t) + reg @ theta
            w = p * (1.0 - p)
            H = Xb.T @ (w[:, None] * Xb) + reg
            theta = theta - np.linalg.solve(H + 1e-10 * np.eye(d + 1), g)
        self._theta = theta
        return self

    @property
    def params(self) -> np.ndarray:
        return self._theta.copy()

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        z = X @ self._theta[:-1] + self._theta[-1]
        p1 = sigmoid(z)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[
            (self.predict_proba(X)[:, 1] >= 0.5).astype(int)
        ]

    def parameter_error_vs_retrain(self) -> float:
        """‖θ_incremental − θ_retrained‖ / ‖θ_retrained‖."""
        reference = LogisticRegression(alpha=self.alpha).fit(
            self._X[self._mask], self._y[self._mask]
        )
        return float(
            np.linalg.norm(self._theta - reference.params)
            / max(np.linalg.norm(reference.params), 1e-12)
        )


def timed_deletion_comparison(
    X: np.ndarray,
    y: np.ndarray,
    delete_indices: np.ndarray,
    alpha: float = 1.0,
) -> dict[str, float]:
    """Benchmark helper: incremental-update time vs full-retrain time.

    Returns wall-clock times and the incremental/retrain parameter error,
    for the logistic model (the interesting, approximate case).
    """
    inc = IncrementalLogistic(alpha=alpha).fit(X, y)
    # The durations below are the experiment's *measurements*, not
    # telemetry — raw perf counters are the right tool.
    t0 = time.perf_counter()  # obs: allow
    inc.delete(delete_indices)
    t_incremental = time.perf_counter() - t0  # obs: allow
    keep = np.ones(X.shape[0], dtype=bool)
    keep[delete_indices] = False
    t0 = time.perf_counter()  # obs: allow
    LogisticRegression(alpha=alpha).fit(X[keep], y[keep])
    t_retrain = time.perf_counter() - t0  # obs: allow
    return {
        "t_incremental": t_incremental,
        "t_retrain": t_retrain,
        "speedup": t_retrain / max(t_incremental, 1e-12),
        "parameter_error": inc.parameter_error_vs_retrain(),
    }


__all__.append("timed_deletion_comparison")
