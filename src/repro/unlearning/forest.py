"""Low-latency unlearning for randomized tree ensembles (HedgeCut-style)
[Schelter, Grafberger & Dunning 2021].

HedgeCut maintains extremely randomized trees so that removing a training
point takes sub-millisecond time instead of a full retrain. The variant
here keeps HedgeCut's architectural ideas at our scale:

* every node caches the sample indices and class counts it was built on,
  so a deletion is a root-to-leaf walk decrementing counts — predictions
  (majority of leaf counts) update instantly;
* split *robustness* is monitored: when deletions have eroded more than
  a fraction ρ of a subtree's samples since it was (re)built, the subtree
  is rebuilt from its updated sample set — the analogue of HedgeCut's
  non-robust-split handling (DESIGN.md records the simplification of the
  exact split-variance criterion).

E23 measures deletion latency against retrain-from-scratch and accuracy
parity along a deletion stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnlearnableTree", "UnlearnableForest"]


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "indices",
                 "counts", "built_size")

    def __init__(self) -> None:
        self.feature = -1
        self.threshold = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.indices: set[int] = set()
        self.counts = np.zeros(2)
        self.built_size = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class UnlearnableTree:
    """One extremely randomized tree with cached per-node state."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        n_candidates: int = 8,
        rebuild_fraction: float = 0.3,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_candidates = n_candidates
        self.rebuild_fraction = rebuild_fraction
        self.rng = np.random.default_rng(seed)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "UnlearnableTree":
        self._X = np.atleast_2d(np.asarray(X, dtype=float))
        self._y = np.asarray(y, dtype=int).ravel()
        if set(np.unique(self._y)) - {0, 1}:
            raise ValueError("UnlearnableTree expects 0/1 labels")
        self._alive = np.ones(self._X.shape[0], dtype=bool)
        self.root = self._build(set(range(self._X.shape[0])), depth=0)
        return self

    # -- construction -------------------------------------------------------------

    def _counts(self, indices: set[int]) -> np.ndarray:
        counts = np.zeros(2)
        for i in indices:
            counts[self._y[i]] += 1
        return counts

    def _build(self, indices: set[int], depth: int) -> _Node:
        node = _Node()
        node.indices = set(indices)
        node.counts = self._counts(indices)
        node.built_size = len(indices)
        if (
            depth >= self.max_depth
            or len(indices) < 2 * self.min_samples_leaf
            or node.counts.min() == 0
        ):
            return node
        split = self._random_split(indices)
        if split is None:
            return node
        feature, threshold = split
        left_idx = {i for i in indices if self._X[i, feature] <= threshold}
        right_idx = indices - left_idx
        if (
            len(left_idx) < self.min_samples_leaf
            or len(right_idx) < self.min_samples_leaf
        ):
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(left_idx, depth + 1)
        node.right = self._build(right_idx, depth + 1)
        return node

    def _random_split(self, indices: set[int]) -> tuple[int, float] | None:
        """Extra-trees split: best of a few fully random (feature, cut)."""
        rows = np.fromiter(indices, dtype=int)
        best, best_gain = None, 1e-12
        parent_counts = self._counts(indices)
        total = parent_counts.sum()

        def gini(counts: np.ndarray) -> float:
            s = counts.sum()
            if s == 0:
                return 0.0
            p = counts / s
            return 1.0 - float((p ** 2).sum())

        parent_gini = gini(parent_counts)
        for __ in range(self.n_candidates):
            feature = int(self.rng.integers(0, self._X.shape[1]))
            col = self._X[rows, feature]
            lo, hi = col.min(), col.max()
            if lo == hi:
                continue
            threshold = float(self.rng.uniform(lo, hi))
            left_mask = col <= threshold
            left_counts = np.zeros(2)
            for i, is_left in zip(rows, left_mask):
                if is_left:
                    left_counts[self._y[i]] += 1
            right_counts = parent_counts - left_counts
            nl, nr = left_counts.sum(), right_counts.sum()
            if nl == 0 or nr == 0:
                continue
            gain = parent_gini - (
                nl * gini(left_counts) + nr * gini(right_counts)
            ) / total
            if gain > best_gain:
                best_gain = gain
                best = (feature, threshold)
        return best

    # -- serving ------------------------------------------------------------------

    def _leaf(self, x: np.ndarray) -> _Node:
        node = self.root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def predict_proba_one(self, x: np.ndarray) -> float:
        counts = self._leaf(np.asarray(x, dtype=float).ravel()).counts
        total = counts.sum()
        return float(counts[1] / total) if total > 0 else 0.5

    # -- unlearning ----------------------------------------------------------------

    def delete(self, index: int) -> None:
        """Remove one training point; O(depth), plus occasional rebuilds."""
        if not self._alive[index]:
            raise ValueError(f"point {index} already deleted")
        self._alive[index] = False
        x = self._X[index]
        label = self._y[index]
        node = self.root
        path: list[_Node] = []
        while True:
            path.append(node)
            node.indices.discard(index)
            node.counts[label] -= 1
            if node.is_leaf:
                break
            node = node.left if x[node.feature] <= node.threshold else node.right
        # Robustness maintenance: rebuild the shallowest eroded subtree.
        for depth, visited in enumerate(path):
            eroded = visited.built_size - len(visited.indices)
            if (
                visited.built_size > 0
                and eroded / visited.built_size > self.rebuild_fraction
            ):
                rebuilt = self._build(visited.indices, depth)
                visited.feature = rebuilt.feature
                visited.threshold = rebuilt.threshold
                visited.left = rebuilt.left
                visited.right = rebuilt.right
                visited.counts = rebuilt.counts
                visited.built_size = rebuilt.built_size
                break


class UnlearnableForest:
    """Ensemble of :class:`UnlearnableTree` with instant deletions."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        rebuild_fraction: float = 0.3,
        seed: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.rebuild_fraction = rebuild_fraction
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "UnlearnableForest":
        self.trees_ = []
        for t in range(self.n_estimators):
            tree = UnlearnableTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rebuild_fraction=self.rebuild_fraction,
                seed=self.seed + t,
            )
            self.trees_.append(tree.fit(X, y))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        p1 = np.array([
            np.mean([tree.predict_proba_one(x) for tree in self.trees_])
            for x in X
        ])
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(int)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y).ravel()))

    def delete(self, index: int) -> None:
        """Unlearn one training point from every tree."""
        for tree in self.trees_:
            tree.delete(index)
