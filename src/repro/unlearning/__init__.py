"""Machine unlearning / incremental model maintenance (§3)."""

from .forest import UnlearnableForest, UnlearnableTree
from .priu import (
    IncrementalLogistic,
    IncrementalRidge,
    timed_deletion_comparison,
)

__all__ = [
    "IncrementalRidge",
    "IncrementalLogistic",
    "timed_deletion_comparison",
    "UnlearnableForest",
    "UnlearnableTree",
]
