"""Second-order group influence functions [Basu, You & Feizi 2020].

First-order influence is additive over points, so for a *group* U it
ignores the interaction between the removed points — exactly what breaks
when U is coherent (correlated points concentrated in feature space).
Basu et al. add the second-order term of the expansion of the
leave-group-out Hessian. With total-loss conventions, removing U from the
objective changes the optimum by one Newton step

    Δθ = (H − H_U)⁻¹ g_U,          g_U = Σ_{z∈U} ∇ℓ(z),  H_U = Σ_{z∈U} ∇²ℓ(z),

which this module evaluates at three fidelity levels:

* ``first_order``  — H⁻¹ g_U                           (Koh-Liang additive),
* ``second_order`` — (H⁻¹ + H⁻¹ H_U H⁻¹) g_U           (Basu et al.),
* ``newton``       — (H − H_U)⁻¹ g_U                   (exact one-step).

E9 sweeps group size and shows first-order degrading while second-order
tracks the retrained model.
"""

from __future__ import annotations

import numpy as np

from ..models.base import DifferentiableModel

__all__ = ["GroupInfluence"]


class GroupInfluence:
    """Group-removal parameter and loss estimates at three orders."""

    def __init__(
        self,
        model: DifferentiableModel,
        X_train: np.ndarray,
        y_train: np.ndarray,
        damping: float = 0.0,
    ) -> None:
        self.model = model
        self.X_train = np.atleast_2d(np.asarray(X_train, dtype=float))
        self.y_train = np.asarray(y_train).ravel()
        self._H = model.hessian(self.X_train, self.y_train)
        if damping > 0:
            self._H = self._H + damping * np.eye(self._H.shape[0])

    def parameter_change(self, group: np.ndarray, order: str = "second_order"
                         ) -> np.ndarray:
        """Estimated θ̂_{−U} − θ̂ for removing the ``group`` indices."""
        group = np.asarray(group, dtype=int).ravel()
        g_U = self.model.grad(
            self.X_train[group], self.y_train[group]
        ).sum(axis=0)
        if order == "first_order":
            return np.linalg.solve(self._H, g_U)
        # model.hessian includes the L2 penalty; the group's data-term
        # share must exclude it, so compute it by differencing.
        H_U = self._data_hessian(group)
        if order == "second_order":
            first = np.linalg.solve(self._H, g_U)
            correction = np.linalg.solve(self._H, H_U @ first)
            return first + correction
        if order == "newton":
            return np.linalg.solve(self._H - H_U, g_U)
        raise ValueError(f"unknown order {order!r}")

    def _data_hessian(self, group: np.ndarray) -> np.ndarray:
        """Hessian of the group's data term only (no regularization)."""
        full = self.model.hessian(self.X_train, self.y_train)
        without = self.model.hessian(
            np.delete(self.X_train, group, axis=0),
            np.delete(self.y_train, group),
        )
        return full - without

    def loss_change(
        self,
        group: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
        order: str = "second_order",
    ) -> float:
        """Estimated test-loss change from removing the group.

        First-order in the test loss around θ̂: ∇ℓ_testᵀ Δθ.
        """
        delta = self.parameter_change(group, order)
        test_grad = self.model.grad(
            np.atleast_2d(X_test), np.asarray(y_test).ravel()
        ).sum(axis=0)
        return float(test_grad @ delta)

    def actual_parameter_change(
        self, group: np.ndarray, model_factory
    ) -> np.ndarray:
        """Ground truth: retrain without the group and diff parameters."""
        group = np.asarray(group, dtype=int).ravel()
        keep = np.delete(np.arange(self.X_train.shape[0]), group)
        retrained = model_factory().fit(self.X_train[keep], self.y_train[keep])
        return retrained.params - self.model.params
